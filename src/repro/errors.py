"""Common error taxonomy of the execution tiers.

Every failure the parallel and distributed tiers can surface derives from
:class:`ReproError`, so callers can catch one base type regardless of which
tier raised it.  The concrete classes used to live next to the machinery
that raises them (:mod:`repro.core.procpool`,
:mod:`repro.distributed.process_comm`, :mod:`repro.core.checkpoint`); they
are re-exported from those locations for compatibility, but this module is
their home and the place where their *structured context* is defined: each
error carries machine-readable attributes (worker/rank id, wave index, gate
span, elapsed vs deadline) in addition to the human-readable message, so the
:mod:`repro.resilience` recovery machinery can route a failure without
parsing strings.

All classes keep :class:`RuntimeError` in their MRO so pre-existing
``except RuntimeError`` call sites continue to work, and all of them pickle
cleanly across process boundaries: the message travels in ``args`` and the
context attributes in ``__dict__`` (both survive the default
``BaseException`` reduce protocol), which matters because worker-side errors
ship to the parent through an ``("err", exc, traceback)`` reply.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkerCrashedError",
    "ProcessCommTimeout",
    "BlockCorruptionError",
    "CheckpointError",
    "PoolProtocolError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "JobCancelledError",
]


class ReproError(RuntimeError):
    """Base class of every failure raised by the repro execution tiers.

    Subclasses accept keyword-only *context* attributes alongside the
    message; unset context stays ``None``.  The formatted message embeds the
    context that is set, so logs stay self-describing, while the attributes
    remain available for programmatic routing (e.g. "which worker died?").
    """

    #: Context attribute names, in message-formatting order.  Subclasses
    #: override this tuple; every name becomes a keyword argument and an
    #: instance attribute.
    context_fields: tuple[str, ...] = ()

    def __init__(self, message: str, **context) -> None:
        unknown = set(context) - set(self.context_fields)
        if unknown:
            raise TypeError(
                f"{type(self).__name__} got unknown context {sorted(unknown)}"
            )
        for name in self.context_fields:
            setattr(self, name, context.get(name))
        super().__init__(message)

    def context(self) -> dict:
        """The structured context as a ``{field: value}`` dict (set fields only)."""

        return {
            name: getattr(self, name)
            for name in self.context_fields
            if getattr(self, name) is not None
        }

    def __str__(self) -> str:  # noqa: D105 - message + context suffix
        base = super().__str__()
        details = ", ".join(
            f"{name}={value}" for name, value in self.context().items()
        )
        return f"{base} [{details}]" if details else base


class WorkerCrashedError(ReproError):
    """A pool worker died (or stopped responding) with tasks outstanding.

    Context
    -------
    worker_id:
        Index of the dead worker in its pool (``None`` when the failure is a
        pool-wide receive timeout rather than one identified corpse).
    pid:
        The dead worker's process id.
    exitcode:
        Its exit status, when the process could be reaped.
    wave_index:
        Index of the gate wave that was in flight when the crash surfaced
        (filled in by the executor, which owns wave numbering).
    gate:
        Name/span of the (possibly fused) gate whose plan was executing.
    rank:
        The simulated-MPI rank the worker served (ranked tier only).
    """

    context_fields = ("worker_id", "pid", "exitcode", "wave_index", "gate", "rank")


class ProcessCommTimeout(ReproError):
    """A blocking communicator operation exceeded its deadline.

    Raised by :class:`repro.distributed.process_comm.ProcessCommunicator`
    when a peer rank fails to make progress (typically because its process
    died mid-plan); inside a rank worker it travels back to the parent as an
    ``("err", ...)`` reply.

    Context
    -------
    rank:
        The rank that timed out waiting.
    peer:
        The peer rank (or laggard ranks) it was waiting on.
    op:
        The communicator operation ("sendrecv", "allreduce", "barrier").
    elapsed_seconds:
        How long the endpoint actually waited.
    timeout_seconds:
        The configured deadline it compared against.
    """

    context_fields = ("rank", "peer", "op", "elapsed_seconds", "timeout_seconds")


class BlockCorruptionError(ReproError):
    """A shared-memory payload failed its per-blob checksum.

    The slot arenas of :mod:`repro.core.procpool` checksum every payload on
    write and verify on read, so a scribbled shared-memory segment surfaces
    as this typed error instead of a garbage decode deep inside a codec.
    The parent holds the authoritative copy of every block until a wave
    commits, so a corrupted transfer is retried from the parent copy by the
    resilience machinery.

    Context
    -------
    worker_id:
        Worker whose arena held the corrupt payload.
    slot:
        Arena slot index the payload lived in.
    expected_crc / actual_crc:
        The checksum mismatch that tripped detection.
    ticket:
        Pool ticket of the reply being read (filled by the executor).
    """

    context_fields = ("worker_id", "slot", "expected_crc", "actual_crc", "ticket")


class CheckpointError(ReproError):
    """A checkpoint file is malformed, truncated or inconsistent.

    Every parse failure inside :func:`repro.core.checkpoint.load_checkpoint`
    — bad magic, truncated struct fields, junk metadata JSON, blob lengths
    pointing past end-of-file — is wrapped into this type, so callers probing
    a possibly-torn checkpoint catch one exception instead of pickle/struct
    internals.
    """

    context_fields = ("path",)


class ServiceError(ReproError):
    """Base class of failures raised by the :mod:`repro.serve` service layer.

    Every service-side failure identifies the job and tenant it concerns, so
    multi-tenant clients can route a rejection or a cancelled future without
    parsing the message.

    Context
    -------
    job_id:
        Identifier of the job the failure concerns (``None`` for failures
        raised before a job was admitted, e.g. backpressure rejections).
    tenant:
        The tenant whose request failed.
    """

    context_fields = ("job_id", "tenant")


class ServiceOverloadedError(ServiceError):
    """A submission was rejected by backpressure: a queue bound is full.

    This is the service's explicit load-shedding signal — the caller should
    back off and retry after in-flight jobs complete, not treat it as a bug.

    Context
    -------
    job_id / tenant:
        Inherited from :class:`ServiceError`.
    pending:
        Jobs currently pending in the scope that overflowed.
    limit:
        The configured bound that was hit.
    scope:
        Which bound overflowed: ``"tenant"`` (per-tenant queue) or
        ``"total"`` (service-wide).
    """

    context_fields = ("job_id", "tenant", "pending", "limit", "scope")


class ServiceClosedError(ServiceError):
    """The service is draining or closed and accepts no new work.

    Context
    -------
    job_id / tenant:
        Inherited from :class:`ServiceError`.
    state:
        The lifecycle state that refused the operation ("new", "draining",
        "closing" or "closed").
    """

    context_fields = ("job_id", "tenant", "state")


class JobCancelledError(ServiceError):
    """A job was cancelled before completing; its future resolves to this.

    Context
    -------
    job_id / tenant:
        Inherited from :class:`ServiceError`.
    gates_done:
        Gates the job had executed when the cancellation took effect (0 for
        jobs cancelled while still queued).
    """

    context_fields = ("job_id", "tenant", "gates_done")


class PoolProtocolError(ReproError):
    """The pool/executor API was driven outside its documented protocol.

    Raised for caller mistakes — submitting past the per-worker outstanding
    cap, collecting replies with nothing in flight, driving a closed ranked
    executor, a reply arriving for a ticket nobody submitted — as opposed to
    the environmental failures (:class:`WorkerCrashedError`,
    :class:`ProcessCommTimeout`) that the resilience machinery retries.  A
    protocol error is a bug in the driving code and is never retried.

    Context
    -------
    worker_id:
        Worker (or rank) whose protocol state was violated, when one is
        identifiable.
    op:
        The API operation that detected the violation ("submit",
        "recv_any", ...).
    """

    context_fields = ("worker_id", "op")
