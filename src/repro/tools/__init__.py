"""Developer tooling that ships with the repository.

Unlike :mod:`repro.core` or :mod:`repro.backends`, nothing in here runs
inside a simulation — these are the tools that keep the codebase honest.
Like the documentation builder (``docs/build_docs.py``), everything is
self-contained stdlib code: the reproduction container cannot install
third-party linters, so the project carries its own.

Contents
--------
:mod:`repro.tools.lint`
    The project-native static analyser: an AST rule engine enforcing the
    concurrency, pickling and error-taxonomy contracts that the execution
    tiers otherwise only check at runtime (often only under fault
    injection).  Run it as ``python -m repro.tools.lint``.
"""
