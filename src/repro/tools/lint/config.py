"""Lint configuration: which files are walked and which rules apply where.

The project configuration is code, not a config file: the container that
builds this repository has no TOML/YAML parser guaranteed beyond the stdlib
(Python 3.10 lacks :mod:`tomllib`), and a typed dataclass is easier to test
than a parsed document.  :func:`project_config` returns the committed
repository policy; tests build their own :class:`LintConfig` instances for
isolated runs.

Path patterns are :mod:`fnmatch` globs against repository-relative POSIX
paths, and ``*`` matches across ``/`` (fnmatch semantics) — so
``src/repro/*`` covers the whole package tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["LintConfig", "project_config", "repo_root"]


def repo_root() -> Path:
    """The repository root, located from this file's position in ``src/``."""

    return Path(__file__).resolve().parents[4]


#: Directories/files the default (no-argument) run walks.
DEFAULT_INCLUDE = (
    "src/repro",
    "benchmarks",
    "examples",
    "tests",
    "docs/build_docs.py",
    "setup.py",
)

#: Never linted: the fixture corpus exists to *fail* rules, and the built
#: site is generated output.
DEFAULT_EXCLUDE = (
    "tests/lint_fixtures/*",
    "docs/_site/*",
)

#: Per-rule path scopes.  A rule absent from this mapping applies to every
#: linted file (fine for rules that only trigger on specific constructs,
#: e.g. njit-purity fires only inside ``@njit`` functions).
DEFAULT_RULE_PATHS: dict[str, tuple[str, ...]] = {
    # Library-quality contracts apply to the shipped package only: tests
    # may monkeypatch, raise builtins and skip docstrings by design, and
    # benchmarks legitimately use wall-clock time.
    "docstring-coverage": ("src/repro/*",),
    "error-taxonomy": ("src/repro/*",),
    "pickle-contract": ("src/repro/*",),
    "mp-hygiene": ("src/repro/*",),
    "determinism": ("src/repro/*", "examples/*", "tests/*"),
    "resource-hygiene": ("src/repro/*", "benchmarks/*", "examples/*", "docs/*"),
}

#: Per-rule option mappings (rule id -> knobs the rule reads).
DEFAULT_OPTIONS: dict[str, dict] = {
    "mp-hygiene": {
        # The only modules allowed to touch raw multiprocessing primitives;
        # everything else goes through ProcessPool / RankCommunicator.
        "allowed_files": (
            "src/repro/core/procpool.py",
            "src/repro/distributed/process_comm.py",
        ),
    },
    "error-taxonomy": {
        # Builtin types that must not be raised from public repro modules:
        # these signal *execution-tier failures* and belong to repro.errors.
        # ValueError/TypeError/KeyError stay allowed — they express caller
        # contract violations, the standard-library idiom.
        "forbidden_raises": (
            "RuntimeError",
            "Exception",
            "BaseException",
            "OSError",
            "IOError",
            "EnvironmentError",
            "SystemError",
        ),
    },
    "lock-order": {
        # Calls considered blocking when made while holding a lock.  join/
        # recv/get only count with zero positional arguments (so dict.get(k)
        # and ", ".join(parts) never false-positive); sleep always counts.
        "blocking_calls": ("join", "recv", "get", "sleep"),
    },
    "pickle-contract": {
        # Record/config classes that cross process boundaries without being
        # codecs; they must be dataclasses (frozen preferred) or define the
        # explicit __getstate__/__setstate__ pair.
        "record_classes": (
            "SimulatorConfig",
            "FaultPolicy",
            "FaultPlan",
            "KillWorker",
            "CorruptFrame",
            "DropComm",
            "DelayComm",
        ),
    },
}


@dataclass(frozen=True)
class LintConfig:
    """One lint run's policy: file scope, per-path rule selection, options.

    Parameters
    ----------
    root:
        Repository root all relative paths/patterns are resolved against.
    include:
        Paths (relative to *root*) walked when the CLI gets no arguments.
    exclude:
        fnmatch patterns of files never linted, even when named explicitly.
    rule_paths:
        Rule id -> patterns the rule is restricted to; unlisted rules apply
        everywhere.
    options:
        Rule id -> option mapping handed to the rule via
        :meth:`~repro.tools.lint.engine.ModuleContext.option`.
    select / ignore:
        CLI-level rule filters: when *select* is non-empty only those rules
        run; *ignore* removes rules from whatever is selected.
    """

    root: Path
    include: tuple[str, ...] = DEFAULT_INCLUDE
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    rule_paths: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_RULE_PATHS)
    )
    options: dict[str, dict] = field(default_factory=lambda: dict(DEFAULT_OPTIONS))
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()

    def default_paths(self) -> list[Path]:
        """Absolute paths of the default walk (existing entries only)."""

        return [
            self.root / entry for entry in self.include if (self.root / entry).exists()
        ]

    def relative(self, path: Path) -> str:
        """Repository-relative POSIX form of *path* (as-given if outside)."""

        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def excluded(self, rel: str) -> bool:
        """Whether a repository-relative path is excluded from linting."""

        return any(fnmatch(rel, pattern) for pattern in self.exclude)

    def enabled_for(self, rel: str) -> frozenset[str]:
        """Rule ids enabled for one file under the per-path scoping."""

        from .engine import all_rules

        enabled = set()
        for rule_id in all_rules():
            patterns = self.rule_paths.get(rule_id)
            if patterns is None or any(fnmatch(rel, p) for p in patterns):
                enabled.add(rule_id)
        return frozenset(enabled)

    def selected_rules(self, registry: frozenset[str]) -> frozenset[str]:
        """Apply the CLI ``--select`` / ``--ignore`` filters to the registry."""

        unknown = (self.select | self.ignore) - registry
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        chosen = self.select if self.select else registry
        return frozenset(chosen) - self.ignore


def project_config(
    select: frozenset[str] = frozenset(), ignore: frozenset[str] = frozenset()
) -> LintConfig:
    """The committed repository policy (what CI and the self-lint gate run)."""

    return LintConfig(root=repo_root(), select=select, ignore=ignore)
