"""Core of the AST rule engine: diagnostics, suppressions, rules, the runner.

The engine is deliberately boring machinery so the interesting logic lives
in the rule modules (:mod:`repro.tools.lint.rules`).  It owns four things:

* :class:`Diagnostic` — one finding, with a stable rule id and a
  ``file:line:col`` anchor, renderable as text or JSON.
* :class:`SuppressionTable` — the ``# repro-lint: disable=rule-id -- reason``
  mechanism.  A suppression **must** carry a reason after `` -- ``; one
  without a reason (or naming an unknown rule) is itself a diagnostic, so
  the suppression inventory stays auditable.
* :class:`LintRule` and the rule registry — rules are classes registered by
  the :func:`rule` decorator.  A rule sees one parsed module at a time
  (:meth:`LintRule.check_module`) and, for whole-program analyses such as
  the lock-order deadlock detector, every module at the end
  (:meth:`LintRule.finalize`).
* :func:`lint_paths` — file discovery, parsing, rule dispatch, suppression
  filtering, and the :class:`LintReport` the CLI turns into text/JSON and an
  exit code.

Per-path rule selection lives in :class:`repro.tools.lint.config.LintConfig`;
the engine only asks it which rules are enabled for a given file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Diagnostic",
    "Suppression",
    "SuppressionTable",
    "ModuleContext",
    "LintRule",
    "rule",
    "all_rules",
    "LintReport",
    "lint_paths",
    "lint_source",
    "PARSE_ERROR",
    "SUPPRESSION_FORMAT",
]

#: Pseudo-rule id for files the engine cannot parse.  Not suppressible.
PARSE_ERROR = "parse-error"

#: Rule id of the suppression-comment format checks.  Not suppressible
#: (a malformed suppression cannot excuse itself).
SUPPRESSION_FORMAT = "suppression-format"

#: Rules whose diagnostics ignore ``disable=`` comments.
_UNSUPPRESSABLE = frozenset({PARSE_ERROR, SUPPRESSION_FORMAT})

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"(?:\s+--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable rule id anchored to ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The one-line human-readable form (``path:line:col: rule: msg``)."""

        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready mapping with the same fields the text form carries."""

        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        """Stable ordering: by file, then position, then rule id."""

        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment.

    ``target_line`` is the line the suppression covers: the comment's own
    line for a trailing comment, or — for a comment standing alone on its
    line — the next *code* line, so a long reason may wrap onto further
    comment lines between the marker and the statement it excuses.
    """

    comment_line: int
    target_line: int
    rules: tuple[str, ...]
    reason: str | None


class SuppressionTable:
    """All suppressions of one source file, plus their format problems.

    Comments are found with :mod:`tokenize` rather than string scanning, so
    a ``repro-lint:`` marker inside a string literal never counts.
    """

    def __init__(self, rel: str, source: str, known_rules: frozenset[str]) -> None:
        self._by_line: dict[int, list[Suppression]] = {}
        self.problems: list[Diagnostic] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # The parse-error diagnostic for this file is raised elsewhere.
            return
        source_lines = source.splitlines()
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            col = token.start[1] + 1
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            reason = match.group("reason")
            standalone = token.line[: token.start[1]].strip() == ""
            suppression = Suppression(
                comment_line=line,
                target_line=(
                    self._next_code_line(source_lines, line) if standalone else line
                ),
                rules=rules,
                reason=reason,
            )
            if not reason:
                self.problems.append(
                    Diagnostic(
                        SUPPRESSION_FORMAT,
                        rel,
                        line,
                        col,
                        "suppression without a reason: write "
                        "'# repro-lint: disable=<rule-id> -- <why this is safe>'",
                    )
                )
                continue  # a reasonless suppression does not suppress
            unknown = [name for name in rules if name not in known_rules]
            if unknown:
                self.problems.append(
                    Diagnostic(
                        SUPPRESSION_FORMAT,
                        rel,
                        line,
                        col,
                        f"suppression names unknown rule(s) {', '.join(unknown)}; "
                        "run with --list-rules for the catalog",
                    )
                )
                continue
            self._by_line.setdefault(suppression.target_line, []).append(suppression)

    @staticmethod
    def _next_code_line(source_lines: list[str], comment_line: int) -> int:
        """First line after *comment_line* that is not blank/comment-only."""

        for offset, text in enumerate(source_lines[comment_line:], start=1):
            stripped = text.strip()
            if stripped and not stripped.startswith("#"):
                return comment_line + offset
        return comment_line + 1

    def covers(self, line: int, rule_id: str) -> bool:
        """Whether a valid suppression on *line* disables *rule_id*."""

        return any(
            rule_id in suppression.rules
            for suppression in self._by_line.get(line, ())
        )

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_line.values())


class ModuleContext:
    """One parsed source file as the rules see it.

    Attributes
    ----------
    path:
        Absolute filesystem path.
    rel:
        Repository-relative POSIX path — the stable name diagnostics carry.
    source / tree:
        Raw text and the parsed :class:`ast.Module`.
    enabled:
        Rule ids active for this file under the per-path configuration.
    options:
        Per-rule option mappings from the config (``options.get(rule_id)``).
    """

    def __init__(
        self,
        path: Path,
        rel: str,
        source: str,
        tree: ast.Module,
        enabled: frozenset[str],
        options: dict[str, dict],
        known_rules: frozenset[str],
    ) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.enabled = enabled
        self.options = options
        self.suppressions = SuppressionTable(rel, source, known_rules)
        self._imports: dict[str, str] | None = None

    def option(self, rule_id: str, key: str, default):
        """One per-rule configuration knob (``default`` when unset)."""

        return self.options.get(rule_id, {}).get(key, default)

    @property
    def imports(self) -> dict[str, str]:
        """Top-level import aliases: local name -> dotted module/object path.

        ``import numpy as np`` maps ``np -> numpy``; ``from multiprocessing
        import shared_memory`` maps ``shared_memory ->
        multiprocessing.shared_memory``.  Function-local imports are included
        too (rules care about what a name means, not where it was bound).
        """

        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for alias in node.names:
                        table[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            self._imports = table
        return self._imports

    def diagnostic(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at *node* in this module."""

        return Diagnostic(
            rule_id,
            self.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )


class LintRule:
    """Base class of every rule; subclasses register with :func:`rule`.

    A rule defines a stable kebab-case ``id`` (the suppression token and the
    JSON key), a one-line ``summary`` for ``--list-rules``, and overrides
    one or both hooks:

    * :meth:`check_module` — called once per enabled file; return (or yield)
      diagnostics for that file alone.
    * :meth:`finalize` — called once with every enabled file after the
      per-module pass; the hook for whole-program analyses (lock graphs,
      cross-module class hierarchies).
    """

    id: str = ""
    summary: str = ""

    def check_module(self, ctx: ModuleContext):
        """Per-file check; the default finds nothing."""

        return ()

    def finalize(self, modules: list[ModuleContext]):
        """Whole-program check over every enabled file; default: nothing."""

        return ()


_RULES: dict[str, type[LintRule]] = {}


def rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a :class:`LintRule` subclass to the registry."""

    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[LintRule]]:
    """The registry: rule id -> rule class (import-time populated)."""

    from . import rules as _rules  # noqa: F401  (registers on import)

    return dict(_RULES)


@dataclass
class LintReport:
    """Everything one lint run produced, ready for text/JSON rendering."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    rules_active: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """``0`` when clean, ``1`` when any non-suppressed diagnostic exists."""

        return 1 if self.diagnostics else 0

    def per_rule_counts(self) -> dict[str, int]:
        """Surviving diagnostic count per rule id (zero-count rules included)."""

        counts = {rule_id: 0 for rule_id in self.rules_active}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    def as_dict(self) -> dict:
        """JSON document for ``--json`` and the CI artifact."""

        return {
            "schema": 1,
            "rules_active": list(self.rules_active),
            "files_checked": self.files_checked,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "suppressed": [d.as_dict() for d in self.suppressed],
            "summary": {
                "diagnostics": len(self.diagnostics),
                "suppressed": len(self.suppressed),
                "per_rule": self.per_rule_counts(),
            },
        }


def _discover(paths: list[Path], config) -> list[tuple[Path, str]]:
    """Expand *paths* to ``(abs_path, rel_posix)`` pairs of lintable files."""

    files: dict[str, Path] = {}
    for path in paths:
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            rel = config.relative(candidate)
            if config.excluded(rel):
                continue
            files[rel] = candidate
    return [(files[rel], rel) for rel in sorted(files)]


def lint_paths(paths: list[Path], config) -> LintReport:
    """Lint every Python file under *paths* according to *config*."""

    registry = all_rules()
    known = frozenset(registry) | _UNSUPPRESSABLE
    selected = config.selected_rules(frozenset(registry))

    contexts: list[ModuleContext] = []
    diagnostics: list[Diagnostic] = []
    for path, rel in _discover(paths, config):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    PARSE_ERROR,
                    rel,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        enabled = config.enabled_for(rel) & selected
        contexts.append(
            ModuleContext(path, rel, source, tree, enabled, config.options, known)
        )

    for ctx in contexts:
        diagnostics.extend(ctx.suppressions.problems)

    for rule_id in sorted(selected):
        checker = registry[rule_id]()
        enabled_ctxs = [ctx for ctx in contexts if rule_id in ctx.enabled]
        for ctx in enabled_ctxs:
            diagnostics.extend(checker.check_module(ctx))
        diagnostics.extend(checker.finalize(enabled_ctxs))

    by_rel = {ctx.rel: ctx for ctx in contexts}
    kept: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diagnostic in diagnostics:
        ctx = by_rel.get(diagnostic.path)
        if (
            diagnostic.rule not in _UNSUPPRESSABLE
            and ctx is not None
            and ctx.suppressions.covers(diagnostic.line, diagnostic.rule)
        ):
            suppressed.append(diagnostic)
        else:
            kept.append(diagnostic)

    return LintReport(
        diagnostics=sorted(kept, key=Diagnostic.sort_key),
        suppressed=sorted(suppressed, key=Diagnostic.sort_key),
        files_checked=len(contexts),
        rules_active=tuple(sorted(selected)),
    )


def lint_source(
    source: str,
    *,
    rel: str = "snippet.py",
    rules: tuple[str, ...] | None = None,
    options: dict[str, dict] | None = None,
) -> LintReport:
    """Lint one in-memory source string (the unit-test entry point).

    *rules* restricts the run to the named rule ids (default: all); project
    rules still run, seeing just this one module.  Suppression comments in
    *source* behave exactly as they do on disk.
    """

    registry = all_rules()
    known = frozenset(registry) | _UNSUPPRESSABLE
    selected = frozenset(rules) if rules is not None else frozenset(registry)
    unknown = selected - frozenset(registry)
    if unknown:
        raise ValueError(f"unknown rule id(s): {sorted(unknown)}")

    diagnostics: list[Diagnostic] = []
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        diagnostics.append(
            Diagnostic(
                PARSE_ERROR,
                rel,
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                f"cannot parse: {exc.msg}",
            )
        )
        return LintReport(
            diagnostics=diagnostics,
            files_checked=1,
            rules_active=tuple(sorted(selected)),
        )

    ctx = ModuleContext(
        Path(rel), rel, source, tree, selected, options or {}, known
    )
    diagnostics.extend(ctx.suppressions.problems)
    for rule_id in sorted(selected):
        checker = registry[rule_id]()
        diagnostics.extend(checker.check_module(ctx))
        diagnostics.extend(checker.finalize([ctx]))

    kept, suppressed = [], []
    for diagnostic in diagnostics:
        if diagnostic.rule not in _UNSUPPRESSABLE and ctx.suppressions.covers(
            diagnostic.line, diagnostic.rule
        ):
            suppressed.append(diagnostic)
        else:
            kept.append(diagnostic)
    return LintReport(
        diagnostics=sorted(kept, key=Diagnostic.sort_key),
        suppressed=sorted(suppressed, key=Diagnostic.sort_key),
        files_checked=1,
        rules_active=tuple(sorted(selected)),
    )
