"""Project-native static analysis: the ``repro`` contract linter.

Seven PRs of growth piled up contracts that only fail at runtime — often
only under fault injection: constructor-args-only pickling for anything
that crosses a process boundary, nopython-compilable engine kernels, typed
:mod:`repro.errors` exceptions at the public surface, lock discipline in the
thread tier, seeded RNG everywhere.  This package machine-checks them with
a self-contained stdlib-:mod:`ast` rule engine (the container cannot
install third-party linters, the same constraint that shaped the docs
builder).

Usage::

    python -m repro.tools.lint                 # lint the repository
    python -m repro.tools.lint --json          # machine-readable report
    python -m repro.tools.lint src/repro/core  # specific paths
    python -m repro.tools.lint --list-rules    # the rule catalog

Exit codes: 0 clean, 1 diagnostics found, 2 usage error.  Per-line
suppressions require a reason::

    except Exception:  # repro-lint: disable=error-taxonomy -- worker boundary:
                       # the exception is shipped to the parent and re-raised

See ``docs/static_analysis.md`` for the full rule catalog and rationale.
"""

from .config import LintConfig, project_config
from .engine import (
    Diagnostic,
    LintReport,
    LintRule,
    all_rules,
    lint_paths,
    lint_source,
    rule,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "LintRule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "project_config",
    "rule",
]
