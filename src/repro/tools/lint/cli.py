"""Command line front end of the linter (``python -m repro.tools.lint``).

Renders a :class:`~repro.tools.lint.engine.LintReport` as human-readable
lines or a ``--json`` document, and gates the exit code: 0 when clean, 1
when any non-suppressed diagnostic survives, 2 on usage errors.  The JSON
form is what CI uploads as the ``lint-report`` artifact and what
``benchmarks/trend.py --lint`` distills into ``TREND.jsonl`` records.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .config import project_config
from .engine import all_rules, lint_paths

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="Project-native static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: the committed repo scope)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _parse_rule_set(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def main(argv: list[str] | None = None) -> int:
    """Run the linter; returns the process exit code (0/1/2)."""

    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id:20s} {rule_cls.summary}")
        return 0

    try:
        config = project_config(
            select=_parse_rule_set(args.select),
            ignore=_parse_rule_set(args.ignore),
        )
        paths = (
            [path for path in args.paths] if args.paths else config.default_paths()
        )
        missing = [str(path) for path in paths if not path.exists()]
        if missing:
            print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
            return 2
        report = lint_paths(paths, config)
    except ValueError as exc:  # unknown --select/--ignore rule ids
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.render())
        summary = (
            f"{len(report.diagnostics)} diagnostic(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.files_checked} file(s), "
            f"{len(report.rules_active)} rule(s) active"
        )
        print(("FAILED: " if report.diagnostics else "clean: ") + summary)
    return report.exit_code
