"""pickle-contract: everything that crosses a process boundary pickles cheaply.

The process tiers (PR 4/6) ship codecs, configs and fault records to workers
by pickle.  The project contract is **constructor-arguments-only** state:
``__getstate__`` returns a dict of constructor arguments and
``__setstate__`` re-runs ``self.__init__(**state)`` — so a warm object's
caches, tables and resolved engine instances never ride the pipe, and a
worker re-resolves its environment (e.g. a numpy-fallback host's codec gets
real JIT kernels on a numba worker).  Records may instead be (frozen)
dataclasses, whose default pickling is already field-only.

Statically enforced, across the whole analyzed tree at once (base classes
resolve through the project class hierarchy):

* every concrete codec class (defines/inherits both ``compress`` and
  ``decompress``) defines or inherits the ``__getstate__``/``__setstate__``
  pair — or is a frozen dataclass;
* a ``__getstate__`` follows the contract shape: its body is (docstring +)
  a single ``return { ... }`` dict literal;
* a ``__setstate__`` rebuilds through ``self.__init__(...)``;
* configured record classes (``SimulatorConfig``, fault records, ...) are
  dataclasses or carry the explicit pair.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..engine import Diagnostic, LintRule, ModuleContext, rule

__all__ = ["PickleContractRule"]


@dataclass
class _ClassInfo:
    """What the rule needs to know about one class definition."""

    name: str
    rel: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    is_dataclass: bool = False
    is_frozen_dataclass: bool = False
    has_abstract_method: bool = False
    ctx: ModuleContext | None = None


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dataclass_flags(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, is_frozen)`` from the decorator list."""

    for decorator in node.decorator_list:
        call = decorator
        name = _base_name(call.func if isinstance(call, ast.Call) else call)
        if name == "dataclass":
            frozen = isinstance(call, ast.Call) and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            )
            return True, frozen
    return False, False


def _is_abstract(method: ast.FunctionDef) -> bool:
    return any(
        _base_name(dec) == "abstractmethod" for dec in method.decorator_list
    )


@rule
class PickleContractRule(LintRule):
    """Flag boundary-crossing classes without constructor-args-only pickling."""

    id = "pickle-contract"
    summary = (
        "process-boundary classes define constructor-args-only "
        "__getstate__/__setstate__ (or are frozen dataclasses)"
    )

    def finalize(self, modules: list[ModuleContext]):
        """Resolve class hierarchies across modules, then check each boundary class."""

        classes: dict[str, _ClassInfo] = {}
        record_names: set[str] = set()
        for ctx in modules:
            record_names.update(ctx.option(self.id, "record_classes", ()))
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = _ClassInfo(
                    name=node.name,
                    rel=ctx.rel,
                    node=node,
                    bases=tuple(
                        name
                        for name in (_base_name(base) for base in node.bases)
                        if name is not None
                    ),
                    ctx=ctx,
                )
                info.is_dataclass, info.is_frozen_dataclass = _dataclass_flags(node)
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[member.name] = member
                        if _is_abstract(member):
                            info.has_abstract_method = True
                # First definition wins on (unlikely) name collisions.
                classes.setdefault(node.name, info)

        diagnostics: list[Diagnostic] = []
        for info in classes.values():
            if self._is_codec(info, classes):
                diagnostics.extend(self._check_boundary_class(info, classes))
            elif info.name in record_names:
                diagnostics.extend(self._check_record_class(info, classes))
        # Shape checks apply to every explicit pair, codec or not: a
        # __getstate__ that pickles live state is wrong wherever it is.
        for info in classes.values():
            getstate = info.methods.get("__getstate__")
            if getstate is not None:
                diagnostics.extend(self._check_getstate_shape(info, getstate))
            setstate = info.methods.get("__setstate__")
            if setstate is not None:
                diagnostics.extend(self._check_setstate_shape(info, setstate))
        return diagnostics

    # -- class classification ---------------------------------------------------------

    def _mro(self, info: _ClassInfo, classes: dict[str, _ClassInfo]):
        """*info* plus its project-resolvable ancestors (cycle-safe)."""

        seen: list[_ClassInfo] = []
        stack = [info]
        visited = set()
        while stack:
            current = stack.pop(0)
            if current.name in visited:
                continue
            visited.add(current.name)
            seen.append(current)
            for base in current.bases:
                if base in classes:
                    stack.append(classes[base])
        return seen

    def _resolves(self, info: _ClassInfo, classes, method: str) -> bool:
        return any(method in ancestor.methods for ancestor in self._mro(info, classes))

    def _is_codec(self, info: _ClassInfo, classes) -> bool:
        """Concrete class that defines/inherits both compress and decompress."""

        if info.has_abstract_method:
            return False
        if any(base in ("ABC", "Protocol") for base in info.bases):
            return False
        chain = self._mro(info, classes)
        has = {
            name
            for ancestor in chain
            for name, method in ancestor.methods.items()
            if name in ("compress", "decompress") and not _is_abstract(method)
        }
        return has == {"compress", "decompress"}

    # -- checks -----------------------------------------------------------------------

    def _check_boundary_class(self, info: _ClassInfo, classes):
        if info.is_frozen_dataclass:
            return
        missing = [
            method
            for method in ("__getstate__", "__setstate__")
            if not self._resolves(info, classes, method)
        ]
        if missing:
            yield info.ctx.diagnostic(
                self.id,
                info.node,
                f"codec class {info.name!r} crosses the process boundary but "
                f"lacks {' and '.join(missing)}; define the constructor-"
                "args-only pair (or make it a frozen dataclass) so workers "
                "rebuild warm state instead of unpickling it",
            )

    def _check_record_class(self, info: _ClassInfo, classes):
        if info.is_dataclass:
            return
        if self._resolves(info, classes, "__getstate__") and self._resolves(
            info, classes, "__setstate__"
        ):
            return
        yield info.ctx.diagnostic(
            self.id,
            info.node,
            f"record class {info.name!r} is shipped to workers but is "
            "neither a dataclass nor defines __getstate__/__setstate__; "
            "its pickled form is unspecified",
        )

    def _check_getstate_shape(self, info: _ClassInfo, method: ast.FunctionDef):
        body = list(method.body)
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        if (
            len(body) == 1
            and isinstance(body[0], ast.Return)
            and isinstance(body[0].value, ast.Dict)
        ):
            return
        yield info.ctx.diagnostic(
            self.id,
            method,
            f"{info.name}.__getstate__ must be a single 'return {{...}}' of "
            "constructor arguments — derived/live state (tables, caches, "
            "resolved engines) must be rebuilt by __init__, not pickled",
        )

    def _check_setstate_shape(self, info: _ClassInfo, method: ast.FunctionDef):
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                return
        yield info.ctx.diagnostic(
            self.id,
            method,
            f"{info.name}.__setstate__ must rebuild through "
            "'self.__init__(**state)' so the constructor re-validates and "
            "re-resolves the worker-side environment",
        )
