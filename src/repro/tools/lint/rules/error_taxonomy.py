"""error-taxonomy: failures surface as typed :mod:`repro.errors` exceptions.

PR 7 gave every execution-tier failure a typed, picklable exception carrying
structured context (worker id, rank, wave index) so the resilience machinery
routes failures without parsing strings.  That contract erodes in two ways:

* **Swallowed exceptions** — a bare ``except:`` or ``except Exception:``
  whose handler never re-raises hides crashes the recovery ladder should
  see.  Handlers that *do* re-raise (bare ``raise``, or raising a typed
  wrapper) are fine; genuinely intentional swallows (best-effort teardown)
  carry a reasoned suppression.
* **Untyped failures** — ``raise RuntimeError(...)`` from a public module
  gives callers nothing to catch but a string.  Failure-shaped builtins
  (RuntimeError/OSError/...) must be :mod:`repro.errors` types instead.
  Contract-shaped builtins (ValueError/TypeError/KeyError) stay allowed:
  "you passed a bad argument" is standard-library idiom, not an
  execution-tier failure.
"""

from __future__ import annotations

import ast

from ..engine import LintRule, ModuleContext, rule

__all__ = ["ErrorTaxonomyRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether a handler body contains any ``raise`` (nested defs excluded)."""

    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    """Names in the handler's type that are Exception/BaseException."""

    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    return [
        element.id
        for element in elements
        if isinstance(element, ast.Name) and element.id in _BROAD
    ]


def _raised_name(node: ast.expr | None) -> str | None:
    """The exception-class name a raise/cause expression constructs."""

    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    return None


@rule
class ErrorTaxonomyRule(LintRule):
    """Flag swallowed broad excepts and failure-builtin raises in public code."""

    id = "error-taxonomy"
    summary = (
        "no except:/except Exception without re-raise; failure builtins "
        "(RuntimeError, OSError, ...) must be repro.errors types"
    )

    def check_module(self, ctx: ModuleContext):
        """Flag bare/broad excepts without re-raise and forbidden builtin raises."""

        forbidden = frozenset(ctx.option(self.id, "forbidden_raises", ()))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None and not _handler_reraises(node):
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        "bare 'except:' swallows every failure (including "
                        "KeyboardInterrupt); name the exception types, or "
                        "re-raise",
                    )
                    continue
                broad = _broad_names(node)
                if broad and not _handler_reraises(node):
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"'except {broad[0]}' without re-raise hides failures "
                        "from the recovery machinery; catch the specific "
                        "repro.errors type, or re-raise a typed wrapper",
                    )
            elif isinstance(node, ast.Raise):
                for expr, role in ((node.exc, "raise"), (node.cause, "cause")):
                    name = _raised_name(expr)
                    if name in forbidden:
                        yield ctx.diagnostic(
                            self.id,
                            node,
                            f"{role} of builtin {name} from a public repro "
                            "module; failures must be typed — use (or add) a "
                            "repro.errors.ReproError subclass with "
                            "structured context",
                        )
