"""lock-order: a static deadlock detector for the threading-lock graph.

The thread tier's locks (`TaskExecutor._pool_guard`, `BlockCache._mutex`,
`SimulationReport._mutex`, `ScratchPool._available`) are individually tiny,
but deadlocks are a *composition* property: thread 1 holds A and wants B
while thread 2 holds B and wants A, or a thread blocks forever on a queue
while holding a lock every producer needs.  Neither shows up in unit tests
until the exact interleaving fires — usually under chaos mode.  This rule
builds the static lock-acquisition graph across the analyzed modules and
flags the two shapes:

* **Cycles** — lock B acquired (directly, or transitively through calls the
  analyzer can resolve: ``self.method()`` and same-module functions) while
  lock A is held, and elsewhere A while B.  Reported once per cycle with the
  full path and every edge's acquisition site.  Re-entrant self-edges on an
  ``RLock`` are legal and exempt; a self-edge on a plain ``Lock`` is a
  guaranteed self-deadlock and reported.
* **Blocking calls under a lock** — ``join``/``recv``/``get`` (zero
  positional arguments, so ``dict.get(key)`` and ``", ".join(parts)`` never
  match) or ``sleep`` called while any lock is held.  Waiting on a held
  :class:`threading.Condition` is the sanctioned sleep and exempt.

Lock identity is ``<module-stem>.<Class>.<attr>`` for ``self._x =
threading.Lock()`` attributes (including ``field(default_factory=...)``
dataclass fields) and ``<module-stem>.<NAME>`` for module globals.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from ..engine import Diagnostic, LintRule, ModuleContext, rule

__all__ = ["LockOrderRule"]

#: threading constructors that create a lock-like object.
_LOCK_TYPES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Blocking-call names that count regardless of arguments.
_ALWAYS_BLOCKING = frozenset({"sleep"})


@dataclass(frozen=True)
class _Lock:
    """One lock object: stable display id plus its constructor kind."""

    id: str
    kind: str  # "Lock" | "RLock" | "Condition" | ...

    @property
    def reentrant(self) -> bool:
        return self.kind in ("RLock", "Condition")


@dataclass
class _FunctionFacts:
    """Per-function analysis results feeding the interprocedural pass."""

    key: tuple  # (rel, class name | None, function name)
    direct_acquires: list[tuple[_Lock, ast.AST, tuple[_Lock, ...]]] = field(
        default_factory=list
    )
    calls: list[tuple[tuple[_Lock, ...], tuple, ast.AST, str]] = field(
        default_factory=list
    )
    blocking: list[tuple[ast.Call, str, _Lock]] = field(default_factory=list)


def _threading_lock_kind(node: ast.expr, imports: dict[str, str]) -> str | None:
    """The lock kind a call expression constructs, or None."""

    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if imports.get(func.value.id, func.value.id) == "threading":
            return func.attr if func.attr in _LOCK_TYPES else None
    if isinstance(func, ast.Name):
        resolved = imports.get(func.id, "")
        if resolved.startswith("threading."):
            kind = resolved.split(".", 1)[1]
            return kind if kind in _LOCK_TYPES else None
    return None


def _default_factory_kind(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Lock kind of a ``field(default_factory=threading.RLock)`` annotation."""

    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return None
    if imports.get(node.func.id, node.func.id).split(".")[-1] != "field":
        return None
    for keyword in node.keywords:
        if keyword.arg != "default_factory":
            continue
        value = keyword.value
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            if imports.get(value.value.id, value.value.id) == "threading":
                return value.attr if value.attr in _LOCK_TYPES else None
        if isinstance(value, ast.Name):
            resolved = imports.get(value.id, "")
            if resolved.startswith("threading."):
                kind = resolved.split(".", 1)[1]
                return kind if kind in _LOCK_TYPES else None
    return None


class _FunctionWalker:
    """Walk one function's statements tracking the held-lock stack."""

    def __init__(
        self,
        facts: _FunctionFacts,
        class_locks: dict[str, _Lock],
        module_locks: dict[str, _Lock],
        class_methods: set[str],
        module_functions: set[str],
        rel: str,
        class_name: str | None,
        blocking_names: frozenset[str],
    ) -> None:
        self.facts = facts
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.class_methods = class_methods
        self.module_functions = module_functions
        self.rel = rel
        self.class_name = class_name
        self.blocking_names = blocking_names
        self.held: list[_Lock] = []

    # -- lock resolution --------------------------------------------------------------

    def resolve_lock(self, node: ast.expr) -> _Lock | None:
        """The lock a ``with``/``.acquire()`` receiver expression names."""

        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self.class_locks.get(node.attr)
        if isinstance(node, ast.Name):
            return self.module_locks.get(node.id)
        return None

    # -- statement walk ---------------------------------------------------------------

    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            acquired: list[_Lock] = []
            for item in stmt.items:
                self.scan_expr(item.context_expr, skip_lock_with=True)
                lock = self.resolve_lock(item.context_expr)
                if lock is not None:
                    self.record_acquire(lock, item.context_expr)
                    self.held.append(lock)
                    acquired.append(lock)
            self.walk_body(stmt.body)
            for _ in acquired:
                self.held.pop()
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes are analyzed as their own functions
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.scan_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.scan_expr(stmt.iter)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        else:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self.scan_call(node)

    def scan_expr(self, expr: ast.expr, skip_lock_with: bool = False) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                if skip_lock_with and node is expr:
                    continue
                self.scan_call(node)

    # -- events -----------------------------------------------------------------------

    def record_acquire(self, lock: _Lock, node: ast.expr) -> None:
        self.facts.direct_acquires.append((lock, node, tuple(self.held)))

    def scan_call(self, node: ast.Call) -> None:
        func = node.func
        # Explicit .acquire()/.release() on a resolvable lock.
        if isinstance(func, ast.Attribute):
            receiver_lock = self.resolve_lock(func.value)
            if receiver_lock is not None and func.attr == "acquire":
                self.record_acquire(receiver_lock, node)
                self.held.append(receiver_lock)
                return
            if receiver_lock is not None and func.attr == "release":
                if receiver_lock in self.held:
                    self.held.remove(receiver_lock)
                return
            if receiver_lock is not None:
                return  # wait()/notify() on a lock we can name: sanctioned
        if not self.held:
            self.resolve_callee(node)
            return
        # Blocking-call check while at least one lock is held.
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if name in self.blocking_names and (
            name in _ALWAYS_BLOCKING or not node.args
        ):
            self.facts.blocking.append((node, name, self.held[-1]))
        self.resolve_callee(node)

    def resolve_callee(self, node: ast.Call) -> None:
        """Record resolvable callees for the interprocedural closure."""

        func = node.func
        callee: tuple | None = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in self.class_methods
        ):
            callee = (self.rel, self.class_name, func.attr)
        elif isinstance(func, ast.Name) and func.id in self.module_functions:
            callee = (self.rel, None, func.id)
        if callee is not None:
            self.facts.calls.append(
                (tuple(self.held), callee, node, callee[-1])
            )


@rule
class LockOrderRule(LintRule):
    """Flag lock-order cycles and blocking calls made while holding a lock."""

    id = "lock-order"
    summary = (
        "no lock-acquisition cycles; no join/recv/get/sleep while holding "
        "a lock"
    )

    def finalize(self, modules: list[ModuleContext]):
        """Build the whole-program lock graph and report cycles/blocking holds."""

        blocking_names: frozenset[str] = frozenset()
        all_facts: dict[tuple, _FunctionFacts] = {}
        contexts: dict[str, ModuleContext] = {}
        for ctx in modules:
            contexts[ctx.rel] = ctx
            blocking_names = blocking_names | frozenset(
                ctx.option(self.id, "blocking_calls", ("join", "recv", "get", "sleep"))
            )
            for facts in self._analyze_module(ctx, blocking_names):
                all_facts[facts.key] = facts

        # Interprocedural closure: every lock a function may acquire,
        # directly or through resolvable calls (bounded fixpoint).
        closure: dict[tuple, set[_Lock]] = {
            key: {lock for lock, _, _ in facts.direct_acquires}
            for key, facts in all_facts.items()
        }
        changed = True
        while changed:
            changed = False
            for key, facts in all_facts.items():
                for _, callee, _, _ in facts.calls:
                    extra = closure.get(callee, set()) - closure[key]
                    if extra:
                        closure[key].update(extra)
                        changed = True

        # Edges: (from, to) -> (rel, node, description), first site wins.
        edges: dict[tuple[str, str], tuple[str, ast.AST, str]] = {}
        for key, facts in all_facts.items():
            rel = key[0]
            for lock, node, held_before in facts.direct_acquires:
                for held in held_before:
                    self._add_edge(edges, held, lock, rel, node, "acquired here")
            for held_stack, callee, node, callee_name in facts.calls:
                for target in closure.get(callee, ()):
                    for held in held_stack:
                        self._add_edge(
                            edges,
                            held,
                            target,
                            rel,
                            node,
                            f"via call to {callee_name}()",
                        )

        lock_by_id = {
            lock.id: lock
            for facts in all_facts.values()
            for lock, _, _ in facts.direct_acquires
        }
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(self._cycle_diagnostics(edges, lock_by_id))
        for key, facts in all_facts.items():
            ctx = contexts[key[0]]
            for node, name, held in facts.blocking:
                diagnostics.append(
                    ctx.diagnostic(
                        self.id,
                        node,
                        f"blocking call {name}() while holding lock "
                        f"{held.id}; any thread needing that lock now waits "
                        "on this call's peer — move the blocking operation "
                        "outside the critical section",
                    )
                )
        return diagnostics

    # -- per-module analysis ----------------------------------------------------------

    def _analyze_module(self, ctx: ModuleContext, blocking_names: frozenset[str]):
        stem = PurePosixPath(ctx.rel).stem
        imports = ctx.imports

        module_locks: dict[str, _Lock] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                kind = _threading_lock_kind(stmt.value, imports)
                if kind and isinstance(target, ast.Name):
                    module_locks[target.id] = _Lock(f"{stem}.{target.id}", kind)

        class_lock_maps: dict[str, dict[str, _Lock]] = {}
        class_method_sets: dict[str, set[str]] = {}
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            locks: dict[str, _Lock] = {}
            methods: set[str] = set()
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(member.name)
                    for inner in ast.walk(member):
                        if isinstance(inner, ast.Assign):
                            kind = _threading_lock_kind(inner.value, imports)
                            if kind:
                                for target in inner.targets:
                                    if (
                                        isinstance(target, ast.Attribute)
                                        and isinstance(target.value, ast.Name)
                                        and target.value.id == "self"
                                    ):
                                        locks[target.attr] = _Lock(
                                            f"{stem}.{node.name}.{target.attr}",
                                            kind,
                                        )
                elif isinstance(member, ast.AnnAssign) and member.value is not None:
                    kind = _default_factory_kind(member.value, imports)
                    if kind and isinstance(member.target, ast.Name):
                        locks[member.target.id] = _Lock(
                            f"{stem}.{node.name}.{member.target.id}", kind
                        )
            class_lock_maps[node.name] = locks
            class_method_sets[node.name] = methods

        module_functions = {
            stmt.name
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _FunctionFacts(key=(ctx.rel, None, stmt.name))
                walker = _FunctionWalker(
                    facts,
                    {},
                    module_locks,
                    set(),
                    module_functions,
                    ctx.rel,
                    None,
                    blocking_names,
                )
                walker.walk_body(stmt.body)
                yield facts
            elif isinstance(stmt, ast.ClassDef):
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        facts = _FunctionFacts(key=(ctx.rel, stmt.name, member.name))
                        walker = _FunctionWalker(
                            facts,
                            class_lock_maps[stmt.name],
                            module_locks,
                            class_method_sets[stmt.name],
                            module_functions,
                            ctx.rel,
                            stmt.name,
                            blocking_names,
                        )
                        walker.walk_body(member.body)
                        yield facts

    # -- graph assembly ---------------------------------------------------------------

    @staticmethod
    def _add_edge(edges, held: _Lock, acquired: _Lock, rel, node, how) -> None:
        if held.id == acquired.id and acquired.reentrant:
            return  # re-entering an RLock/Condition is legal
        edges.setdefault((held.id, acquired.id), (rel, node, how))

    def _cycle_diagnostics(self, edges, lock_by_id):
        graph: dict[str, list[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])

        # Self-deadlocks (non-reentrant lock re-acquired under itself).
        reported: set[frozenset[str]] = set()
        diagnostics = []
        for (src, dst), (rel, node, how) in sorted(
            edges.items(), key=lambda item: (item[1][0], item[1][1].lineno)
        ):
            if src == dst:
                diagnostics.append(
                    Diagnostic(
                        self.id,
                        rel,
                        node.lineno,
                        node.col_offset + 1,
                        f"non-reentrant lock {src} re-acquired while already "
                        f"held ({how}): guaranteed self-deadlock — use an "
                        "RLock or restructure",
                    )
                )
                reported.add(frozenset((src,)))

        # Proper cycles through ≥2 locks: DFS from each node, smallest
        # cycle found per distinct lock set.
        for start in sorted(graph):
            path: list[str] = []
            diagnostics.extend(
                self._dfs_cycles(start, start, graph, edges, path, reported, set())
            )
        return diagnostics

    def _dfs_cycles(self, start, current, graph, edges, path, reported, visiting):
        path.append(current)
        visiting.add(current)
        for nxt in sorted(graph.get(current, ())):
            if nxt == start and len(path) > 1:
                members = frozenset(path)
                if members in reported:
                    continue
                reported.add(members)
                cycle = path + [start]
                sites = []
                for a, b in zip(cycle, cycle[1:]):
                    rel, node, how = edges[(a, b)]
                    sites.append(f"{a} -> {b} at {rel}:{node.lineno} ({how})")
                rel, node, _ = edges[(cycle[0], cycle[1])]
                yield Diagnostic(
                    self.id,
                    rel,
                    node.lineno,
                    node.col_offset + 1,
                    "lock-order cycle "
                    + " -> ".join(cycle)
                    + ": two threads taking these locks in opposing order "
                    "deadlock; acquire them in one global order ["
                    + "; ".join(sites)
                    + "]",
                )
            elif nxt not in visiting:
                yield from self._dfs_cycles(
                    start, nxt, graph, edges, path, reported, visiting
                )
        path.pop()
        visiting.discard(current)
