"""mp-hygiene: raw multiprocessing primitives stay in the two transport modules.

The process tier's correctness depends on every process and shared-memory
segment being owned by :class:`repro.core.procpool.ProcessPool` or
:class:`repro.distributed.process_comm.RankCommArena` — those two own the
spawn/teardown discipline (bounded joins, single-unlink, fault arming).  A
stray ``multiprocessing.Process`` elsewhere bypasses all of it: no crash
detection, no chaos gating, zombies on interpreter exit.  This rule flags
any ``import multiprocessing`` (or submodule) outside the allow-listed
files.
"""

from __future__ import annotations

import ast

from ..engine import LintRule, ModuleContext, rule

__all__ = ["MpHygieneRule"]


@rule
class MpHygieneRule(LintRule):
    """Flag multiprocessing imports outside the sanctioned transport modules."""

    id = "mp-hygiene"
    summary = (
        "raw multiprocessing primitives only in core/procpool.py and "
        "distributed/process_comm.py"
    )

    def check_module(self, ctx: ModuleContext):
        """Flag multiprocessing imports outside the two sanctioned modules."""

        allowed = ctx.option(self.id, "allowed_files", ())
        if ctx.rel in allowed:
            return
        for node in ast.walk(ctx.tree):
            module = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        module = alias.name
                        break
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "multiprocessing":
                    module = node.module
            if module is not None:
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"import of {module!r} outside the process-transport "
                    "modules; route process/shared-memory work through "
                    "repro.core.procpool.ProcessPool or "
                    "repro.distributed.process_comm",
                )
