"""resource-hygiene: shared memory and file handles cannot leak.

A leaked ``SharedMemory`` segment outlives the interpreter (it is a file in
``/dev/shm`` until unlinked) and a leaked file handle is a descriptor the
fault-injection chaos runs eventually exhaust.  The codebase's discipline,
established in :mod:`repro.core.procpool`:

* every ``shared_memory.SharedMemory(...)`` created is either **owned** —
  assigned to ``self.<attr>`` in a class that defines ``close()`` or
  ``__exit__`` — or **transferred** (directly returned), or created under a
  ``try/finally`` that closes it;
* every ``open(...)`` is a ``with`` context manager;
* every asyncio task is **held**: a ``create_task(...)`` /
  ``ensure_future(...)`` whose return value is discarded is a lost task —
  the event loop keeps only a weak reference, so the task can be
  garbage-collected mid-flight and its exception is silently dropped
  (:mod:`repro.serve` stores its workers precisely to keep its
  zero-leaked-tasks close contract checkable).  ``TaskGroup`` receivers
  (``tg`` / ``group`` / ``task_group``) own their tasks and are exempt.

This rule enforces exactly that, statically.
"""

from __future__ import annotations

import ast

from ..engine import LintRule, ModuleContext, rule

__all__ = ["ResourceHygieneRule"]


def _call_name(node: ast.Call) -> str | None:
    """Last attribute/name segment of the called expression."""

    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


#: Spawning call names whose return value must not be discarded.
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Receiver names that look like an ``asyncio.TaskGroup`` — groups keep a
#: strong reference to (and await) every task they spawn, so a discarded
#: ``tg.create_task(...)`` is not lost.
_TASKGROUP_RECEIVERS = frozenset({"tg", "group", "task_group", "taskgroup"})


def _is_lost_task_call(node: ast.Call) -> bool:
    """Whether *node* spawns an asyncio task outside a TaskGroup."""

    if _call_name(node) not in _TASK_SPAWNERS:
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in _TASKGROUP_RECEIVERS:
            return False
    return True


class _FunctionScanner(ast.NodeVisitor):
    """Collect resource-creation sites within one function (or module) body."""

    def __init__(self) -> None:
        self.open_calls: list[ast.Call] = []
        self.shm_calls: list[ast.Call] = []
        self.lost_task_calls: list[ast.Call] = []
        self.with_items: set[int] = set()
        self.returned: set[int] = set()
        self.self_assigned: set[int] = set()
        self.has_finally_close = False

    def visit_Expr(self, node: ast.Expr) -> None:
        # A task-spawning call as a bare expression statement discards the
        # only strong reference to the task.  ``await create_task(...)``
        # wraps the call in ast.Await and is therefore not a bare Call here.
        if isinstance(node.value, ast.Call) and _is_lost_task_call(node.value):
            self.lost_task_calls.append(node.value)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                self.with_items.add(id(expr))
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Call):
            self.returned.add(id(node.value))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.self_assigned.add(id(node.value))
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        if node.finalbody:
            for final_node in ast.walk(ast.Module(body=node.finalbody, type_ignores=[])):
                if (
                    isinstance(final_node, ast.Call)
                    and _call_name(final_node) in ("close", "unlink", "cleanup")
                ):
                    self.has_finally_close = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "open" and isinstance(node.func, ast.Name):
            self.open_calls.append(node)
        elif name == "SharedMemory":
            self.shm_calls.append(node)
        self.generic_visit(node)

    # Nested defs get their own scanner pass; do not double-visit.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _class_has_teardown(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
        and member.name in ("close", "__exit__", "__del__")
        for member in cls.body
    )


@rule
class ResourceHygieneRule(LintRule):
    """Flag SharedMemory/file handles and asyncio tasks that can leak."""

    id = "resource-hygiene"
    summary = (
        "SharedMemory/open() handles closed via with, finally, or owner "
        "close(); asyncio tasks stored, not spawned-and-discarded"
    )

    def check_module(self, ctx: ModuleContext):
        """Flag open()/SharedMemory acquisitions with no deterministic release."""

        yield from self._scan_scope(ctx, ctx.tree.body, enclosing_class=None)

    def _scan_scope(self, ctx: ModuleContext, body, enclosing_class):
        scanner = _FunctionScanner()
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scanner.visit(stmt)
        yield from self._report(ctx, scanner, enclosing_class)
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan_scope(ctx, stmt.body, enclosing_class=stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_scanner = _FunctionScanner()
                for inner in stmt.body:
                    fn_scanner.visit(inner)
                yield from self._report(ctx, fn_scanner, enclosing_class)
                # One level of nested defs is enough for this codebase; a
                # deeper nest re-enters here through the recursion below.
                yield from self._scan_scope(
                    ctx,
                    [n for n in stmt.body if isinstance(n, (ast.FunctionDef, ast.ClassDef))],
                    enclosing_class,
                )

    def _report(self, ctx: ModuleContext, scanner: _FunctionScanner, enclosing_class):
        owner_ok = enclosing_class is not None and _class_has_teardown(enclosing_class)
        for call in scanner.open_calls:
            if id(call) in scanner.with_items:
                continue
            if id(call) in scanner.returned:
                continue
            if scanner.has_finally_close:
                continue
            if id(call) in scanner.self_assigned and owner_ok:
                continue
            yield ctx.diagnostic(
                self.id,
                call,
                "open() outside a 'with' block leaks the handle on any "
                "exception; use 'with open(...) as f:' (or close in a "
                "finally)",
            )
        for call in scanner.shm_calls:
            if id(call) in scanner.returned:
                continue  # ownership transferred to the caller
            if scanner.has_finally_close:
                continue
            if id(call) in scanner.self_assigned and owner_ok:
                continue
            yield ctx.diagnostic(
                self.id,
                call,
                "SharedMemory segment with no reachable close: assign it to "
                "self in a class defining close()/__exit__, close it in a "
                "finally, or return it to a caller that does",
            )
        for call in scanner.lost_task_calls:
            yield ctx.diagnostic(
                self.id,
                call,
                "asyncio task spawned and discarded: the loop holds only a "
                "weak reference, so the task can be garbage-collected "
                "mid-flight and its exception silently dropped; store the "
                "returned task (and await or cancel it at teardown) or "
                "spawn it through an asyncio.TaskGroup",
            )
