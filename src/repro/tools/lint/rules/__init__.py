"""The rule catalog: importing this package registers every rule.

Each module holds one rule class decorated with
:func:`repro.tools.lint.engine.rule`; the engine's registry is populated as
a side effect of the imports below.  Rule ids are the kebab-case module
themes — they are the stable public names used in suppressions, ``--select``
and the JSON report, so renaming one is a breaking change.
"""

from . import (  # noqa: F401  (imported for their registration side effect)
    determinism,
    docstrings,
    error_taxonomy,
    lock_order,
    mp_hygiene,
    njit_purity,
    pickle_contract,
    resource_hygiene,
    suppression_format,
)

__all__ = [
    "determinism",
    "docstrings",
    "error_taxonomy",
    "lock_order",
    "mp_hygiene",
    "njit_purity",
    "pickle_contract",
    "resource_hygiene",
    "suppression_format",
]
