"""suppression-format: every suppression carries a reason and a real rule id.

The diagnostics themselves are produced by the engine's
:class:`~repro.tools.lint.engine.SuppressionTable` while parsing comments
(they must exist even for files whose rules are all path-disabled, and they
must not be suppressible by the very mechanism they police).  This class
exists so the rule id appears in the catalog (``--list-rules``), can be
selected, and is documented like every other rule.
"""

from __future__ import annotations

from ..engine import SUPPRESSION_FORMAT, LintRule, rule

__all__ = ["SuppressionFormatRule"]


@rule
class SuppressionFormatRule(LintRule):
    """Catalog entry for the engine-level suppression checks (no-op body)."""

    id = SUPPRESSION_FORMAT
    summary = (
        "disable= comments name known rules and carry a ' -- reason'; "
        "reasonless suppressions do not suppress"
    )
