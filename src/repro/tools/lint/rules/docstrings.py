"""docstring-coverage: every public surface of the library is documented.

The docs builder (PR 5) enforced docstring coverage for a hand-picked set of
packages at site-build time; this rule generalises that check to the whole
of ``src/repro`` and moves it into the lint run, so a missing docstring
fails fast in CI's ``lint`` job rather than late in ``docs-build`` — and so
the same suppression/reason machinery applies as everywhere else.

Public means: modules, and every class / function / method / property whose
name does not start with ``_`` and that is not nested inside a private
class.  Dunders are exempt except via the class docstring (``__init__``
parameters belong in the class docstring, the numpydoc convention the
codebase already follows).  Function-local defs are implementation detail
and exempt.
"""

from __future__ import annotations

import ast

from ..engine import LintRule, ModuleContext, rule

__all__ = ["DocstringCoverageRule"]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


@rule
class DocstringCoverageRule(LintRule):
    """Flag public modules/classes/functions/methods without docstrings."""

    id = "docstring-coverage"
    summary = "public repro.* modules, classes and callables carry docstrings"

    def check_module(self, ctx: ModuleContext):
        """Flag public module/class/function/method surfaces without docstrings."""

        if ast.get_docstring(ctx.tree) is None:
            yield ctx.diagnostic(
                self.id,
                ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                "module has no docstring",
            )
        yield from self._walk_body(ctx, ctx.tree.body, owner=None)

    def _walk_body(self, ctx: ModuleContext, body, owner: str | None):
        for node in body:
            if isinstance(node, ast.ClassDef):
                if _is_public(node.name):
                    if ast.get_docstring(node) is None:
                        yield ctx.diagnostic(
                            self.id,
                            node,
                            f"public class {self._qual(owner, node.name)!r} "
                            "has no docstring",
                        )
                    yield from self._walk_body(
                        ctx, node.body, owner=self._qual(owner, node.name)
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name) and ast.get_docstring(node) is None:
                    kind = "method" if owner else "function"
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"public {kind} {self._qual(owner, node.name)!r} "
                        "has no docstring",
                    )
                # Function-local defs are implementation detail: recurse only
                # through classes, never into callables.

    @staticmethod
    def _qual(owner: str | None, name: str) -> str:
        return f"{owner}.{name}" if owner else name
