"""determinism: no global-RNG calls, no wall-clock control flow.

Every execution tier is asserted *bit-identical* to the sequential
reference, and batched runs replay seeds through a ``SeedSequence`` ladder —
one ``np.random.shuffle()`` against the process-global generator anywhere in
the library silently breaks both.  Likewise ``time.time()`` is wall clock:
it jumps under NTP and differs across ranks, so interval measurement and
control flow must use ``time.monotonic()`` / ``time.perf_counter()``
(benchmarks, which legitimately record timestamps, are exempt by path
configuration).

Flagged:

* calls through the module-global numpy RNG (``np.random.<fn>(...)``) —
  construct a seeded ``np.random.default_rng(seed)`` / ``Generator``;
* calls through the module-global stdlib RNG (``random.<fn>(...)``) —
  construct a seeded ``random.Random(seed)``;
* any ``time.time()`` call.
"""

from __future__ import annotations

import ast

from ..engine import LintRule, ModuleContext, rule

__all__ = ["DeterminismRule"]

#: np.random attributes that are seeded-generator *constructors* (allowed);
#: every other np.random attribute call is global-state.
_NUMPY_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "RandomState",  # explicit-seed legacy generator, still instance-local
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "BitGenerator",
    }
)

#: random-module attributes that build instance-local generators (allowed).
_STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})


def _dotted(node: ast.AST) -> list[str] | None:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (None when dynamic)."""

    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


@rule
class DeterminismRule(LintRule):
    """Flag unseeded global-RNG calls and wall-clock ``time.time()`` use."""

    id = "determinism"
    summary = "no np.random.*/random.* global-state calls, no time.time()"

    def check_module(self, ctx: ModuleContext):
        """Flag unseeded RNG constructors/functions and time-based control flow."""

        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            root_module = imports.get(chain[0], chain[0])
            # np.random.<fn>(...) — three-part chain rooted at numpy.
            if (
                len(chain) == 3
                and root_module == "numpy"
                and chain[1] == "random"
                and chain[2] not in _NUMPY_ALLOWED
            ):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"call to the process-global numpy RNG "
                    f"({'.'.join([root_module, *chain[1:]])}); use a seeded "
                    "np.random.default_rng(seed) instance so runs replay "
                    "bit-identically",
                )
            # random.<fn>(...) — the stdlib module-global generator.
            elif (
                len(chain) == 2
                and root_module == "random"
                and chain[1] not in _STDLIB_ALLOWED
            ):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"call to the process-global stdlib RNG "
                    f"({'.'.join(chain)}); use a seeded random.Random(seed) "
                    "instance",
                )
            # from random import shuffle; shuffle(...) — same generator.
            elif (
                len(chain) == 1
                and imports.get(chain[0], "").startswith("random.")
                and imports[chain[0]].split(".", 1)[1] not in _STDLIB_ALLOWED
            ):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"call to the process-global stdlib RNG "
                    f"({imports[chain[0]]}); use a seeded "
                    "random.Random(seed) instance",
                )
            elif chain[-1] == "time" and (
                (len(chain) == 2 and root_module == "time")
                or (len(chain) == 1 and imports.get(chain[0], "") == "time.time")
            ):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    "time.time() is wall clock (jumps under NTP, differs "
                    "across ranks); use time.monotonic() or "
                    "time.perf_counter() for intervals and deadlines",
                )
