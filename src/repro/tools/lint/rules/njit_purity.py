"""njit-purity: JIT kernels stay inside the subset numba compiles.

The engine contract (PR 6) is that every ``@njit`` kernel in
:mod:`repro.compression.engines.numba_engine` compiles in **nopython** mode:
an unsupported construct does not fail the build, it silently falls back to
object mode (or trips at first call on a numba host only), turning the
"≥3x over numpy" floor into a 100x regression that CI's numba-less legs
never see.  This rule makes the unsupported constructs *lint* errors, so a
kernel that would fall back is caught on every machine.

Flagged inside any function decorated ``@njit`` (bare, called, or through
an alias like ``@njit(**_JIT)``):

* dict/set comprehensions, dict/set literals (reflected containers);
* f-strings and ``str.format``/``%`` formatting (object-mode strings);
* ``try/finally`` and ``with`` (unsupported control flow);
* closures: ``lambda``, nested ``def``, ``global``/``nonlocal``;
* ``yield`` (generators pin object mode in this codebase's usage);
* calls outside the compiled subset: anything that is not a numpy/math
  attribute, an allow-listed builtin, a local variable's method, or another
  module-local kernel.
"""

from __future__ import annotations

import ast

from ..engine import LintRule, ModuleContext, rule

__all__ = ["NjitPurityRule"]

#: Builtins numba's nopython mode supports and kernels legitimately use.
_ALLOWED_BUILTINS = frozenset(
    {
        "range",
        "len",
        "abs",
        "min",
        "max",
        "int",
        "float",
        "bool",
        "round",
        "enumerate",
        "zip",
        "divmod",
        "print",  # numba-supported, though kernels here avoid it
    }
)

#: Import roots whose attribute calls are allowed inside a kernel.
_ALLOWED_MODULE_ROOTS = frozenset({"numpy", "math", "cmath"})


def _is_njit_decorator(node: ast.expr) -> bool:
    """Whether a decorator expression is ``njit``/``numba.njit`` (maybe called)."""

    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == "njit"
    return isinstance(node, ast.Name) and node.id == "njit"


@rule
class NjitPurityRule(LintRule):
    """Flag constructs that silently drop an ``@njit`` kernel to object mode."""

    id = "njit-purity"
    summary = "@njit kernels restricted to the numba-compilable numpy/scalar subset"

    def check_module(self, ctx: ModuleContext):
        """Flag constructs inside ``@njit`` kernels that nopython cannot compile."""

        local_functions = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.FunctionDef)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and any(
                _is_njit_decorator(dec) for dec in node.decorator_list
            ):
                yield from self._check_kernel(ctx, node, local_functions)

    def _check_kernel(
        self, ctx: ModuleContext, kernel: ast.FunctionDef, local_functions: set[str]
    ):
        locals_: set[str] = {arg.arg for arg in kernel.args.args}
        locals_.update(arg.arg for arg in kernel.args.posonlyargs)
        locals_.update(arg.arg for arg in kernel.args.kwonlyargs)
        for node in ast.walk(kernel):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            locals_.add(name.id)
            elif isinstance(node, ast.For):
                for name in ast.walk(node.target):
                    if isinstance(name, ast.Name):
                        locals_.add(name.id)
            elif isinstance(node, (ast.comprehension,)):
                for name in ast.walk(node.target):
                    if isinstance(name, ast.Name):
                        locals_.add(name.id)

        what = f"@njit kernel {kernel.name!r}"
        # The decorator expressions and default values run at *definition*
        # time in plain Python — only the body is compiled.
        skip = {
            id(sub)
            for outside in (
                kernel.decorator_list
                + kernel.args.defaults
                + [d for d in kernel.args.kw_defaults if d is not None]
            )
            for sub in ast.walk(outside)
        }
        for node in ast.walk(kernel):
            if node is kernel or id(node) in skip:
                continue
            if isinstance(node, (ast.DictComp, ast.SetComp)):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: dict/set comprehensions are not nopython-"
                    "compilable (silent object-mode fallback)",
                )
            elif isinstance(node, (ast.Dict, ast.Set)):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: dict/set literals are reflected Python objects; "
                    "use arrays (or numba.typed containers outside the "
                    "kernel)",
                )
            elif isinstance(node, ast.JoinedStr):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: f-strings force object mode; return a status "
                    "code and format in the caller",
                )
            elif isinstance(node, ast.Try) and node.finalbody:
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: try/finally is not nopython-compilable",
                )
            elif isinstance(node, ast.With):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: 'with' blocks are not nopython-compilable",
                )
            elif isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: closures/nested functions are not supported in "
                    "nopython mode",
                )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: global/nonlocal mutation pins the kernel to "
                    "object mode",
                )
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: generators are outside the engine-kernel "
                    "subset; return arrays",
                )
            elif isinstance(node, ast.Call):
                diagnostic = self._check_call(
                    ctx, what, node, locals_, local_functions
                )
                if diagnostic is not None:
                    yield diagnostic

    def _check_call(
        self,
        ctx: ModuleContext,
        what: str,
        node: ast.Call,
        locals_: set[str],
        local_functions: set[str],
    ):
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if (
                name in _ALLOWED_BUILTINS
                or name in local_functions
                or name in locals_
            ):
                return None
            return ctx.diagnostic(
                self.id,
                node,
                f"{what}: call to {name!r} is outside the compiled subset "
                "(allowed: numpy/math, scalar builtins, other local "
                "kernels)",
            )
        if isinstance(func, ast.Attribute):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                resolved = ctx.imports.get(root.id)
                if resolved is None or root.id in locals_:
                    return None  # method on a local value (array.sum() etc.)
                if resolved.split(".")[0] in _ALLOWED_MODULE_ROOTS:
                    if func.attr == "format":
                        return ctx.diagnostic(
                            self.id,
                            node,
                            f"{what}: str.format forces object mode",
                        )
                    return None
                return ctx.diagnostic(
                    self.id,
                    node,
                    f"{what}: call into module {resolved!r} is outside the "
                    "compiled subset (allowed roots: numpy, math, cmath)",
                )
        return None
