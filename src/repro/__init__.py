"""repro: full-state quantum circuit simulation by using data compression.

Reproduction of Wu et al., "Full-State Quantum Circuit Simulation by Using
Data Compression" (SC 2019).  The package is organised as:

* :mod:`repro.circuits` — gates and circuit construction,
* :mod:`repro.statevector` — the dense (compression-free) reference simulator,
* :mod:`repro.distributed` — rank / block decomposition, the communicator
  hierarchy (simulated / shared-memory process / future MPI) and the
  multi-rank execution tier,
* :mod:`repro.compression` — lossless and error-bounded lossy compressors,
* :mod:`repro.core` — the compressed-state simulator (the paper's contribution),
* :mod:`repro.backends` — the unified ``run()`` API over pluggable engines,
* :mod:`repro.applications` — Grover, random-circuit, QAOA, QFT workloads,
* :mod:`repro.analysis` — memory models, fidelity bounds and reporting.

The one-call entry point is :func:`repro.run`::

    import repro

    circuit = repro.QuantumCircuit(20).h(0).cx(0, 1)
    result = repro.run(circuit, backend="compressed", shots=1000, seed=7)
    print(result.counts, result.report["fidelity_lower_bound"])

Batches, observables and engine selection ride the same call::

    energy = repro.run(
        qaoa_circuits,                       # ResultSet, one warm simulator
        observables=repro.PauliObservable("ZZII"),
    )
"""

from __future__ import annotations

from .circuits import Gate, QuantumCircuit
from .compression import (
    Compressor,
    ErrorBoundMode,
    available_compressors,
    get_compressor,
)
from .core import (
    CompressedSimulator,
    SimulationReport,
    SimulatorConfig,
    load_checkpoint,
    save_checkpoint,
)
from .errors import (
    BlockCorruptionError,
    CheckpointError,
    PoolProtocolError,
    ProcessCommTimeout,
    ReproError,
    WorkerCrashedError,
)
from .resilience import FaultPolicy, resolve_fault_policy
from .statevector import DenseSimulator, simulate_statevector, state_fidelity
from .backends import (
    Backend,
    BackendError,
    CompressedBackend,
    DenseBackend,
    PauliObservable,
    Result,
    ResultSet,
    available_backends,
    get_backend,
    register_backend,
    run,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "QuantumCircuit",
    "Gate",
    "CompressedSimulator",
    "SimulatorConfig",
    "SimulationReport",
    "save_checkpoint",
    "load_checkpoint",
    "ReproError",
    "WorkerCrashedError",
    "ProcessCommTimeout",
    "BlockCorruptionError",
    "CheckpointError",
    "PoolProtocolError",
    "FaultPolicy",
    "resolve_fault_policy",
    "DenseSimulator",
    "simulate_statevector",
    "state_fidelity",
    "Compressor",
    "ErrorBoundMode",
    "get_compressor",
    "available_compressors",
    "run",
    "Backend",
    "BackendError",
    "register_backend",
    "get_backend",
    "available_backends",
    "CompressedBackend",
    "DenseBackend",
    "PauliObservable",
    "Result",
    "ResultSet",
]
