"""repro: full-state quantum circuit simulation by using data compression.

Reproduction of Wu et al., "Full-State Quantum Circuit Simulation by Using
Data Compression" (SC 2019).  The package is organised as:

* :mod:`repro.circuits` — gates and circuit construction,
* :mod:`repro.statevector` — the dense (compression-free) reference simulator,
* :mod:`repro.distributed` — simulated MPI rank / block decomposition,
* :mod:`repro.compression` — lossless and error-bounded lossy compressors,
* :mod:`repro.core` — the compressed-state simulator (the paper's contribution),
* :mod:`repro.applications` — Grover, random-circuit, QAOA, QFT workloads,
* :mod:`repro.analysis` — memory models, fidelity bounds and reporting.

The most common entry points are re-exported here::

    from repro import CompressedSimulator, SimulatorConfig, QuantumCircuit

    circuit = QuantumCircuit(20).h(0).cx(0, 1)
    simulator = CompressedSimulator(20, SimulatorConfig(num_ranks=4))
    report = simulator.apply_circuit(circuit)
"""

from __future__ import annotations

from .circuits import Gate, QuantumCircuit
from .compression import (
    Compressor,
    ErrorBoundMode,
    available_compressors,
    get_compressor,
)
from .core import (
    CompressedSimulator,
    SimulationReport,
    SimulatorConfig,
    load_checkpoint,
    save_checkpoint,
)
from .statevector import DenseSimulator, simulate_statevector, state_fidelity

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "QuantumCircuit",
    "Gate",
    "CompressedSimulator",
    "SimulatorConfig",
    "SimulationReport",
    "save_checkpoint",
    "load_checkpoint",
    "DenseSimulator",
    "simulate_statevector",
    "state_fidelity",
    "Compressor",
    "ErrorBoundMode",
    "get_compressor",
    "available_compressors",
]
