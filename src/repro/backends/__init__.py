"""Unified backend API: pluggable engines behind one ``run()`` surface.

* :class:`Backend` — the engine ABC; :func:`register_backend` /
  :func:`get_backend` / :func:`available_backends` manage the registry.
* :class:`CompressedBackend` / :class:`DenseBackend` — adapters over the two
  existing simulators (registered as ``"compressed"`` and ``"dense"``).
* :class:`Result` / :class:`ResultSet` — uniform, JSON-round-trippable run
  records.
* :class:`PauliObservable` — weighted Pauli-string observables whose
  ``expectation()`` is evaluated blockwise on the compressed representation.
* :func:`run` — the top-level convenience re-exported as ``repro.run``.
"""

from .base import (
    Backend,
    BackendError,
    available_backends,
    get_backend,
    register_backend,
)
from .compressed import CompressedBackend
from .dense import DenseBackend
from .observables import PauliObservable
from .result import Result, ResultSet
from .runner import run

__all__ = [
    "Backend",
    "BackendError",
    "register_backend",
    "get_backend",
    "available_backends",
    "CompressedBackend",
    "DenseBackend",
    "PauliObservable",
    "Result",
    "ResultSet",
    "run",
]
