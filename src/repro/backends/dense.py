"""The dense reference engine behind the unified API.

Adapter over :class:`~repro.statevector.dense.DenseSimulator` (the Intel-QS
role in the paper).  A dense simulator is one allocation with no warm-up
cost, so the session is trivial and each circuit gets a fresh instance —
what matters is that it answers the exact same ``run()`` surface as the
compressed engine, which is what the differential tests and the Table-2
comparisons lean on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuits import QuantumCircuit
from ..statevector.dense import DenseSimulator
from .base import Backend, register_backend
from .observables import PauliObservable
from .result import Result

__all__ = ["DenseBackend"]


@register_backend("dense")
class DenseBackend(Backend):
    """Compression-free full-state reference simulation."""

    name = "dense"

    def _open_session(self) -> None:
        return None

    def _execute(
        self,
        circuit: QuantumCircuit,
        *,
        session: None,
        shots: int,
        observables: Sequence[PauliObservable],
        rng: np.random.Generator,
        return_statevector: bool,
    ) -> Result:
        simulator = DenseSimulator(circuit.num_qubits)
        simulator.apply_circuit(circuit)
        counts = simulator.sample_counts(shots, rng) if shots else None
        expectations = self._evaluate_observables(observables, simulator)
        statevector = simulator.statevector() if return_statevector else None
        return Result(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            shots=shots,
            counts=counts,
            expectations=expectations,
            statevector=statevector,
            report=None,
            metadata={"memory_bytes": simulator.memory_bytes()},
        )
