"""The compressed-state engine behind the unified API.

Adapter over :class:`~repro.core.simulator.CompressedSimulator`.  The batch
session keeps **one warm simulator per register width**: the first circuit of
a width pays for partition setup, scratch-pool allocation and (with
``num_workers > 1``) thread-pool spin-up; subsequent circuits of that width
just :meth:`~repro.core.simulator.CompressedSimulator.reset` the state and
reuse everything — the throughput path for angle sweeps and benchmark
batteries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuits import QuantumCircuit
from ..core.config import SimulatorConfig
from ..core.simulator import CompressedSimulator
from ..distributed.comm import SimulatedCommunicator
from .base import Backend, register_backend
from .observables import PauliObservable
from .result import Result

__all__ = ["CompressedBackend"]


@dataclass
class _CompressedSession:
    """Per-batch state: the config and the warm simulator per width.

    ``comm`` lets benches with a modelled interconnect (fig16) inject their
    own :class:`~repro.distributed.comm.SimulatedCommunicator` through the
    registry instead of hand-building simulators; it is shared by every
    simulator of the session and reset between circuits like the rest of
    the per-circuit state.
    """

    config: SimulatorConfig
    comm: SimulatedCommunicator | None = None
    simulators: dict[int, CompressedSimulator] = field(default_factory=dict)

    def simulator_for(self, num_qubits: int) -> CompressedSimulator:
        simulator = self.simulators.get(num_qubits)
        if simulator is None:
            simulator = CompressedSimulator(num_qubits, self.config, comm=self.comm)
            self.simulators[num_qubits] = simulator
        else:
            simulator.reset()
        return simulator

    def close(self) -> None:
        for simulator in self.simulators.values():
            simulator.close()
        self.simulators.clear()


@register_backend("compressed")
class CompressedBackend(Backend):
    """Full-state simulation with the state held compressed (the paper)."""

    name = "compressed"

    def _open_session(
        self,
        config: SimulatorConfig | None = None,
        comm: SimulatedCommunicator | None = None,
    ) -> _CompressedSession:
        return _CompressedSession(config=config or SimulatorConfig(), comm=comm)

    def _close_session(self, session: _CompressedSession) -> None:
        session.close()

    def _execute(
        self,
        circuit: QuantumCircuit,
        *,
        session: _CompressedSession,
        shots: int,
        observables: Sequence[PauliObservable],
        rng: np.random.Generator,
        return_statevector: bool,
    ) -> Result:
        simulator = session.simulator_for(circuit.num_qubits)
        report = simulator.apply_circuit(circuit)
        counts = simulator.sample_counts(shots, rng) if shots else None
        expectations = self._evaluate_observables(observables, simulator)
        statevector = simulator.statevector() if return_statevector else None
        return Result(
            backend=self.name,
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            shots=shots,
            counts=counts,
            expectations=expectations,
            statevector=statevector,
            report=report.as_dict(),
            metadata={
                "compression_ratio": simulator.state.compression_ratio(),
                "compressed_bytes": simulator.state.compressed_bytes(),
                "num_ranks": session.config.num_ranks,
            },
        )
