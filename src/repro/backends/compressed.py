"""The compressed-state engine behind the unified API.

Adapter over :class:`~repro.core.simulator.CompressedSimulator`.  The batch
session keeps **one warm simulator per register width**: the first circuit of
a width pays for partition setup, scratch-pool allocation and (with
``num_workers > 1``) thread-pool spin-up; subsequent circuits of that width
just :meth:`~repro.core.simulator.CompressedSimulator.reset` the state and
reuse everything — the throughput path for angle sweeps and benchmark
batteries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuits import QuantumCircuit
from ..core.config import SimulatorConfig
from ..core.simulator import CompressedSimulator
from ..distributed.comm import SimulatedCommunicator
from .base import Backend, register_backend
from .observables import PauliObservable
from .result import Result

__all__ = ["CompressedBackend"]


@dataclass
class _CompressedSession:
    """Per-batch state: the config and a warm-simulator lease pool per width.

    Simulators are *leased*: :meth:`acquire` hands out an exclusive warm
    simulator (reset if reused, built if the width is new) and
    :meth:`release` returns it to the idle pool.  Sequential batch execution
    only ever has one lease outstanding, so it degenerates to the historical
    one-warm-simulator-per-width behaviour; the :mod:`repro.serve` job
    executor holds one lease per in-flight job, so two interleaved jobs of
    the same width never share mutable state.

    ``comm`` lets benches with a modelled interconnect (fig16) inject their
    own :class:`~repro.distributed.comm.SimulatedCommunicator` through the
    registry instead of hand-building simulators; it is shared by every
    simulator of the session and reset between circuits like the rest of
    the per-circuit state.
    """

    config: SimulatorConfig
    comm: SimulatedCommunicator | None = None
    _idle: dict[int, list[CompressedSimulator]] = field(default_factory=dict)
    _leased: list[CompressedSimulator] = field(default_factory=list)

    def acquire(self, num_qubits: int) -> CompressedSimulator:
        """Lease an exclusive warm simulator for *num_qubits* qubits.

        A reused simulator is reset first, so the caller always starts from
        ``|0...0>`` with fresh bookkeeping — indistinguishable from a newly
        built one.  Pair every acquire with :meth:`release`.
        """

        stack = self._idle.get(num_qubits)
        if stack:
            simulator = stack.pop()
            simulator.reset()
        else:
            simulator = CompressedSimulator(num_qubits, self.config, comm=self.comm)
        self._leased.append(simulator)
        return simulator

    def release(self, simulator: CompressedSimulator) -> None:
        """Return a leased simulator to the idle pool (workers stay warm)."""

        if simulator in self._leased:
            self._leased.remove(simulator)
        self._idle.setdefault(simulator.num_qubits, []).append(simulator)

    def simulator_for(self, num_qubits: int) -> CompressedSimulator:
        """The warm simulator for *num_qubits*, for strictly sequential use.

        Equivalent to an acquire immediately followed by a release: safe
        when at most one circuit executes at a time (the batch loop of
        :meth:`Backend.run`), because the simulator is only handed out again
        after the current circuit's results have been read off.
        """

        simulator = self.acquire(num_qubits)
        self.release(simulator)
        return simulator

    def close(self) -> None:
        """Close every simulator — idle and leased — and empty the pools."""

        for stack in self._idle.values():
            for simulator in stack:
                simulator.close()
        for simulator in self._leased:
            simulator.close()
        self._idle.clear()
        self._leased.clear()


def _package_result(
    backend_name: str,
    simulator: CompressedSimulator,
    session: _CompressedSession,
    circuit: QuantumCircuit,
    *,
    shots: int,
    observables: Sequence[PauliObservable],
    rng: np.random.Generator,
    return_statevector: bool,
) -> Result:
    """Read samples/observables off an executed simulator into a `Result`.

    Shared by the sequential batch path (:meth:`CompressedBackend._execute`)
    and the gate-stepped :mod:`repro.serve` executor, so both produce
    field-identical results for the same executed state: same rng
    consumption order (counts first, then rng-free observables and
    statevector), same report and metadata shape.
    """

    report = simulator.report()
    counts = simulator.sample_counts(shots, rng) if shots else None
    expectations = Backend._evaluate_observables(observables, simulator)
    statevector = simulator.statevector() if return_statevector else None
    return Result(
        backend=backend_name,
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        shots=shots,
        counts=counts,
        expectations=expectations,
        statevector=statevector,
        report=report.as_dict(),
        metadata={
            "compression_ratio": simulator.state.compression_ratio(),
            "compressed_bytes": simulator.state.compressed_bytes(),
            "num_ranks": session.config.num_ranks,
        },
    )


@register_backend("compressed")
class CompressedBackend(Backend):
    """Full-state simulation with the state held compressed (the paper)."""

    name = "compressed"

    def _open_session(
        self,
        config: SimulatorConfig | None = None,
        comm: SimulatedCommunicator | None = None,
    ) -> _CompressedSession:
        return _CompressedSession(config=config or SimulatorConfig(), comm=comm)

    def _close_session(self, session: _CompressedSession) -> None:
        session.close()

    def _execute(
        self,
        circuit: QuantumCircuit,
        *,
        session: _CompressedSession,
        shots: int,
        observables: Sequence[PauliObservable],
        rng: np.random.Generator,
        return_statevector: bool,
    ) -> Result:
        simulator = session.simulator_for(circuit.num_qubits)
        simulator.apply_circuit(circuit)
        return _package_result(
            self.name,
            simulator,
            session,
            circuit,
            shots=shots,
            observables=observables,
            rng=rng,
            return_statevector=return_statevector,
        )
