"""Uniform run results: :class:`Result` and :class:`ResultSet`.

Every backend returns the same record regardless of how the state was
represented internally, which is what makes the backends swappable: counts
from sampling, expectation values keyed by observable label, the optional
dense statevector (small registers, on request), the simulator's report
(the compressed backend's Table-2 numbers; ``None`` for backends with
nothing to report) and free-form metadata.  Both types round-trip through
JSON so results can be archived next to benchmark output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Result", "ResultSet"]

#: Metadata keys excluded from the canonical form: measured wall-clock time
#: varies run to run, and the ``serve`` annotations carry per-request
#: identifiers (job id, tenant, cache-hit flag) stamped by the service layer.
VOLATILE_METADATA_KEYS = ("wall_seconds", "serve")


def _scrub_measured_time(value):
    """Deep copy of *value* with every measured-time field removed.

    Drops dict keys that name wall-clock measurements — keys ending in
    ``_seconds`` or ``_fraction``, plus ``seconds_per_gate`` — at any
    nesting depth, so two runs of the same deterministic computation produce
    identical scrubbed reports even though their timings differ.
    """

    if isinstance(value, dict):
        return {
            key: _scrub_measured_time(entry)
            for key, entry in value.items()
            if not (
                isinstance(key, str)
                and (
                    key.endswith("_seconds")
                    or key.endswith("_fraction")
                    or key == "seconds_per_gate"
                )
            )
        }
    if isinstance(value, (list, tuple)):
        return [_scrub_measured_time(entry) for entry in value]
    return value


@dataclass
class Result:
    """Outcome of running one circuit on one backend."""

    backend: str
    circuit_name: str
    num_qubits: int
    shots: int = 0
    #: Basis-state → occurrence map (``None`` when ``shots == 0``).
    counts: dict[int, int] | None = None
    #: Observable label → expectation value (``None`` when none requested).
    expectations: dict[str, float] | None = None
    #: Dense final state (only when ``return_statevector=True`` was passed).
    statevector: np.ndarray | None = None
    #: ``SimulationReport.as_dict()`` for the compressed backend, ``None``
    #: for backends that produce no report.
    report: dict | None = None
    metadata: dict = field(default_factory=dict)

    def expectation(self, label: str) -> float:
        """The expectation value recorded under *label*."""

        if not self.expectations or label not in self.expectations:
            raise KeyError(f"no expectation value recorded for {label!r}")
        return self.expectations[label]

    # -- serialisation -------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-compatible dict (basis states become string keys)."""

        return {
            "backend": self.backend,
            "circuit_name": self.circuit_name,
            "num_qubits": self.num_qubits,
            "shots": self.shots,
            "counts": (
                {str(state): count for state, count in self.counts.items()}
                if self.counts is not None
                else None
            ),
            "expectations": dict(self.expectations)
            if self.expectations is not None
            else None,
            "statevector": (
                {
                    "re": np.real(self.statevector).tolist(),
                    "im": np.imag(self.statevector).tolist(),
                }
                if self.statevector is not None
                else None
            ),
            "report": self.report,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Result":
        """Rebuild a :class:`Result` from :meth:`as_dict` output."""

        statevector = None
        if data.get("statevector") is not None:
            packed = data["statevector"]
            statevector = np.asarray(packed["re"], dtype=np.float64) + 1j * np.asarray(
                packed["im"], dtype=np.float64
            )
        counts = None
        if data.get("counts") is not None:
            counts = {int(state): int(count) for state, count in data["counts"].items()}
        return cls(
            backend=data["backend"],
            circuit_name=data["circuit_name"],
            num_qubits=int(data["num_qubits"]),
            shots=int(data.get("shots", 0)),
            counts=counts,
            expectations=(
                {k: float(v) for k, v in data["expectations"].items()}
                if data.get("expectations") is not None
                else None
            ),
            statevector=statevector,
            report=data.get("report"),
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, **dumps_kwargs) -> str:
        """Serialise to a JSON string (``from_json`` round-trips it)."""

        return json.dumps(self.as_dict(), **dumps_kwargs)

    def canonical_dict(self) -> dict:
        """:meth:`as_dict` minus every run-to-run volatile field.

        Two runs of the same (circuit, config, seed, shots, observables)
        produce *equal* canonical dicts even though their measured timings
        differ: wall-clock metadata (:data:`VOLATILE_METADATA_KEYS`) and
        every measured-time report field (``*_seconds``, ``*_fraction``,
        ``seconds_per_gate``) are dropped at any depth.  This is the
        equality surface of the :mod:`repro.serve` result cache's
        bit-identity contract.
        """

        data = self.as_dict()
        data["metadata"] = {
            key: value
            for key, value in data["metadata"].items()
            if key not in VOLATILE_METADATA_KEYS
        }
        data["report"] = (
            _scrub_measured_time(data["report"])
            if data["report"] is not None
            else None
        )
        return data

    def canonical_json(self) -> str:
        """Byte-stable JSON of :meth:`canonical_dict`.

        Keys are sorted and separators pinned, so the string is identical
        byte for byte across runs and Python versions for deterministic
        results — the form the serve-layer cache tests compare.
        """

        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, payload: str) -> "Result":
        """Rebuild a :class:`Result` from :meth:`to_json` output."""

        return cls.from_dict(json.loads(payload))


class ResultSet(Sequence):
    """Ordered collection of :class:`Result` from one batched run."""

    def __init__(self, results: Sequence[Result]) -> None:
        self._results = tuple(results)

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[Result]:
        return iter(self._results)

    def __getitem__(self, index):
        picked = self._results[index]
        if isinstance(index, slice):
            return ResultSet(picked)
        return picked

    @property
    def results(self) -> tuple[Result, ...]:
        """The collected :class:`Result` objects, in batch order."""

        return self._results

    def expectations(self, label: str) -> list[float]:
        """The expectation recorded under *label* for every result, in order."""

        return [result.expectation(label) for result in self._results]

    def as_dict(self) -> dict:
        """JSON-serialisable form: one ``as_dict`` entry per result."""

        return {"results": [result.as_dict() for result in self._results]}

    def to_json(self, **dumps_kwargs) -> str:
        """Serialise the whole batch to one JSON string."""

        return json.dumps(self.as_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "ResultSet":
        """Rebuild a :class:`ResultSet` from :meth:`to_json` output."""

        data = json.loads(payload)
        return cls([Result.from_dict(entry) for entry in data["results"]])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backends = sorted({result.backend for result in self._results})
        return f"ResultSet({len(self._results)} results, backends={backends})"
