"""``repro.run()`` — the one-call entry point over the backend registry.

::

    import repro

    result = repro.run(circuit, shots=1000, seed=7)               # compressed
    batch = repro.run(circuits, backend="dense", observables=obs) # reference

Everything else — batching, per-circuit seeding, observables, result
packaging — is documented on :meth:`repro.backends.Backend.run`, which this
function forwards to after resolving *backend* through the registry.
"""

from __future__ import annotations

from typing import Iterable

from ..circuits import QuantumCircuit
from .base import Backend, get_backend
from .observables import PauliObservable
from .result import Result, ResultSet

__all__ = ["run"]


def run(
    circuits: QuantumCircuit | Iterable[QuantumCircuit],
    backend: str | Backend = "compressed",
    *,
    shots: int = 0,
    observables: PauliObservable | Iterable[PauliObservable] | None = None,
    seed: int | None = None,
    return_statevector: bool = False,
    parallel: str | None = None,
    max_parallel: int | None = None,
    **options,
) -> Result | ResultSet:
    """Run circuit(s) on a named (or given) backend; see :meth:`Backend.run`.

    *backend* is a registry name (``"compressed"``, ``"dense"``, or anything
    registered via :func:`repro.backends.register_backend`) or an already
    constructed :class:`Backend` instance.  A single circuit returns a
    :class:`Result`; an iterable returns a :class:`ResultSet` in input order.

    ``parallel="process"`` fans a multi-circuit batch out across worker
    processes, one warm backend session (and therefore one warm simulator
    per register width) per worker; results are bit-identical to the
    sequential path — see :mod:`repro.backends.parallel`.
    """

    engine = get_backend(backend) if isinstance(backend, str) else backend
    if not isinstance(engine, Backend):
        raise TypeError(
            f"backend must be a registry name or Backend instance, got "
            f"{type(backend).__name__}"
        )
    return engine.run(
        circuits,
        shots=shots,
        observables=observables,
        seed=seed,
        return_statevector=return_statevector,
        parallel=parallel,
        max_parallel=max_parallel,
        **options,
    )
