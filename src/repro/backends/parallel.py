"""Process fan-out for batched ``repro.run()`` jobs.

A batch of circuits is embarrassingly parallel — each circuit owns its rng,
its report and its final state — so ``repro.run(..., parallel="process")``
distributes the batch over a :class:`~repro.core.procpool.ProcessPool` of
warm workers.  Every worker opens one backend session at initialisation and
keeps it for its whole life, which preserves the batching contract of the
sequential path: one warm simulator per register width, reset between
circuits (:meth:`CompressedSimulator.reset`), executors and scratch pools
surviving across circuits.

Determinism is inherited, not re-derived: the parent spawns the exact same
per-circuit ``SeedSequence`` ladder as the sequential runner
(:meth:`repro.backends.Backend.run`) and ships sequence *i* with circuit
*i*, so every circuit consumes an identical rng stream wherever it runs.
Counts, expectations, statevectors and report counters are bit-identical to
sequential execution; only measured wall-clock metadata differs.
"""

from __future__ import annotations

import time

import numpy as np

from ..circuits import QuantumCircuit
from .result import Result

__all__ = ["run_batch_in_processes"]


class _CircuitRunner:
    """Warm per-process state: one backend engine plus one open session."""

    #: Dominant message kind, consulted by the fault harness when arming
    #: chaos injection (circuit fan-out is replay-safe: every circuit ships
    #: its own seed sequence, so a respawned worker reproduces it exactly).
    POOL_KIND = "circuit"

    def __init__(self, backend_name: str, options: dict, master_seed) -> None:
        from .base import get_backend

        self._engine = get_backend(backend_name)
        self._session = self._engine._open_session(**options)
        self._seed = master_seed

    def handle(self, message: tuple) -> tuple:
        kind = message[0]
        if kind != "circuit":
            raise ValueError(f"unknown circuit-fanout message {kind!r}")
        (
            _,
            index,
            circuit,
            shots,
            observables,
            seed_sequence,
            return_statevector,
            _ticket,
            _frames,
        ) = message
        started = time.perf_counter()
        result = self._engine._execute(
            circuit,
            session=self._session,
            shots=shots,
            observables=observables,
            rng=np.random.default_rng(seed_sequence),
            return_statevector=return_statevector,
        )
        # Mirror the sequential runner's metadata stamps exactly.
        result.metadata.setdefault("wall_seconds", time.perf_counter() - started)
        result.metadata.setdefault("seed", self._seed)
        return ("ok", index, result)

    def close(self) -> None:
        self._engine._close_session(self._session)


def run_batch_in_processes(
    engine,
    batch: list[QuantumCircuit],
    *,
    shots: int,
    observables: tuple,
    seed,
    seed_sequences: list,
    return_statevector: bool,
    options: dict,
    max_parallel: int | None,
) -> list[Result]:
    """Execute *batch* across worker processes; results in input order.

    *engine* must be registered under its :attr:`Backend.name` so each
    worker can rebuild it from the registry — a process cannot inherit a
    live engine instance, only its name and session options.
    """

    from ..core.procpool import ProcessPool, effective_cpu_count, raise_worker_error
    from ..errors import WorkerCrashedError
    from ..resilience import resolve_fault_policy
    from .base import BackendError, _REGISTRY

    if not engine.name or engine.name not in _REGISTRY:
        raise BackendError(
            f"parallel='process' needs a registry-constructible backend; "
            f"{type(engine).__name__} is not registered under "
            f"{engine.name!r} (register it with @register_backend)"
        )
    if options.get("comm") is not None:
        # Each worker would mutate its own unpickled copy, silently leaving
        # the caller's communicator statistics at zero — refuse rather than
        # mis-account (the fig16-style comm= option is a sequential feature).
        raise BackendError(
            "parallel='process' cannot share a caller-supplied communicator "
            "across worker processes; drop comm= or run the batch sequentially"
        )

    policy = resolve_fault_policy(None)
    cap = effective_cpu_count() if max_parallel is None else max_parallel
    num_workers = max(1, min(len(batch), cap))
    results: list[Result | None] = [None] * len(batch)
    with ProcessPool(
        num_workers,
        _CircuitRunner,
        init_args=(engine.name, options, seed),
        fault_policy=policy,
    ) as pool:
        # Round-robin assignment keeps each worker's per-width simulators
        # warm; the outstanding cap (pool slots) bounds pipe backlog so a
        # worker busy computing never deadlocks the dispatch loop.
        queues: dict[int, list[tuple]] = {}
        for index, (circuit, sequence) in enumerate(zip(batch, seed_sequences)):
            message = (
                "circuit",
                index,
                circuit,
                shots,
                observables,
                sequence,
                return_statevector,
            )
            queues.setdefault(index % num_workers, []).append(message)
        # Messages submitted but not yet answered, per worker and circuit
        # index: a crashed worker's entries re-enqueue onto a respawned
        # worker when the fault policy allows retries.  Re-execution is safe
        # — each circuit carries its own seed sequence, so the retried run
        # is bit-identical.
        in_flight: dict[int, dict[int, tuple]] = {}
        outstanding = 0
        attempt = 0
        while queues or outstanding:
            try:
                for worker_id in list(queues):
                    pending = queues[worker_id]
                    while pending and pool.can_submit(worker_id):
                        message = pending[0]
                        pool.submit(worker_id, message)
                        pending.pop(0)
                        in_flight.setdefault(worker_id, {})[message[1]] = message
                        outstanding += 1
                    if not pending:
                        del queues[worker_id]
                if outstanding:
                    worker_id, reply = pool.recv_any()
                    if reply[0] == "err":
                        raise_worker_error(
                            reply,
                            f"batched circuit failed in pool worker {worker_id}",
                        )
                    outstanding -= 1
                    _, index, result = reply
                    in_flight.get(worker_id, {}).pop(index, None)
                    results[index] = result
            except WorkerCrashedError:
                if attempt >= policy.max_retries:
                    raise
                attempt += 1
                restarted = pool.heal()
                if not restarted:
                    raise  # nothing actually died — a stuck pool cannot heal
                for dead_id in restarted:
                    lost = in_flight.pop(dead_id, {})
                    if lost:
                        queues.setdefault(dead_id, []).extend(lost.values())
                        outstanding -= len(lost)
                backoff = policy.backoff_seconds(attempt - 1)
                if backoff > 0:
                    time.sleep(backoff)
    return results  # type: ignore[return-value]
