"""Backend ABC and registry: the pluggable entry point of the simulators.

The paper's pitch is a *drop-in* simulator — the compression is invisible to
the workload.  :class:`Backend` makes that literal: a workload asks the
registry for an engine by name (``get_backend("compressed")``) and calls the
one method every engine shares::

    result = get_backend("compressed").run(circuit, shots=1000, seed=7)

``run()`` owns everything engine-independent — input validation, batching, a
per-circuit seed ladder, observable bookkeeping and the
:class:`~repro.backends.result.Result` envelope — and delegates the three
engine-specific steps to subclass hooks (open a session, execute one
circuit, close the session).  Sessions are what make batches fast: the
compressed backend keeps one warm simulator per register width and resets it
between circuits instead of rebuilding executors and scratch pools.

New engines register themselves with the :func:`register_backend` decorator::

    @register_backend("my-engine")
    class MyBackend(Backend):
        ...
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Callable, ClassVar, Iterable, Sequence

import numpy as np

from ..circuits import QuantumCircuit
from .observables import PauliObservable
from .result import Result, ResultSet

__all__ = [
    "Backend",
    "BackendError",
    "register_backend",
    "get_backend",
    "available_backends",
]


class BackendError(ValueError):
    """Raised for unknown backend names or conflicting registrations."""


_REGISTRY: dict[str, Callable[[], "Backend"]] = {}


def register_backend(name: str):
    """Class decorator registering a :class:`Backend` under *name*.

    Registering an already-taken name raises :class:`BackendError` — rebinding
    an engine name silently would repoint every workload that uses it.
    """

    if not name or not isinstance(name, str):
        raise BackendError("backend name must be a non-empty string")

    def decorator(factory: Callable[[], "Backend"]):
        if name in _REGISTRY:
            raise BackendError(f"backend {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def get_backend(name: str) -> "Backend":
    """Instantiate the backend registered under *name*.

    Raises :class:`BackendError` listing the available names when *name* is
    unknown.
    """

    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory()


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""

    return sorted(_REGISTRY)


class Backend(ABC):
    """One simulation engine behind the unified ``run()`` surface.

    Subclasses set :attr:`name` and implement the three hooks
    :meth:`_open_session`, :meth:`_execute` and (optionally)
    :meth:`_close_session`; everything else — batching, seeding, validation,
    result packaging — lives here and is identical across engines.
    """

    #: Registry name; also stamped into every :class:`Result`.
    name: ClassVar[str] = ""

    def run(
        self,
        circuits: QuantumCircuit | Iterable[QuantumCircuit],
        *,
        shots: int = 0,
        observables: PauliObservable | Iterable[PauliObservable] | None = None,
        seed: int | None = None,
        return_statevector: bool = False,
        parallel: str | None = None,
        max_parallel: int | None = None,
        **options,
    ) -> Result | ResultSet:
        """Execute one circuit (→ :class:`Result`) or a batch (→ :class:`ResultSet`).

        Parameters
        ----------
        circuits:
            A :class:`QuantumCircuit` or an iterable of them.  A batch is
            executed in order inside one backend session, so same-width
            circuits share the expensive machinery.
        shots:
            Samples to draw from each final state (0 = no sampling).
        observables:
            :class:`PauliObservable` (or several) evaluated on each final
            state; values land in ``Result.expectations`` keyed by label.
        seed:
            Master seed.  Each circuit gets its own generator derived from
            the seed and its batch position via ``SeedSequence.spawn``:
            rerunning the same batch with the same seed reproduces every
            result exactly, and rng-free work for one circuit (observables,
            statevector) never shifts another circuit's samples.  Batch
            position *is* part of the derivation, so reordering or resizing
            the batch changes the per-circuit sample streams.
        return_statevector:
            Materialise the dense final state into each result (small
            registers only).
        parallel:
            ``None`` (default) executes the batch sequentially in one warm
            session.  ``"process"`` fans a multi-circuit batch out across a
            pool of worker processes (:mod:`repro.backends.parallel`), each
            holding its own warm session; the per-circuit seed ladder is
            identical, so every result is bit-identical to sequential
            execution (only measured wall-clock metadata differs).  Requires
            the backend to be registered under its :attr:`name`.
        max_parallel:
            Worker-process cap for ``parallel="process"`` (default: the
            batch size clamped to the effective CPU count).
        options:
            Engine-specific session options (the compressed backend accepts
            ``config=SimulatorConfig(...)`` and ``comm=...``).
        """

        single = isinstance(circuits, QuantumCircuit)
        batch: list[QuantumCircuit] = [circuits] if single else list(circuits)
        if not batch:
            raise ValueError("run() needs at least one circuit")
        for circuit in batch:
            if not isinstance(circuit, QuantumCircuit):
                raise TypeError(
                    f"expected QuantumCircuit, got {type(circuit).__name__}"
                )
        if shots < 0:
            raise ValueError("shots must be non-negative")
        observable_list = self._normalise_observables(observables)
        for circuit in batch:
            for observable in observable_list:
                if observable.num_qubits != circuit.num_qubits:
                    raise ValueError(
                        f"observable {observable.label!r} acts on "
                        f"{observable.num_qubits} qubits but circuit "
                        f"{circuit.name!r} has {circuit.num_qubits}"
                    )

        if parallel not in (None, "none", "process"):
            raise ValueError(
                f"parallel must be None, 'none' or 'process', got {parallel!r}"
            )
        if max_parallel is not None and max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")

        seed_sequences = np.random.SeedSequence(seed).spawn(len(batch))

        if parallel == "process" and len(batch) > 1:
            from .parallel import run_batch_in_processes

            results = run_batch_in_processes(
                self,
                batch,
                shots=shots,
                observables=observable_list,
                seed=seed,
                seed_sequences=seed_sequences,
                return_statevector=return_statevector,
                options=options,
                max_parallel=max_parallel,
            )
            return results[0] if single else ResultSet(results)

        results: list[Result] = []
        session = self._open_session(**options)
        try:
            for circuit, sequence in zip(batch, seed_sequences):
                started = time.perf_counter()
                result = self._execute(
                    circuit,
                    session=session,
                    shots=shots,
                    observables=observable_list,
                    rng=np.random.default_rng(sequence),
                    return_statevector=return_statevector,
                )
                result.metadata.setdefault(
                    "wall_seconds", time.perf_counter() - started
                )
                result.metadata.setdefault("seed", seed)
                results.append(result)
        finally:
            self._close_session(session)
        return results[0] if single else ResultSet(results)

    @staticmethod
    def _normalise_observables(
        observables: PauliObservable | Iterable[PauliObservable] | None,
    ) -> tuple[PauliObservable, ...]:
        if observables is None:
            return ()
        if isinstance(observables, PauliObservable):
            observables = (observables,)
        observable_list = tuple(observables)
        for observable in observable_list:
            if not isinstance(observable, PauliObservable):
                raise TypeError(
                    f"expected PauliObservable, got {type(observable).__name__}"
                )
        labels = [observable.label for observable in observable_list]
        if len(set(labels)) != len(labels):
            raise ValueError(
                "observables must have unique labels (use with_label()); got "
                f"{labels}"
            )
        return observable_list

    @staticmethod
    def _evaluate_observables(
        observables: Sequence[PauliObservable], state
    ) -> dict[str, float] | None:
        if not observables:
            return None
        return {
            observable.label: observable.expectation(state)
            for observable in observables
        }

    # -- engine hooks ------------------------------------------------------------------

    @abstractmethod
    def _open_session(self, **options) -> Any:
        """Build whatever per-batch machinery the engine reuses across circuits."""

    def _close_session(self, session: Any) -> None:
        """Release session resources (default: nothing to release)."""

    @abstractmethod
    def _execute(
        self,
        circuit: QuantumCircuit,
        *,
        session: Any,
        shots: int,
        observables: Sequence[PauliObservable],
        rng: np.random.Generator,
        return_statevector: bool,
    ) -> Result:
        """Run one circuit to completion and package a :class:`Result`."""
