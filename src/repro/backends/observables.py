"""Pauli-string observables evaluated without densifying the state.

A :class:`PauliObservable` is a real-weighted sum of Pauli strings such as
``0.5*ZZI + 0.25*IXX``.  The string convention is positional: **character
``i`` acts on qubit ``i``** (the leftmost character is qubit 0), matching
the bit convention used everywhere else in this codebase (qubit ``i`` is bit
``i`` of the basis-state integer).

``expectation()`` accepts a dense vector, a :class:`DenseSimulator` or a
:class:`CompressedSimulator` and never materialises the compressed state:

* **Diagonal terms** (``I``/``Z`` only) are evaluated blockwise from the
  per-block probabilities — ``Σ |a_j|² · (-1)^{popcount(j & zmask)}`` — one
  decompressed block at a time.
* **Off-diagonal terms** (containing ``X``/``Y``) are rotated into the Z
  basis first: the state is forked (compressed blobs are immutable, so a
  fork is just a new block table), the basis-change gates (``H`` for X,
  ``S† H`` for Y) run through the normal compressed gate path, and the term
  becomes diagonal on the fork.  Terms sharing the same rotation signature
  share one fork.

This is what lets 30+-qubit QAOA energies come straight off the compressed
representation instead of via ``statevector()``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..circuits.gates import standard_gate
from ..core.simulator import CompressedSimulator
from ..statevector import ops
from ..statevector.dense import DenseSimulator

__all__ = ["PauliObservable"]

_VALID = frozenset("IXYZ")


def _parity(values: np.ndarray) -> np.ndarray:
    """Bit parity (popcount mod 2) of each int64 element, vectorised."""

    v = values.astype(np.int64, copy=True)
    for shift in (32, 16, 8, 4, 2, 1):
        v ^= v >> shift
    return v & 1


def _signs(indices: np.ndarray, zmask: int) -> np.ndarray:
    """``(-1)^{popcount(index & zmask)}`` as float64 ±1 values."""

    return 1.0 - 2.0 * _parity(indices & zmask)


class PauliObservable:
    """A real-weighted sum of Pauli strings over a fixed register width.

    Parameters
    ----------
    paulis:
        A single Pauli string (``"ZZI"``) for a one-term observable.  Use
        :meth:`from_terms` or the ``+`` / ``*`` operators for weighted sums.
    coefficient:
        Weight of the single term (default 1.0).
    label:
        Name used to key this observable's value in :class:`Result`
        ``expectations``; derived from the terms when omitted.
    """

    def __init__(
        self, paulis: str, coefficient: float = 1.0, *, label: str | None = None
    ) -> None:
        self._terms = self._validate_terms([(float(coefficient), paulis)])
        self._label = label

    # -- construction ---------------------------------------------------------------

    @staticmethod
    def _validate_terms(
        terms: Iterable[tuple[float, str]]
    ) -> tuple[tuple[float, str], ...]:
        cleaned: dict[str, float] = {}
        width: int | None = None
        for coefficient, paulis in terms:
            if not isinstance(paulis, str) or not paulis:
                raise ValueError("a Pauli string must be a non-empty str")
            paulis = paulis.upper()
            invalid = set(paulis) - _VALID
            if invalid:
                raise ValueError(
                    f"invalid Pauli character(s) {sorted(invalid)} in {paulis!r}"
                )
            if width is None:
                width = len(paulis)
            elif len(paulis) != width:
                raise ValueError(
                    f"all terms must have the same width, got {len(paulis)} "
                    f"and {width}"
                )
            coefficient = float(coefficient)
            if not np.isfinite(coefficient):
                raise ValueError("coefficients must be finite")
            cleaned[paulis] = cleaned.get(paulis, 0.0) + coefficient
        if not cleaned:
            raise ValueError("an observable needs at least one term")
        return tuple((coeff, paulis) for paulis, coeff in cleaned.items())

    @classmethod
    def from_terms(
        cls,
        terms: Iterable[tuple[float, str]] | Mapping[str, float],
        *,
        label: str | None = None,
    ) -> "PauliObservable":
        """Build a weighted sum: ``from_terms([(0.5, "ZZ"), (0.25, "XX")])``.

        Duplicate strings have their coefficients summed.
        """

        if isinstance(terms, Mapping):
            terms = [(coeff, paulis) for paulis, coeff in terms.items()]
        observable = cls.__new__(cls)
        observable._terms = cls._validate_terms(terms)
        observable._label = label
        return observable

    @classmethod
    def single(
        cls, pauli: str, qubit: int, num_qubits: int, coefficient: float = 1.0
    ) -> "PauliObservable":
        """One Pauli on one qubit, identities elsewhere: ``single("Z", 2, 5)``."""

        if pauli.upper() not in ("X", "Y", "Z"):
            raise ValueError("pauli must be one of X, Y, Z")
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
        chars = ["I"] * num_qubits
        chars[qubit] = pauli.upper()
        return cls("".join(chars), coefficient)

    @classmethod
    def zz(
        cls, qubit_a: int, qubit_b: int, num_qubits: int, coefficient: float = 1.0
    ) -> "PauliObservable":
        """``Z_a Z_b`` on a *num_qubits*-wide register (the MAXCUT edge term)."""

        if qubit_a == qubit_b:
            raise ValueError("zz() needs two distinct qubits")
        for qubit in (qubit_a, qubit_b):
            if not 0 <= qubit < num_qubits:
                raise ValueError(
                    f"qubit {qubit} out of range for {num_qubits} qubits"
                )
        chars = ["I"] * num_qubits
        chars[qubit_a] = "Z"
        chars[qubit_b] = "Z"
        return cls("".join(chars), coefficient)

    # -- basic accessors ------------------------------------------------------------

    @property
    def terms(self) -> tuple[tuple[float, str], ...]:
        """``(coefficient, pauli_string)`` pairs, duplicates merged."""

        return self._terms

    @property
    def num_qubits(self) -> int:
        """Register width every term acts on (length of the Pauli strings)."""

        return len(self._terms[0][1])

    @property
    def label(self) -> str:
        """Key under which ``Result.expectations`` records this observable."""

        if self._label is not None:
            return self._label
        return " + ".join(
            f"{coeff:g}*{paulis}" for coeff, paulis in self._terms
        )

    def with_label(self, label: str) -> "PauliObservable":
        """A copy of this observable under a different result key."""

        return PauliObservable.from_terms(self._terms, label=label)

    @property
    def is_diagonal(self) -> bool:
        """Whether every term is built from I/Z only (no basis change needed)."""

        return all(
            not (set(paulis) & {"X", "Y"}) for _coeff, paulis in self._terms
        )

    def coefficient_norm(self) -> float:
        """``Σ |coefficient|`` — bounds ``|expectation|`` for unit-norm states."""

        return float(sum(abs(coeff) for coeff, _paulis in self._terms))

    # -- algebra ---------------------------------------------------------------------

    def __add__(self, other: "PauliObservable") -> "PauliObservable":
        if not isinstance(other, PauliObservable):
            return NotImplemented
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot add observables of different widths")
        return PauliObservable.from_terms(self._terms + other._terms)

    def __sub__(self, other: "PauliObservable") -> "PauliObservable":
        if not isinstance(other, PauliObservable):
            return NotImplemented
        return self + (-1.0) * other

    def __mul__(self, scalar: float) -> "PauliObservable":
        if not isinstance(scalar, (int, float, np.integer, np.floating)):
            return NotImplemented
        return PauliObservable.from_terms(
            [(float(scalar) * coeff, paulis) for coeff, paulis in self._terms],
            label=self._label,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "PauliObservable":
        return (-1.0) * self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PauliObservable({self.label!r}, qubits={self.num_qubits})"

    # -- evaluation helpers ----------------------------------------------------------

    def _rotation_groups(
        self,
    ) -> dict[tuple[tuple[int, str], ...], list[tuple[float, int]]]:
        """Group terms by basis-change signature.

        Returns ``{((qubit, 'X'|'Y'), ...): [(coefficient, zmask), ...]}``
        where *zmask* selects every non-identity position of the rotated
        (now diagonal) term.  The empty signature holds the diagonal terms.
        """

        groups: dict[tuple[tuple[int, str], ...], list[tuple[float, int]]] = {}
        for coeff, paulis in self._terms:
            rotations = tuple(
                (qubit, char)
                for qubit, char in enumerate(paulis)
                if char in ("X", "Y")
            )
            zmask = 0
            for qubit, char in enumerate(paulis):
                if char != "I":
                    zmask |= 1 << qubit
            groups.setdefault(rotations, []).append((coeff, zmask))
        return groups

    @staticmethod
    def _basis_change_gates(rotations: Sequence[tuple[int, str]]):
        """Gates mapping each X/Y factor onto Z: H for X, then S†·H for Y."""

        gates = []
        for qubit, char in rotations:
            if char == "Y":
                gates.append(standard_gate("sdg", qubit))
            gates.append(standard_gate("h", qubit))
        return gates

    # -- evaluation -------------------------------------------------------------------

    def expectation(
        self, state: np.ndarray | DenseSimulator | CompressedSimulator
    ) -> float:
        """``<ψ|O|ψ> / <ψ|ψ>`` on a dense vector or either simulator.

        The compressed path never calls ``statevector()``: diagonal terms
        come from per-block probabilities, X/Y terms from basis-change gates
        applied to a forked compressed state.  Normalising by the state's
        own mass keeps lossy-compression norm drift out of the value.
        """

        if isinstance(state, CompressedSimulator):
            return self._expectation_compressed(state)
        if isinstance(state, DenseSimulator):
            return self._expectation_dense(state.state)
        return self._expectation_dense(np.asarray(state, dtype=np.complex128))

    def _expectation_dense(self, vector: np.ndarray) -> float:
        expected = 1 << self.num_qubits
        if vector.shape != (expected,):
            raise ValueError(
                f"observable acts on {self.num_qubits} qubits but the state "
                f"has shape {vector.shape}, expected ({expected},)"
            )
        norm = float(np.sum(np.abs(vector) ** 2))
        if norm <= 0.0:
            raise ValueError("cannot take an expectation of a zero state")
        indices = np.arange(expected, dtype=np.int64)
        total = 0.0
        for rotations, terms in self._rotation_groups().items():
            if rotations:
                rotated = vector.copy()
                for gate in self._basis_change_gates(rotations):
                    ops.apply_single_qubit(rotated, gate.matrix, gate.target)
            else:
                rotated = vector
            probs = np.abs(rotated) ** 2
            for coeff, zmask in terms:
                total += coeff * float(probs @ _signs(indices, zmask))
        return total / norm

    def _expectation_compressed(self, simulator: CompressedSimulator) -> float:
        if simulator.num_qubits != self.num_qubits:
            raise ValueError(
                f"observable acts on {self.num_qubits} qubits but the "
                f"simulator has {simulator.num_qubits}"
            )
        total = 0.0
        for rotations, terms in self._rotation_groups().items():
            if rotations:
                fork = simulator.fork()
                try:
                    for gate in self._basis_change_gates(rotations):
                        fork.apply_gate(gate)
                    total += self._diagonal_blockwise(fork, terms)
                finally:
                    fork.close()
            else:
                total += self._diagonal_blockwise(simulator, terms)
        return total

    @staticmethod
    def _diagonal_blockwise(
        simulator: CompressedSimulator, terms: Sequence[tuple[float, int]]
    ) -> float:
        """Σ coeff · Σ_j |a_j|²·(-1)^{popcount(j & zmask)}, one block at a time."""

        mass = 0.0
        accumulators = [0.0] * len(terms)
        for base, probs in simulator.iter_block_probabilities():
            mass += float(probs.sum())
            indices = base + np.arange(probs.size, dtype=np.int64)
            for index, (_coeff, zmask) in enumerate(terms):
                accumulators[index] += float(probs @ _signs(indices, zmask))
        if mass <= 0.0:
            raise ValueError("cannot take an expectation of a zero state")
        return sum(
            coeff * acc / mass for (coeff, _zmask), acc in zip(terms, accumulators)
        )
