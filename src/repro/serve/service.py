"""The long-lived simulation service: warm sessions behind a fair queue.

:class:`SimulationService` is the asyncio front door over the blocking
engine layers.  It owns warm :mod:`repro.backends` sessions (one per
distinct :class:`~repro.core.config.SimulatorConfig`, so every job with the
same config reuses the same leased simulators and any process pools they
spun up), pulls jobs off a :class:`~repro.serve.queue.FairScheduler` with a
small pool of worker coroutines, and executes each circuit *gate-stepped*:
chunks of fused gates are applied between ``await`` points, so progress
events, cancellation and checkpoint-based suspension all happen at
deterministic gate boundaries rather than wall-clock ones.

Determinism contract (pinned by ``tests/test_serve.py``): a job executed by
the service is **bit-identical** to ``repro.run(circuit, shots=...,
seed=...)`` with the same ingredients.  The service replays the exact
single-circuit seed ladder (``SeedSequence(seed).spawn(1)[0]``), reuses the
same fusion pass (:meth:`~repro.core.simulator.CompressedSimulator.prepare_gates`)
and the same result packaging (:func:`~repro.backends.compressed._package_result`),
so the only differences are measured wall-clock metadata and the service's
own ``metadata["serve"]`` annotation — exactly the fields
:meth:`~repro.backends.result.Result.canonical_json` strips.  That contract
is what makes the content-addressed cache sound: a hit *is* the cold run.

Results of resumed jobs (and of jobs that recovered from an injected
worker crash) are canonically equal but not field-identical to a cold run
(their report counters reflect the partial replay), so they are served to
their caller and deliberately **not** written to the cache.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from ..backends import get_backend
from ..backends.base import Backend
from ..backends.compressed import _package_result
from ..backends.observables import PauliObservable
from ..backends.result import Result
from ..circuits import QuantumCircuit
from ..core.config import SimulatorConfig
from ..errors import JobCancelledError, ServiceClosedError
from ..resilience import resume_from_checkpoint, suspend_to_checkpoint
from .events import EventStream, JobEvent
from .queue import FairScheduler

__all__ = ["Job", "ServiceConfig", "SimulationService"]

#: Job states a job can never leave.
TERMINAL_STATES = ("completed", "failed", "cancelled")


class _SuspendMarker(Exception):
    """Internal control-flow marker: the job checkpointed and parked."""

    def __init__(self, payload: dict) -> None:
        super().__init__("job suspended")
        self.payload = payload


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`SimulationService`.

    Attributes
    ----------
    backend:
        Backend registry name.  Only ``"compressed"`` supports the
        gate-stepped executor (progress, cancel, suspend) today.
    simulator_config:
        Default :class:`~repro.core.config.SimulatorConfig` for jobs that do
        not carry their own; ``None`` uses the engine default.
    workers:
        Worker coroutines pulling from the fair queue.  ``0`` is allowed —
        jobs are admitted but never dispatched — which is how the tests
        exercise backpressure without races.
    max_pending_per_tenant / max_pending_total:
        Bounded-queue admission limits; past either, ``submit`` raises
        :class:`~repro.errors.ServiceOverloadedError`.
    cache_enabled / cache_entries:
        Content-addressed result cache toggle and LRU capacity.
    default_tenant_weight:
        Fair-share weight given to tenants first seen at ``submit`` time.
    progress_interval:
        Fused gates applied between await points — the granularity of
        progress events, cancellation and suspension.
    checkpoint_dir:
        Directory for suspend checkpoints; ``None`` uses a service-owned
        temporary directory removed at :meth:`SimulationService.close`.
    clock:
        Timestamp source for events and wall-clock metadata; monotonic
        domain.  The test harness injects a fake clock here, which makes
        every event history byte-reproducible.
    """

    backend: str = "compressed"
    simulator_config: SimulatorConfig | None = None
    workers: int = 1
    max_pending_per_tenant: int = 64
    max_pending_total: int = 256
    cache_enabled: bool = True
    cache_entries: int = 256
    default_tenant_weight: int = 1
    progress_interval: int = 8
    checkpoint_dir: str | None = None
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        """Validate knob ranges (fail at construction, not mid-serve)."""

        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.progress_interval < 1:
            raise ValueError("progress_interval must be >= 1")
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be >= 1")
        if self.default_tenant_weight < 1:
            raise ValueError("default_tenant_weight must be >= 1")


class Job:
    """One submitted simulation request and its lifecycle state.

    Await the job (``result = await job``) for its
    :class:`~repro.backends.result.Result`; awaiting raises the job's typed
    error if it failed or was cancelled.  ``job.events`` is the live
    :class:`~repro.serve.events.EventStream`.
    """

    def __init__(
        self,
        *,
        job_id: str,
        tenant: str,
        circuit: QuantumCircuit,
        shots: int,
        seed: int | None,
        observables: tuple[PauliObservable, ...],
        return_statevector: bool,
        priority: int,
        simulator_config: SimulatorConfig | None,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.circuit = circuit
        self.shots = shots
        self.seed = seed
        self.observables = observables
        self.return_statevector = return_statevector
        self.priority = priority
        self.simulator_config = simulator_config
        #: ``pending`` → ``running`` → terminal, with a ``suspended`` →
        #: ``pending`` loop when the job is checkpoint-parked and resumed.
        self.state = "pending"
        self.events = EventStream()
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        # A caller may fire-and-forget a job and read only its events;
        # retrieving the exception in the callback keeps asyncio's
        # "exception was never retrieved" warning out of such runs.
        self.future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        self.cache_hit = False
        self.was_resumed = False
        self.gates_done = 0
        self.gates_total: int | None = None
        self._cancel_requested = False
        self._suspend_requested = False
        self._cache_key: str | None = None
        self._checkpoint_path: Path | None = None
        self._gates: list | None = None
        self._next_gate = 0

    def done(self) -> bool:
        """Whether the job reached a terminal state."""

        return self.future.done()

    def result(self) -> Result:
        """The finished job's result (raises if pending, failed, cancelled)."""

        return self.future.result()

    def __await__(self):
        """``await job`` delegates to the job's future."""

        return self.future.__await__()

    def __repr__(self) -> str:
        return f"Job({self.id!r}, tenant={self.tenant!r}, state={self.state!r})"


class SimulationService:
    """Long-lived asyncio service over warm simulator sessions.

    Lifecycle: construct → ``await start()`` → ``submit`` jobs (from within
    the event loop) → optionally ``await drain()`` → ``await close()``.
    ``close`` is the only teardown: it stops the workers, cancels whatever
    is still queued or suspended, closes every backend session (returning
    their process pools) and removes the service's checkpoint directory.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config or ServiceConfig()
        self._backend: Backend = get_backend(self._config.backend)
        if self._config.backend != "compressed":
            raise ValueError(
                "SimulationService requires the 'compressed' backend "
                "(gate-stepped execution); got "
                f"{self._config.backend!r}"
            )
        self._clock = self._config.clock
        self._scheduler = FairScheduler(
            max_pending_per_tenant=self._config.max_pending_per_tenant,
            max_pending_total=self._config.max_pending_total,
        )
        from .cache import ResultCache

        self._cache = (
            ResultCache(self._config.cache_entries)
            if self._config.cache_enabled
            else None
        )
        self._jobs: dict[str, Job] = {}
        #: ``(config-or-None, session)`` pairs — SimulatorConfig is not
        #: hashable, so session lookup is an equality scan (the config
        #: population is tiny: one per distinct tenant tier).
        self._sessions: list[tuple[SimulatorConfig | None, object]] = []
        self._worker_tasks: list[asyncio.Task] = []
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._state = "new"
        self._seq = 0
        self._running = 0
        self._dispatch_order: list[str] = []
        self._checkpoint_root: Path | None = None
        self._owns_checkpoint_root = False

    # -- lifecycle -------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``new`` / ``running`` / ``draining`` / ``closing`` / ``closed``."""

        return self._state

    async def start(self) -> None:
        """Spin up the worker coroutines and open for submissions."""

        if self._state != "new":
            raise ServiceClosedError(
                "service can only be started once", state=self._state
            )
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._state = "running"
        for index in range(self._config.workers):
            task = asyncio.get_running_loop().create_task(
                self._worker(), name=f"repro-serve-worker-{index}"
            )
            self._worker_tasks.append(task)

    async def drain(self) -> None:
        """Stop intake and wait until queued + running work is finished.

        Suspended jobs are parked, not pending, so drain does not wait for
        them — resume or close them explicitly.  With ``workers=0`` drain
        only returns once the queue is empty (i.e. immediately or never),
        so cancel pending jobs first in that configuration.
        """

        if self._state == "running":
            self._state = "draining"
        while True:
            self._idle.clear()
            if self._scheduler.pending() == 0 and self._running == 0:
                return
            await self._idle.wait()

    async def close(self) -> None:
        """Stop workers, cancel leftover jobs, release every resource.

        Safe to call twice.  After close, every session (and any process
        pool a session's simulators owned) is closed, the checkpoint
        directory is gone if service-owned, and no service task is alive.
        """

        if self._state == "closed":
            return
        self._state = "closing"
        if self._wake is not None:
            self._wake.set()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks)
            self._worker_tasks.clear()
        for job in self._jobs.values():
            if job.state in TERMINAL_STATES:
                continue
            self._discard_checkpoint(job)
            self._finish(
                job,
                "cancelled",
                error=JobCancelledError(
                    "service closed",
                    job_id=job.id,
                    tenant=job.tenant,
                    gates_done=job.gates_done,
                ),
            )
        for _config, session in self._sessions:
            self._backend._close_session(session)
        self._sessions.clear()
        if self._owns_checkpoint_root and self._checkpoint_root is not None:
            shutil.rmtree(self._checkpoint_root, ignore_errors=True)
        self._checkpoint_root = None
        self._state = "closed"

    # -- submission ------------------------------------------------------------------

    def register_tenant(self, tenant: str, weight: int = 1) -> None:
        """Register *tenant* with a fair-share *weight* ahead of submission."""

        self._scheduler.register(tenant, weight)

    def submit(
        self,
        circuit: QuantumCircuit,
        *,
        tenant: str,
        shots: int = 0,
        observables: PauliObservable | Iterable[PauliObservable] | None = None,
        seed: int | None = None,
        return_statevector: bool = False,
        priority: int = 0,
        simulator_config: SimulatorConfig | None = None,
        weight: int | None = None,
    ) -> Job:
        """Admit one request to *tenant*'s queue and return its :class:`Job`.

        Validation mirrors :meth:`repro.backends.base.Backend.run` (circuit
        type, shot count, observable labels and widths), so a request the
        service accepts is a request the engine would accept.  An unknown
        tenant is auto-registered with *weight* (default
        ``ServiceConfig.default_tenant_weight``).  Raises
        :class:`~repro.errors.ServiceClosedError` unless the service is
        running, and :class:`~repro.errors.ServiceOverloadedError` when
        either queue bound is hit — a rejected submission leaves no trace.
        """

        if self._state != "running":
            raise ServiceClosedError(
                "service is not accepting jobs",
                tenant=tenant,
                state=self._state,
            )
        if not isinstance(circuit, QuantumCircuit):
            raise TypeError(
                f"expected QuantumCircuit, got {type(circuit).__name__}"
            )
        if shots < 0:
            raise ValueError("shots must be non-negative")
        observable_list = Backend._normalise_observables(observables)
        for observable in observable_list:
            if observable.num_qubits != circuit.num_qubits:
                raise ValueError(
                    f"observable {observable.label!r} acts on "
                    f"{observable.num_qubits} qubits but circuit "
                    f"{circuit.name!r} has {circuit.num_qubits}"
                )
        if tenant not in self._scheduler.tenants():
            self._scheduler.register(
                tenant,
                self._config.default_tenant_weight if weight is None else weight,
            )
        elif weight is not None and weight != self._scheduler.weight_of(tenant):
            raise ValueError(
                f"tenant {tenant!r} is registered with weight "
                f"{self._scheduler.weight_of(tenant)}, cannot submit with "
                f"weight {weight}"
            )
        job = Job(
            job_id=f"job-{self._seq:06d}",
            tenant=tenant,
            circuit=circuit,
            shots=int(shots),
            seed=seed,
            observables=observable_list,
            return_statevector=bool(return_statevector),
            priority=int(priority),
            simulator_config=simulator_config,
        )
        self._scheduler.submit(tenant, job, priority=job.priority)
        self._seq += 1
        self._jobs[job.id] = job
        self._emit(job, "queued", {"priority": job.priority})
        self._wake.set()
        return job

    # -- control ---------------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        """Look up a job by id (raises ``KeyError`` for unknown ids)."""

        return self._jobs[job_id]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns False when it already reached a terminal state.

        A pending or suspended job is cancelled immediately (its future
        raises :class:`~repro.errors.JobCancelledError`); a running job is
        flagged and stops at the next gate-chunk boundary.
        """

        job = self._jobs[job_id]
        if job.state in TERMINAL_STATES:
            return False
        job._cancel_requested = True
        if job.state == "running":
            return True
        self._discard_checkpoint(job)
        self._finish(
            job,
            "cancelled",
            error=JobCancelledError(
                "job cancelled",
                job_id=job.id,
                tenant=job.tenant,
                gates_done=job.gates_done,
            ),
        )
        return True

    def suspend(self, job_id: str) -> bool:
        """Request checkpoint-suspension of a *running* job.

        Returns True when the request was accepted; the job checkpoints and
        parks at its next gate-chunk boundary (emitting ``suspended``), or
        completes normally if it was already past its last chunk.  Jobs in
        any other state return False.
        """

        job = self._jobs[job_id]
        if job.state != "running":
            return False
        job._suspend_requested = True
        return True

    def resume(self, job_id: str) -> Job:
        """Re-enqueue a suspended job; it continues from its checkpoint.

        The resumed job goes through the same fair queue as new work (its
        original priority applies) and counts against the same bounds, so
        a resume can raise :class:`~repro.errors.ServiceOverloadedError`;
        the job then stays suspended.
        """

        job = self._jobs[job_id]
        if job.state != "suspended":
            raise ValueError(
                f"job {job_id!r} is {job.state!r}, only suspended jobs resume"
            )
        if self._state not in ("running", "draining"):
            raise ServiceClosedError(
                "service is not accepting jobs",
                job_id=job.id,
                tenant=job.tenant,
                state=self._state,
            )
        job._suspend_requested = False
        job.state = "pending"
        try:
            self._scheduler.submit(job.tenant, job, priority=job.priority)
        except Exception:
            job.state = "suspended"
            raise
        self._wake.set()
        return job

    # -- introspection ---------------------------------------------------------------

    def stats(self) -> dict:
        """Service-level counters: job states, tenant shares, cache stats."""

        by_state = Counter(job.state for job in self._jobs.values())
        return {
            "state": self._state,
            "jobs": dict(by_state),
            "dispatched": len(self._dispatch_order),
            "tenants": self._scheduler.snapshot(),
            "cache": None if self._cache is None else self._cache.stats(),
        }

    def dispatch_order(self) -> tuple[str, ...]:
        """Tenant names in the order their jobs were dispatched.

        The fairness assertions in the tests and the soak harness are
        written against this log: while every tenant is backlogged, any
        window of ``sum(weights)`` consecutive entries contains exactly
        ``weight`` entries per tenant.
        """

        return tuple(self._dispatch_order)

    # -- worker loop -----------------------------------------------------------------

    async def _worker(self) -> None:
        """One worker coroutine: pop under DRR, execute, park when idle."""

        while True:
            if self._state in ("closing", "closed"):
                return
            job = self._scheduler.next_job()
            if job is None:
                self._wake.clear()
                self._signal_if_quiet()
                if self._scheduler.pending() == 0 and self._state not in (
                    "closing",
                    "closed",
                ):
                    await self._wake.wait()
                continue
            if job.state != "pending":
                # Cancelled while queued; the terminal event already fired.
                continue
            self._running += 1
            try:
                await self._run_job(job)
            finally:
                self._running -= 1
                self._signal_if_quiet()

    def _signal_if_quiet(self) -> None:
        """Wake :meth:`drain` when no work is queued or in flight."""

        if self._scheduler.pending() == 0 and self._running == 0:
            if self._idle is not None:
                self._idle.set()

    async def _run_job(self, job: Job) -> None:
        """Execute one claimed job, routing every outcome to its future."""

        job.state = "running"
        self._dispatch_order.append(job.tenant)
        try:
            await self._execute_job(job)
        except _SuspendMarker as marker:
            job.state = "suspended"
            self._emit(job, "suspended", marker.payload)
        except JobCancelledError as error:
            self._finish(job, "cancelled", error=error)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # repro-lint: disable=error-taxonomy -- routed to the job future and its failed event, not swallowed
            self._finish(job, "failed", error=error)

    async def _execute_job(self, job: Job) -> None:
        """Cache lookup, then gate-stepped execution on a leased simulator."""

        if job._cancel_requested:
            raise JobCancelledError(
                "job cancelled",
                job_id=job.id,
                tenant=job.tenant,
                gates_done=job.gates_done,
            )
        started = self._clock()
        session = self._session_for(job.simulator_config)
        key = None
        if (
            self._cache is not None
            and not job.was_resumed
            and job._checkpoint_path is None
        ):
            key = self._cache_key_for(job, session)
            payload = self._cache.get(key)
            if payload is not None:
                result = Result.from_json(payload)
                job.cache_hit = True
                result.metadata["serve"] = self._serve_annotation(job)
                self._emit(job, "cached", {"cache_key": key})
                self._finish(job, "completed", result=result)
                return
        result = await self._run_on_simulator(job, session)
        result.metadata.setdefault("seed", job.seed)
        result.metadata.setdefault("wall_seconds", self._clock() - started)
        result.metadata["serve"] = self._serve_annotation(job)
        if (
            key is not None
            and not job.was_resumed
            and result.report.get("recovery") is None
        ):
            # Resumed/recovered results are canonically equal to a cold run
            # but not field-identical (partial-replay report counters), so
            # only pristine first runs back the bit-identity contract.
            self._cache.put(key, result.to_json())
        self._finish(job, "completed", result=result)

    async def _run_on_simulator(self, job: Job, session) -> Result:
        """Apply the job's fused gates in chunks on a leased warm simulator.

        Replays the exact single-circuit rng ladder of
        :meth:`repro.backends.base.Backend.run`, so sampled counts are
        bit-identical to ``repro.run(circuit, seed=job.seed)``.
        """

        rng = np.random.default_rng(np.random.SeedSequence(job.seed).spawn(1)[0])
        simulator = session.acquire(job.circuit.num_qubits)
        try:
            if job._checkpoint_path is not None:
                resume_from_checkpoint(simulator, job._checkpoint_path)
                self._discard_checkpoint(job)
                job.was_resumed = True
                gates = job._gates
                index = job._next_gate
                self._emit(job, "resumed", {"gate_index": index})
            else:
                gates = simulator.prepare_gates(job.circuit)
                job._gates = gates
                job.gates_total = len(gates)
                index = 0
                self._emit(job, "started", {"gates_total": len(gates)})
            interval = self._config.progress_interval
            while index < len(gates):
                chunk_end = min(index + interval, len(gates))
                for gate in gates[index:chunk_end]:
                    simulator.apply_gate(gate)
                index = chunk_end
                job.gates_done = index
                self._emit(job, "progress", self._progress_payload(job, simulator))
                # The cooperative yield: lets event followers, controllers
                # and sibling workers run between chunks.
                await asyncio.sleep(0)
                if job._cancel_requested:
                    raise JobCancelledError(
                        "job cancelled",
                        job_id=job.id,
                        tenant=job.tenant,
                        gates_done=index,
                    )
                if job._suspend_requested and index < len(gates):
                    job._suspend_requested = False
                    path = self._checkpoint_path_for(job)
                    written = suspend_to_checkpoint(simulator, path)
                    job._checkpoint_path = path
                    job._next_gate = index
                    raise _SuspendMarker(
                        {"gate_index": index, "checkpoint_bytes": written}
                    )
            return _package_result(
                self._backend.name,
                simulator,
                session,
                job.circuit,
                shots=job.shots,
                observables=job.observables,
                rng=rng,
                return_statevector=job.return_statevector,
            )
        finally:
            session.release(simulator)

    # -- helpers ---------------------------------------------------------------------

    def _session_for(self, config: SimulatorConfig | None):
        """The warm session for *config* (created on first use, then shared)."""

        for existing, session in self._sessions:
            if existing == config:
                return session
        options = {} if config is None else {"config": config}
        session = self._backend._open_session(**options)
        self._sessions.append((config, session))
        return session

    def _cache_key_for(self, job: Job, session) -> str:
        """The job's content-addressed cache key (computed once)."""

        if job._cache_key is None:
            from .cache import cache_key

            job._cache_key = cache_key(
                job.circuit,
                backend=self._backend.name,
                config=session.config,
                shots=job.shots,
                seed=job.seed,
                observables=job.observables,
                return_statevector=job.return_statevector,
            )
        return job._cache_key

    def _serve_annotation(self, job: Job) -> dict:
        """The volatile ``metadata["serve"]`` block stamped on every result."""

        return {
            "job_id": job.id,
            "tenant": job.tenant,
            "cache_hit": job.cache_hit,
            "resumed": job.was_resumed,
        }

    def _progress_payload(self, job: Job, simulator) -> dict:
        """Report-counter snapshot carried by a ``progress`` event."""

        report = simulator.report()
        return {
            "gates_executed": job.gates_done,
            "gates_total": job.gates_total,
            "compress_calls": report.compress_calls,
            "min_compression_ratio": report.min_compression_ratio,
            "fidelity_lower_bound": report.fidelity_lower_bound,
        }

    def _checkpoint_path_for(self, job: Job) -> Path:
        """Where *job* suspends to (service checkpoint dir, lazily created)."""

        if self._checkpoint_root is None:
            if self._config.checkpoint_dir is not None:
                self._checkpoint_root = Path(self._config.checkpoint_dir)
                self._checkpoint_root.mkdir(parents=True, exist_ok=True)
            else:
                self._checkpoint_root = Path(
                    tempfile.mkdtemp(prefix="repro-serve-")
                )
                self._owns_checkpoint_root = True
        return self._checkpoint_root / f"{job.id}.qckpt"

    def _discard_checkpoint(self, job: Job) -> None:
        """Delete a job's suspend checkpoint, if any."""

        if job._checkpoint_path is not None:
            try:
                os.unlink(job._checkpoint_path)
            except OSError:
                pass  # repro-lint: disable=error-taxonomy -- best-effort cleanup of a temp checkpoint
            job._checkpoint_path = None

    def _finish(
        self,
        job: Job,
        state: str,
        *,
        result: Result | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Move *job* to a terminal state: resolve its future, emit the event."""

        if job.state in TERMINAL_STATES:
            return
        job.state = state
        if not job.future.done():
            if error is not None:
                job.future.set_exception(error)
            else:
                job.future.set_result(result)
        payload: dict = {}
        if state == "completed":
            payload = {"cache_hit": job.cache_hit, "resumed": job.was_resumed}
        elif error is not None:
            payload = {"error": type(error).__name__, "message": str(error)}
        self._emit(job, state, payload)

    def _emit(self, job: Job, kind: str, payload: dict | None = None) -> None:
        """Append one event to the job's stream, stamped with the clock."""

        job.events.emit(
            JobEvent(
                kind=kind,
                job_id=job.id,
                tenant=job.tenant,
                timestamp=self._clock(),
                payload=payload or {},
            )
        )
