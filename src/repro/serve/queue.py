"""Per-tenant job queues with weighted deficit round-robin dispatch.

Classic DRR (Shreedhar & Varghese) with every job costing one unit: each
tenant owns a priority queue and a *deficit counter*; the dispatcher visits
tenants in registration order, tops the visited tenant's deficit up by its
weight once per visit, and hands out jobs while the deficit covers them.
An empty queue forfeits its deficit (the textbook rule that stops an idle
tenant hoarding credit).  The consequences, which the tests pin:

* while every tenant is backlogged, a full round dispatches **exactly**
  ``weight`` jobs per tenant — fairness is not statistical;
* a backlogged tenant is never starved: it receives a job within one full
  round (at most ``sum(weights)`` dispatches) of becoming backlogged;
* within one tenant, higher ``priority`` runs first, FIFO among equals.

The scheduler is synchronous and deterministic — no clock, no randomness —
which is what lets the service's asyncio layer stay testable with scripted
workloads.  Bounds (per tenant and total) are enforced at submission with
typed :class:`~repro.errors.ServiceOverloadedError` rejection; that is the
service's entire backpressure story, so the error carries the counts the
caller needs to reason about backoff.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ServiceOverloadedError

__all__ = ["FairScheduler", "TenantState"]


@dataclass
class TenantState:
    """One tenant's queue, weight and accounting inside the scheduler."""

    name: str
    weight: int
    #: DRR deficit counter: dispatch credit carried within a round.
    deficit: float = 0.0
    #: Min-heap of ``(-priority, seq, job)`` — higher priority first, FIFO
    #: among equals via the global submission sequence number.
    heap: list = field(default_factory=list)
    submitted: int = 0
    dispatched: int = 0

    @property
    def pending(self) -> int:
        """Jobs waiting in this tenant's queue."""

        return len(self.heap)


class FairScheduler:
    """Weighted deficit round-robin dispatcher over per-tenant queues.

    Parameters
    ----------
    max_pending_per_tenant:
        Bound on one tenant's queued jobs; submission past it raises
        :class:`~repro.errors.ServiceOverloadedError` with ``scope="tenant"``.
    max_pending_total:
        Bound on all queued jobs together (``scope="total"``).
    """

    def __init__(
        self,
        *,
        max_pending_per_tenant: int = 64,
        max_pending_total: int = 256,
    ) -> None:
        if max_pending_per_tenant < 1 or max_pending_total < 1:
            raise ValueError("queue bounds must be >= 1")
        self._max_per_tenant = int(max_pending_per_tenant)
        self._max_total = int(max_pending_total)
        self._tenants: dict[str, TenantState] = {}
        self._order: list[str] = []
        self._cursor = 0
        self._turn_open = False
        self._seq = 0
        self._total_pending = 0

    # -- tenants ---------------------------------------------------------------------

    def register(self, tenant: str, weight: int = 1) -> None:
        """Register *tenant* with an integer *weight* >= 1 (idempotent).

        Re-registering an existing tenant with a different weight raises
        ``ValueError`` — weights are part of the fairness contract and must
        not drift mid-run.
        """

        if not tenant or not isinstance(tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if not isinstance(weight, int) or weight < 1:
            raise ValueError(f"weight must be an int >= 1, got {weight!r}")
        existing = self._tenants.get(tenant)
        if existing is not None:
            if existing.weight != weight:
                raise ValueError(
                    f"tenant {tenant!r} already registered with weight "
                    f"{existing.weight}, cannot change to {weight}"
                )
            return
        self._tenants[tenant] = TenantState(name=tenant, weight=weight)
        self._order.append(tenant)

    def tenants(self) -> tuple[str, ...]:
        """Registered tenant names, in registration (= visit) order."""

        return tuple(self._order)

    def weight_of(self, tenant: str) -> int:
        """The registered weight of *tenant*."""

        return self._tenants[tenant].weight

    # -- submission ------------------------------------------------------------------

    def submit(self, tenant: str, job, priority: int = 0) -> None:
        """Queue *job* for *tenant*, or raise the typed backpressure error.

        *tenant* must be registered.  Bounds are checked before anything is
        mutated, so a rejected submission leaves no trace.
        """

        state = self._tenants.get(tenant)
        if state is None:
            raise KeyError(f"unknown tenant {tenant!r}; register() it first")
        if self._total_pending >= self._max_total:
            raise ServiceOverloadedError(
                "service queue is full",
                tenant=tenant,
                pending=self._total_pending,
                limit=self._max_total,
                scope="total",
            )
        if state.pending >= self._max_per_tenant:
            raise ServiceOverloadedError(
                f"tenant {tenant!r} queue is full",
                tenant=tenant,
                pending=state.pending,
                limit=self._max_per_tenant,
                scope="tenant",
            )
        heapq.heappush(state.heap, (-int(priority), self._seq, job))
        self._seq += 1
        state.submitted += 1
        self._total_pending += 1

    # -- dispatch --------------------------------------------------------------------

    def next_job(self):
        """Pop the next job under DRR, or ``None`` when everything is idle.

        Dispatching one job at a time keeps the scheduler usable from
        multiple service workers; the round state (cursor, open turn,
        deficits) persists across calls, so interleaved calls see the same
        global dispatch order a single loop would.
        """

        if self._total_pending == 0:
            return None
        visited = 0
        while True:
            state = self._tenants[self._order[self._cursor]]
            if not self._turn_open:
                # Entering this tenant's turn for the current round.
                if state.pending:
                    state.deficit += state.weight
                    self._turn_open = True
                else:
                    state.deficit = 0.0
                    self._advance()
                    visited += 1
                    # Every tenant idle would mean _total_pending == 0,
                    # checked above; the walk always terminates within two
                    # full rounds because some tenant has work and integer
                    # weights >= 1 guarantee its topped-up deficit covers a
                    # job.
                    continue
            if state.pending and state.deficit >= 1:
                state.deficit -= 1
                _neg_priority, _seq, job = heapq.heappop(state.heap)
                state.dispatched += 1
                self._total_pending -= 1
                if not state.pending:
                    # Forfeit leftover credit and close the turn: an empty
                    # queue must not accumulate deficit across rounds.
                    state.deficit = 0.0
                    self._advance()
                elif state.deficit < 1:
                    self._advance()
                return job
            self._advance()
            visited += 1
            if visited > 2 * len(self._order) + 1:  # pragma: no cover - invariant
                raise AssertionError("DRR walk failed to dispatch")

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)
        self._turn_open = False

    # -- introspection ---------------------------------------------------------------

    def pending(self, tenant: str | None = None) -> int:
        """Queued jobs for one tenant, or in total when *tenant* is None."""

        if tenant is None:
            return self._total_pending
        return self._tenants[tenant].pending

    def snapshot(self) -> dict:
        """Per-tenant counters (weight, pending, submitted, dispatched)."""

        return {
            name: {
                "weight": state.weight,
                "pending": state.pending,
                "submitted": state.submitted,
                "dispatched": state.dispatched,
            }
            for name, state in self._tenants.items()
        }
