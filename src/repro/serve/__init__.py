"""repro.serve: a long-lived asyncio simulation service.

The engine layers run one blocking call at a time; this package keeps them
*hot* and arbitrates between competing tenants, the serving story the
ROADMAP names.  One :class:`SimulationService` owns the warm backend
sessions (and therefore any process pools the simulator configs spin up)
and fronts them with:

* a priority job queue with **per-tenant fair scheduling** — weighted
  deficit round-robin across tenant queues (:mod:`repro.serve.queue`), so a
  heavy tenant cannot starve a light one;
* a **content-addressed result cache** — a canonical hash of circuit +
  config + seed + shots + observables keyed to the cached ``Result`` JSON,
  with hit/miss/eviction statistics (:mod:`repro.serve.cache`);
* **streaming progress events** per job, sourced from the simulator's
  :class:`~repro.core.report.SimulationReport` at gate-chunk boundaries
  (:mod:`repro.serve.events`);
* **cancellation and checkpoint-based suspend/resume** of long jobs via the
  resilience checkpoints (:mod:`repro.resilience.suspend`);
* explicit **backpressure** — bounded queues with typed
  :class:`~repro.errors.ServiceOverloadedError` rejection and a
  drain-and-close lifecycle that leaks no tasks, simulators or worker
  processes.

Quick start::

    import asyncio, repro
    from repro.serve import ServiceConfig, SimulationService

    async def main():
        service = SimulationService(ServiceConfig())
        await service.start()
        job = service.submit(
            repro.QuantumCircuit(4).h(0).cx(0, 1), tenant="alice",
            shots=100, seed=7,
        )
        result = await job
        print(result.counts, service.stats()["cache"])
        await service.close()

    asyncio.run(main())

``python -m repro.serve`` runs a local demo (and a JSON-lines TCP server);
``docs/serve.md`` documents the fairness model, the cache-key contract and
the backpressure semantics.
"""

from __future__ import annotations

from ..errors import (
    JobCancelledError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from .cache import ResultCache, cache_key, cache_manifest
from .events import EventStream, JobEvent
from .queue import FairScheduler
from .service import Job, ServiceConfig, SimulationService

__all__ = [
    "SimulationService",
    "ServiceConfig",
    "Job",
    "FairScheduler",
    "ResultCache",
    "cache_key",
    "cache_manifest",
    "JobEvent",
    "EventStream",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "JobCancelledError",
]
