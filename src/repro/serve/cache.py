"""Content-addressed result cache: canonical request hashing + LRU store.

A cache key is the SHA-256 of a canonical JSON manifest of everything that
can change a deterministic run's *results*: the circuit (per-gate name,
targets, controls, exact parameter bits and a digest of the exact unitary
bytes), the result-affecting subset of the simulator config, the seed, the
shot count, the observables and the statevector flag.

Throughput-only knobs are deliberately **excluded** from the key
(:data:`EXCLUDED_CONFIG_FIELDS`): the engine documents bit-identical
results across executor tiers, worker counts, start methods, codec engines,
communication tiers and fault policies, so two requests differing only
there *should* share a cache line.  Anything without that contract —
error levels, compressor choices, fusion settings, block geometry — is in
the key, so mutating it misses.

The cached value is the full ``Result.to_json()`` payload of the first
(cold) run; the bit-identity contract — a hit equals a cold rerun — is
expressed through :meth:`repro.backends.result.Result.canonical_json`,
which strips only measured wall-clock fields and service annotations.

Floats are canonicalised via ``float.hex()`` (exact bits, no decimal
rounding) and the gate matrix via the SHA-256 of its little-endian
``complex128`` bytes, so two gates are cache-equal iff their unitaries are
bit-equal.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import fields as dataclass_fields

import numpy as np

from ..backends.observables import PauliObservable
from ..circuits import QuantumCircuit
from ..core.config import SimulatorConfig

__all__ = [
    "cache_key",
    "cache_manifest",
    "ResultCache",
    "EXCLUDED_CONFIG_FIELDS",
]

#: SimulatorConfig fields that cannot change results, only throughput —
#: each carries an explicit bit-identity contract in its config docstring.
#: Everything else participates in the cache key.
EXCLUDED_CONFIG_FIELDS = (
    "num_workers",
    "executor",
    "mp_start_method",
    "comm",
    "codec_engine",
    "fault_policy",
)


def _canonical_number(value):
    """JSON-safe exact encoding: floats via ``float.hex()``, ints as-is."""

    if isinstance(value, bool) or value is None or isinstance(value, int):
        return value
    return float(value).hex()


def _config_manifest(config: SimulatorConfig) -> dict:
    """The result-affecting config fields, exactly encoded."""

    manifest = {}
    for field in dataclass_fields(config):
        if field.name in EXCLUDED_CONFIG_FIELDS:
            continue
        value = getattr(config, field.name)
        if isinstance(value, tuple):
            value = [_canonical_number(entry) for entry in value]
        elif isinstance(value, float):
            value = _canonical_number(value)
        manifest[field.name] = value
    return manifest


def _circuit_manifest(circuit: QuantumCircuit) -> dict:
    """Per-gate exact identity: names, wiring, parameter and matrix bits."""

    gates = []
    for gate in circuit:
        matrix = np.ascontiguousarray(gate.matrix, dtype=np.complex128)
        gates.append(
            {
                "name": gate.name,
                "targets": list(gate.targets),
                "controls": list(gate.controls),
                "params": [float(p).hex() for p in gate.params],
                "matrix_sha256": hashlib.sha256(matrix.tobytes()).hexdigest(),
            }
        )
    return {"num_qubits": circuit.num_qubits, "gates": gates}


def _observables_manifest(observables) -> list:
    """Sorted-by-label observable terms (order cannot affect results)."""

    entries = []
    for observable in observables or ():
        if not isinstance(observable, PauliObservable):
            raise TypeError(
                f"expected PauliObservable, got {type(observable).__name__}"
            )
        entries.append(
            {
                "label": observable.label,
                "terms": [
                    [float(coeff).hex(), paulis]
                    for coeff, paulis in observable.terms
                ],
            }
        )
    entries.sort(key=lambda entry: entry["label"])
    return entries


def cache_manifest(
    circuit: QuantumCircuit,
    *,
    backend: str,
    config: SimulatorConfig,
    shots: int,
    seed: int | None,
    observables=(),
    return_statevector: bool = False,
) -> dict:
    """The canonical request manifest :func:`cache_key` hashes.

    Exposed separately so tests (and debugging sessions) can see *why* two
    requests hash differently: the manifest is an ordinary JSON-safe dict.
    """

    return {
        "backend": backend,
        "circuit": _circuit_manifest(circuit),
        "config": _config_manifest(config),
        "shots": int(shots),
        "seed": None if seed is None else int(seed),
        "observables": _observables_manifest(observables),
        "return_statevector": bool(return_statevector),
    }


def cache_key(
    circuit: QuantumCircuit,
    *,
    backend: str,
    config: SimulatorConfig,
    shots: int,
    seed: int | None,
    observables=(),
    return_statevector: bool = False,
) -> str:
    """SHA-256 hex digest of the canonical request manifest.

    Two requests share a key iff every result-affecting ingredient is
    bit-equal; see the module docstring for what is in and out of the key.
    """

    manifest = cache_manifest(
        circuit,
        backend=backend,
        config=config,
        shots=shots,
        seed=seed,
        observables=observables,
        return_statevector=return_statevector,
    )
    payload = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Bounded LRU mapping cache keys to cached ``Result`` JSON strings.

    Eviction is least-recently-*used*: a hit refreshes an entry's recency.
    The cache stores opaque strings (the service stores full
    ``Result.to_json()`` payloads), so a hit costs one JSON parse and zero
    simulation.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = int(max_entries)
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> str | None:
        """The cached payload for *key*, or ``None`` (counts hit/miss)."""

        payload = self._entries.get(key)
        if payload is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return payload

    def put(self, key: str, payload: str) -> None:
        """Store *payload* under *key*, evicting the LRU entry when full."""

        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""

        self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus occupancy, JSON-ready."""

        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }
