"""Job lifecycle events and per-job streaming.

Every job owns one :class:`EventStream`: an append-only log of
:class:`JobEvent` records plus an awaitable cursor, so clients can either
inspect the full history after the fact (what the deterministic tests do)
or ``async for`` over events as the service emits them (what a progress bar
does).  Events are plain data — timestamps come from the service's
injectable clock, so under the test harness's fake clock the whole event
history is reproducible byte for byte.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator

__all__ = ["JobEvent", "EventStream", "EVENT_KINDS", "TERMINAL_KINDS"]

#: Every event kind the service emits, in no particular order: ``queued``
#: (admitted past backpressure), ``started`` (dispatched to a simulator),
#: ``progress`` (gate-chunk boundary, payload carries report counters),
#: ``cached`` (answered from the result cache without executing),
#: ``suspended`` / ``resumed`` (checkpoint-based suspend cycle), and the
#: terminal ``completed`` / ``failed`` / ``cancelled``.
EVENT_KINDS = (
    "queued",
    "started",
    "progress",
    "cached",
    "suspended",
    "resumed",
    "completed",
    "failed",
    "cancelled",
)

#: Kinds after which a job's stream ends.  ``suspended`` is deliberately
#: *not* terminal: a suspended job's stream stays open and continues with
#: ``resumed`` when the job is rescheduled.
TERMINAL_KINDS = ("completed", "failed", "cancelled")


@dataclass(frozen=True)
class JobEvent:
    """One observation of a job's lifecycle.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    job_id / tenant:
        Which job (and whose) the event concerns.
    timestamp:
        Service-clock reading (monotonic domain) when the event was emitted.
    payload:
        Kind-specific details: ``progress`` carries ``gates_executed`` /
        ``gates_total`` and selected report counters, terminal events carry
        the outcome summary.
    """

    kind: str
    job_id: str
    tenant: str
    timestamp: float
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")


class EventStream:
    """Append-only event log with an awaitable tail.

    The service is the single writer (:meth:`emit`); any number of readers
    can replay the log (:attr:`events`) or follow it live
    (:meth:`stream`).  No task is spawned per stream — followers park on a
    shared :class:`asyncio.Event` that every emit sets, which keeps the
    zero-leaked-tasks guarantee trivial.
    """

    def __init__(self) -> None:
        self._events: list[JobEvent] = []
        self._arrived = asyncio.Event()

    def emit(self, event: JobEvent) -> None:
        """Append *event* and wake every follower."""

        self._events.append(event)
        self._arrived.set()

    @property
    def events(self) -> tuple[JobEvent, ...]:
        """The full event history so far, in emission order."""

        return tuple(self._events)

    def kinds(self) -> tuple[str, ...]:
        """Just the event kinds, in order — the tests' compact assertion."""

        return tuple(event.kind for event in self._events)

    async def stream(self) -> AsyncIterator[JobEvent]:
        """Yield every event from the beginning, then follow live.

        The iterator ends after a terminal event (:data:`TERMINAL_KINDS`).
        Multiple concurrent streams over one job are fine; each keeps its
        own cursor.
        """

        index = 0
        while True:
            while index < len(self._events):
                event = self._events[index]
                index += 1
                yield event
                if event.kind in TERMINAL_KINDS:
                    return
            self._arrived.clear()
            await self._arrived.wait()
