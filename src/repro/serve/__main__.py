"""``python -m repro.serve`` — local demo, JSON-lines server and client.

Three subcommands:

* ``demo`` (the default) runs a self-contained in-process workload: three
  weighted tenants submit a mix of circuit families, one job is suspended
  to a checkpoint and resumed mid-demo, one request repeats to show a cache
  hit, and the per-job event histories plus service statistics are printed.
* ``serve --port N`` exposes one :class:`~repro.serve.service.SimulationService`
  over a line-delimited JSON TCP protocol: each request line is
  ``{"op": "submit", "family": "ghz", "qubits": 4, ...}`` or
  ``{"op": "stats"}``; a submit streams the job's lifecycle events back as
  JSON lines and finishes with a ``{"op": "result", ...}`` summary line.
* ``client --port N`` submits one such request and pretty-prints the reply
  stream — a smoke test for the server, not a product.

The protocol ships named circuit *families* rather than gate lists — the
server builds the circuit locally, so the demo protocol stays a few lines
and the cache keys stay canonical.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..applications import (
    grover_circuit,
    hadamard_layers_circuit,
    qft_benchmark_circuit,
)
from ..circuits import QuantumCircuit
from .service import ServiceConfig, SimulationService

__all__ = ["main", "build_circuit", "CIRCUIT_FAMILIES"]


def _ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """The GHZ ladder: H on qubit 0, then a CX chain down the register."""

    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def _qft_circuit(num_qubits: int) -> QuantumCircuit:
    """QFT benchmark with a *pinned* input-preparation seed.

    ``qft_benchmark_circuit`` randomises the prepared basis state when no
    seed is given; the protocol pins it so repeated requests build the
    bit-identical circuit and therefore share a cache key.
    """

    return qft_benchmark_circuit(num_qubits, seed=1234)


def _layers_circuit(num_qubits: int) -> QuantumCircuit:
    """Three alternating Hadamard layers — the incompressible stress case."""

    return hadamard_layers_circuit(num_qubits, layers=3)


def _grover_circuit(num_qubits: int) -> QuantumCircuit:
    """Grover's search marking basis state 1."""

    return grover_circuit(num_qubits, marked=1)


#: Circuit families the CLI protocol can request by name.  Every builder is
#: deterministic in ``num_qubits`` alone, so a repeated request is a cache hit.
CIRCUIT_FAMILIES = {
    "ghz": _ghz_circuit,
    "qft": _qft_circuit,
    "layers": _layers_circuit,
    "grover": _grover_circuit,
}


def build_circuit(family: str, num_qubits: int) -> QuantumCircuit:
    """Build the named circuit *family* at *num_qubits* qubits."""

    try:
        builder = CIRCUIT_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown circuit family {family!r}; "
            f"choose from {sorted(CIRCUIT_FAMILIES)}"
        ) from None
    return builder(num_qubits)


def _event_line(event) -> str:
    """One lifecycle event as a compact JSON line."""

    return json.dumps(
        {
            "op": "event",
            "kind": event.kind,
            "job_id": event.job_id,
            "tenant": event.tenant,
            "timestamp": event.timestamp,
            "payload": event.payload,
        },
        sort_keys=True,
    )


def _result_summary(result) -> dict:
    """The compact end-of-job summary the server and demo both print."""

    return {
        "op": "result",
        "backend": result.backend,
        "circuit": result.circuit_name,
        "counts": result.counts,
        "expectations": result.expectations,
        "cache_hit": result.metadata.get("serve", {}).get("cache_hit", False),
        "resumed": result.metadata.get("serve", {}).get("resumed", False),
    }


async def _run_demo(num_qubits: int) -> None:
    """The in-process workload behind ``python -m repro.serve demo``."""

    service = SimulationService(ServiceConfig(progress_interval=2))
    await service.start()
    try:
        service.register_tenant("alice", weight=2)
        service.register_tenant("bob", weight=1)
        service.register_tenant("carol", weight=1)
        jobs = []
        for tenant, family in (
            ("alice", "ghz"),
            ("alice", "qft"),
            ("bob", "layers"),
            ("carol", "grover"),
        ):
            jobs.append(
                service.submit(
                    build_circuit(family, num_qubits),
                    tenant=tenant,
                    shots=128,
                    seed=7,
                )
            )
        # A repeat of the first request: answered from the cache.
        jobs.append(
            service.submit(
                build_circuit("ghz", num_qubits), tenant="bob", shots=128, seed=7
            )
        )
        # Suspend the qft job at its first progress event, then resume it.
        target = jobs[1]
        async for event in target.events.stream():
            if event.kind == "progress" and service.suspend(target.id):
                break
            if event.kind in ("completed", "failed", "cancelled"):
                break
        while target.state == "running":
            await asyncio.sleep(0)
        if target.state == "suspended":
            print(f"suspended {target.id} at gate {target.gates_done}")
            service.resume(target.id)
        for job in jobs:
            result = await job
            print(json.dumps(_result_summary(result), sort_keys=True))
        print("dispatch order:", " ".join(service.dispatch_order()))
        print(json.dumps({"op": "stats", **service.stats()}, sort_keys=True))
    finally:
        await service.close()


async def _handle_client(
    service: SimulationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one TCP client: JSON request lines in, JSON event lines out."""

    try:
        while True:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                writer.write(
                    (json.dumps({"op": "error", "message": str(error)}) + "\n").encode()
                )
                await writer.drain()
                continue
            op = request.get("op", "submit")
            if op == "stats":
                writer.write((json.dumps(service.stats(), sort_keys=True) + "\n").encode())
                await writer.drain()
                continue
            try:
                circuit = build_circuit(
                    request.get("family", "ghz"), int(request.get("qubits", 4))
                )
                job = service.submit(
                    circuit,
                    tenant=str(request.get("tenant", "default")),
                    shots=int(request.get("shots", 0)),
                    seed=request.get("seed"),
                    priority=int(request.get("priority", 0)),
                )
            except Exception as error:  # repro-lint: disable=error-taxonomy -- reported to the remote client as a typed error line
                writer.write(
                    (
                        json.dumps(
                            {"op": "error", "type": type(error).__name__, "message": str(error)}
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                continue
            async for event in job.events.stream():
                writer.write((_event_line(event) + "\n").encode())
                await writer.drain()
            if job.state == "completed":
                writer.write(
                    (json.dumps(_result_summary(job.result()), sort_keys=True) + "\n").encode()
                )
                await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _run_server(host: str, port: int) -> None:
    """Run the JSON-lines TCP server until interrupted."""

    service = SimulationService(ServiceConfig(progress_interval=4))
    await service.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_client(service, r, w), host, port
    )
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}" for sock in server.sockets
    )
    print(f"repro.serve listening on {addresses}")
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.close()


async def _run_client(host: str, port: int, request: dict) -> None:
    """Send one request line and echo the reply stream."""

    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                return
            reply = json.loads(line)
            print(json.dumps(reply, sort_keys=True))
            if reply.get("op") in ("result", "error"):
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Local simulation-service demo, server and client.",
    )
    sub = parser.add_subparsers(dest="command")
    demo = sub.add_parser("demo", help="run the in-process demo workload")
    demo.add_argument("--qubits", type=int, default=6)
    serve = sub.add_parser("serve", help="run the JSON-lines TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    client = sub.add_parser("client", help="submit one request to a server")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8642)
    client.add_argument("--family", default="ghz", choices=sorted(CIRCUIT_FAMILIES))
    client.add_argument("--qubits", type=int, default=4)
    client.add_argument("--tenant", default="default")
    client.add_argument("--shots", type=int, default=100)
    client.add_argument("--seed", type=int, default=None)
    options = parser.parse_args(argv)
    command = options.command or "demo"
    if command == "demo":
        asyncio.run(_run_demo(getattr(options, "qubits", 6)))
    elif command == "serve":
        asyncio.run(_run_server(options.host, options.port))
    else:
        asyncio.run(
            _run_client(
                options.host,
                options.port,
                {
                    "op": "submit",
                    "family": options.family,
                    "qubits": options.qubits,
                    "tenant": options.tenant,
                    "shots": options.shots,
                    "seed": options.seed,
                },
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
