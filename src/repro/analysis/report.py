"""Plain-text table/series rendering shared by the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series; this module keeps that formatting in one place so the
benches stay small and the output stays uniform (and greppable in
``bench_output.txt``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "print_experiment"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    floatfmt: str = "{:.4g}",
) -> str:
    """Render dict rows as a fixed-width text table."""

    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(
    x_label: str,
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    floatfmt: str = "{:.4g}",
) -> str:
    """Render one or more named series against a shared x axis."""

    rows = []
    for index, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index]
        rows.append(row)
    return format_table(rows, floatfmt=floatfmt)


def print_experiment(title: str, body: str) -> None:
    """Print a titled experiment block (used by every bench)."""

    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n", flush=True)
