"""Memory requirement model (Table 1 and the qubit-gain estimates).

The paper's framing results are analytic: a full-state simulation of ``n``
qubits needs ``2^{n+4}`` bytes (a complex double per amplitude), so a
machine's memory capacity caps the simulable qubit count (Table 1), and a
compression ratio ``c`` raises that cap by ``log2(c)`` qubits — the "2 to 16
more qubits" headline.  This module implements those formulas plus the
specific supercomputer inventory the paper tabulates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "state_vector_bytes",
    "max_qubits_for_memory",
    "qubit_gain_from_ratio",
    "memory_with_compression",
    "Supercomputer",
    "PAPER_SUPERCOMPUTERS",
    "table1_rows",
]

_PB = 1 << 50
_BYTES_PER_AMPLITUDE = 16  # double-precision complex


def state_vector_bytes(num_qubits: int) -> int:
    """Bytes required for the uncompressed ``2^n`` amplitude vector: ``2^{n+4}``."""

    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    return (1 << num_qubits) * _BYTES_PER_AMPLITUDE


def max_qubits_for_memory(capacity_bytes: float) -> int:
    """Largest ``n`` with ``2^{n+4}`` bytes not exceeding *capacity_bytes*."""

    if capacity_bytes < _BYTES_PER_AMPLITUDE * 2:
        raise ValueError("capacity too small to hold even one qubit")
    return int(math.floor(math.log2(capacity_bytes))) - 4


def qubit_gain_from_ratio(compression_ratio: float) -> float:
    """Extra qubits enabled by a compression ratio: ``log2(ratio)``.

    A ratio of 4.85 (the paper's worst benchmark case) gains ~2.3 qubits; a
    ratio of 7.4e4 (61-qubit Grover) gains ~16 qubits — the source of the
    "2 to 16 qubits" claim.
    """

    if compression_ratio <= 0:
        raise ValueError("compression ratio must be positive")
    return math.log2(compression_ratio)


def memory_with_compression(num_qubits: int, compression_ratio: float) -> float:
    """Bytes needed to hold the *compressed* state of ``n`` qubits."""

    if compression_ratio <= 0:
        raise ValueError("compression ratio must be positive")
    return state_vector_bytes(num_qubits) / compression_ratio


@dataclass(frozen=True)
class Supercomputer:
    """One row of Table 1."""

    name: str
    memory_petabytes: float

    @property
    def memory_bytes(self) -> float:
        """Machine memory in bytes (petabytes scaled by 2**50)."""

        return self.memory_petabytes * _PB

    @property
    def max_qubits(self) -> int:
        """Maximum full-state simulable qubits for arbitrary circuits."""

        return max_qubits_for_memory(self.memory_bytes)

    def max_qubits_with_ratio(self, compression_ratio: float) -> int:
        """Maximum qubits once the state is compressed by *compression_ratio*."""

        return max_qubits_for_memory(self.memory_bytes * compression_ratio)


#: The four systems of Table 1 with their total memory capacity in PB.
PAPER_SUPERCOMPUTERS: tuple[Supercomputer, ...] = (
    Supercomputer("Summit", 2.8),
    Supercomputer("Sierra", 1.38),
    Supercomputer("Sunway TaihuLight", 1.31),
    Supercomputer("Theta", 0.8),
)


def table1_rows() -> list[dict]:
    """Reproduce Table 1: system, memory (PB), max qubits."""

    return [
        {
            "system": machine.name,
            "memory_pb": machine.memory_petabytes,
            "max_qubits": machine.max_qubits,
        }
        for machine in PAPER_SUPERCOMPUTERS
    ]
