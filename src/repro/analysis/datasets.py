"""Quantum state snapshots used by the compression studies.

The paper's compressor evaluation (Figures 7-14) runs on state-vector
snapshots taken from 36-qubit QAOA and supremacy-circuit simulations
(``qaoa_36`` and ``sup_36``).  36 qubits is far beyond laptop memory, so this
module produces the scaled-down equivalents (default 16 qubits) by running
the same circuits on the dense reference simulator and exposing the state as
the interleaved float64 stream the compressors consume.  The qualitative
property that matters — the spiky, noise-like structure shown in Figure 9 —
is present at these sizes too, which is what makes the compressor ranking
transfer.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..applications.qaoa import qaoa_maxcut_circuit, random_regular_graph
from ..applications.random_circuit import random_supremacy_circuit
from ..statevector import simulate_statevector

__all__ = ["qaoa_state", "supremacy_state", "snapshot", "SNAPSHOT_KINDS"]

SNAPSHOT_KINDS = ("qaoa", "sup")


@lru_cache(maxsize=8)
def qaoa_state(num_qubits: int = 16, layers: int = 2, seed: int = 7) -> np.ndarray:
    """State after a depth-*layers* QAOA MAXCUT circuit (read-only array)."""

    graph = random_regular_graph(num_qubits, degree=4, seed=seed)
    rng = np.random.default_rng(seed)
    gammas = rng.uniform(0.1, 0.9, size=layers)
    betas = rng.uniform(0.1, 0.9, size=layers)
    circuit = qaoa_maxcut_circuit(graph, gammas, betas)
    state = simulate_statevector(circuit)
    state.flags.writeable = False
    return state

@lru_cache(maxsize=8)
def supremacy_state(num_qubits: int = 16, depth: int = 11, seed: int = 7) -> np.ndarray:
    """State after a depth-*depth* supremacy-style random circuit.

    The grid is chosen as close to square as the qubit count allows.
    """

    rows = int(np.floor(np.sqrt(num_qubits)))
    while num_qubits % rows:
        rows -= 1
    cols = num_qubits // rows
    circuit = random_supremacy_circuit(rows, cols, depth, seed=seed)
    state = simulate_statevector(circuit)
    state.flags.writeable = False
    return state


def snapshot(kind: str, num_qubits: int = 16, seed: int = 7) -> np.ndarray:
    """Float64 interleaved view of a named snapshot (``"qaoa"`` or ``"sup"``).

    This is exactly the byte stream a simulator block holds, so compression
    ratios measured on it correspond to the paper's per-block measurements.
    """

    if kind == "qaoa":
        state = qaoa_state(num_qubits=num_qubits, seed=seed)
    elif kind == "sup":
        state = supremacy_state(num_qubits=num_qubits, seed=seed)
    else:
        raise ValueError(f"unknown snapshot kind {kind!r}; use one of {SNAPSHOT_KINDS}")
    return state.view(np.float64)
