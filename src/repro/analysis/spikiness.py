"""Quantifying the spikiness of quantum state data (Figure 9).

Figure 9 of the paper plots raw amplitude values of the QAOA and supremacy
snapshots to argue that the data has no spatial smoothness, which is why the
prediction- and transform-based compressors (SZ, ZFP) underperform and why
the bit-plane truncation of Solution C is the right tool.  This module
provides the window extraction used by the Figure 9 bench plus two scalar
"smoothness" statistics that make the argument quantitative:

* the lag-1 autocorrelation of the value series (near zero for spiky data),
* the mean absolute first difference relative to the value scale (near
  ``sqrt(2)`` times the standard deviation for uncorrelated data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression.metrics import lag1_autocorrelation

__all__ = ["value_windows", "SpikinessStats", "spikiness_stats"]


def value_windows(
    data: np.ndarray, windows: list[tuple[int, int]] | None = None
) -> dict[str, np.ndarray]:
    """Extract the index windows Figure 9 plots (full view plus two zooms)."""

    data = np.asarray(data, dtype=np.float64)
    if windows is None:
        windows = [(0, min(10000, data.size)), (1000, 1050), (2000, 2050)]
    result = {}
    for start, stop in windows:
        stop = min(stop, data.size)
        result[f"{start}:{stop}"] = data[start:stop].copy()
    return result


@dataclass(frozen=True)
class SpikinessStats:
    """Scalar summary of how smooth (compressible by prediction) a stream is."""

    lag1_autocorrelation: float
    mean_abs_diff: float
    std: float

    @property
    def normalized_roughness(self) -> float:
        """``mean|Δ| / std``: ~0 for smooth data, ~1.13 (=2/sqrt(pi)) for
        uncorrelated Gaussian data, >1 for anti-correlated data."""

        if self.std == 0:
            return 0.0
        return self.mean_abs_diff / self.std


def spikiness_stats(data: np.ndarray) -> SpikinessStats:
    """Compute :class:`SpikinessStats` for a value stream."""

    data = np.asarray(data, dtype=np.float64)
    if data.size < 2:
        return SpikinessStats(0.0, 0.0, float(np.std(data)))
    diffs = np.abs(np.diff(data))
    return SpikinessStats(
        lag1_autocorrelation=lag1_autocorrelation(data),
        mean_abs_diff=float(diffs.mean()),
        std=float(data.std()),
    )
