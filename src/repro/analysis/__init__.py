"""Analysis substrate: memory models, snapshots, spikiness stats, reporting."""

from .datasets import SNAPSHOT_KINDS, qaoa_state, snapshot, supremacy_state
from .memory import (
    PAPER_SUPERCOMPUTERS,
    Supercomputer,
    max_qubits_for_memory,
    memory_with_compression,
    qubit_gain_from_ratio,
    state_vector_bytes,
    table1_rows,
)
from .report import format_series, format_table, print_experiment
from .spikiness import SpikinessStats, spikiness_stats, value_windows

__all__ = [
    "snapshot",
    "qaoa_state",
    "supremacy_state",
    "SNAPSHOT_KINDS",
    "state_vector_bytes",
    "max_qubits_for_memory",
    "qubit_gain_from_ratio",
    "memory_with_compression",
    "Supercomputer",
    "PAPER_SUPERCOMPUTERS",
    "table1_rows",
    "format_table",
    "format_series",
    "print_experiment",
    "SpikinessStats",
    "spikiness_stats",
    "value_windows",
]
