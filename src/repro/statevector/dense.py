"""Dense full-state Schrödinger simulator.

This plays the role of Intel-QS in the paper: the compression-free reference
against which the compressed simulator's fidelity and memory footprint are
compared.  It stores all ``2^n`` double-precision complex amplitudes in one
NumPy array and applies gates with the vectorised pair-update kernels in
:mod:`repro.statevector.ops`.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

import numpy as np

from ..circuits import Gate, QuantumCircuit
from . import measurement, ops

__all__ = ["DenseSimulator", "simulate_statevector"]


class DenseSimulator:
    """Reference full-state simulator keeping the entire vector in memory.

    Parameters
    ----------
    num_qubits:
        Number of qubits; the state has ``2**num_qubits`` amplitudes.
    initial_state:
        Either ``None`` (start in ``|0...0>``), an integer basis state, or a
        full ``2**num_qubits`` complex vector (copied and normalised).
    """

    def __init__(
        self,
        num_qubits: int,
        initial_state: int | np.ndarray | None = None,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if num_qubits > 28:
            raise ValueError(
                f"{num_qubits} qubits would need {(1 << (num_qubits + 4)) / 2**30:.0f} GiB; "
                "the dense reference simulator is capped at 28 qubits"
            )
        self._num_qubits = int(num_qubits)
        size = 1 << num_qubits
        if initial_state is None:
            self._state = np.zeros(size, dtype=np.complex128)
            self._state[0] = 1.0
        elif isinstance(initial_state, (int, np.integer)):
            if not 0 <= int(initial_state) < size:
                raise ValueError(f"basis state {initial_state} out of range")
            self._state = np.zeros(size, dtype=np.complex128)
            self._state[int(initial_state)] = 1.0
        else:
            vector = np.asarray(initial_state, dtype=np.complex128)
            if vector.shape != (size,):
                raise ValueError(
                    f"initial state must have shape ({size},), got {vector.shape}"
                )
            self._state = measurement.normalize(vector)
        self._gate_count = 0

    # -- properties -------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits the dense state represents."""

        return self._num_qubits

    @property
    def gate_count(self) -> int:
        """Number of gates applied so far."""

        return self._gate_count

    @property
    def state(self) -> np.ndarray:
        """A read-only view of the current state vector."""

        view = self._state.view()
        view.flags.writeable = False
        return view

    def statevector(self) -> np.ndarray:
        """A copy of the current state vector."""

        return self._state.copy()

    def memory_bytes(self) -> int:
        """Bytes held by the amplitude array (``2^{n+4}`` per the paper)."""

        return self._state.nbytes

    # -- gate application --------------------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate in place."""

        if gate.max_qubit() >= self._num_qubits:
            raise ValueError(
                f"gate {gate.name} touches qubit {gate.max_qubit()} outside the register"
            )
        ops.apply_gate_to_vector(self._state, gate)
        self._gate_count += 1

    def apply_circuit(self, circuit: QuantumCircuit | Iterable[Gate]) -> None:
        """Apply every gate of *circuit* in order."""

        for gate in circuit:
            self.apply_gate(gate)

    def run(self, circuit: QuantumCircuit | Iterable[Gate]) -> None:
        """Deprecated alias of :meth:`apply_circuit`.

        .. deprecated:: 1.1
            Use :meth:`apply_circuit`, or the unified entry points
            :func:`repro.run` / :meth:`repro.backends.Backend.run`.
        """

        warnings.warn(
            "DenseSimulator.run() is deprecated; use apply_circuit() or "
            "the unified repro.run() / Backend.run() API",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.apply_circuit(circuit)

    # -- measurement and analysis -------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Measurement probabilities of every computational basis state."""

        return measurement.probabilities(self._state)

    def probability_of(self, basis_state: int) -> float:
        """Probability of measuring the given computational *basis_state*."""

        return float(np.abs(self._state[basis_state]) ** 2)

    def marginal_probability(self, qubit: int) -> float:
        """Probability that measuring *qubit* alone yields 1."""

        return measurement.marginal_probability(self._state, qubit)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of the Pauli-Z observable on *qubit*."""

        return measurement.expectation_z(self._state, qubit)

    def sample_counts(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[int, int]:
        """Sample *shots* measurement outcomes; ``{basis_state: count}``."""

        return measurement.sample_counts(self._state, shots, rng)

    def measure(
        self, qubit: int, rng: np.random.Generator | None = None
    ) -> int:
        """Projectively measure *qubit*, collapsing the stored state."""

        outcome, collapsed = measurement.measure_qubit(self._state, qubit, rng)
        self._state = collapsed
        return outcome

    def fidelity_with(self, other: "DenseSimulator | np.ndarray") -> float:
        """Pure-state fidelity between this state and *other* (Eq. 9)."""

        other_state = other.state if isinstance(other, DenseSimulator) else other
        return measurement.state_fidelity(self._state, other_state)

    def norm_error(self) -> float:
        """Deviation of the state norm from 1 (numerical-drift check)."""

        return measurement.norm_error(self._state)


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: int | np.ndarray | None = None
) -> np.ndarray:
    """Convenience helper: run *circuit* on a fresh dense simulator."""

    simulator = DenseSimulator(circuit.num_qubits, initial_state)
    simulator.apply_circuit(circuit)
    return simulator.statevector()
