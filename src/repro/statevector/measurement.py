"""Measurement, sampling and state-comparison utilities.

The paper motivates full-state simulation with intermediate measurement and
full-state assertion checking (Section 1), so the reproduction exposes the
same capabilities against both the dense and the compressed simulators:
probabilities, marginal probabilities, sampling, projective measurement with
state collapse, expectation values and the pure-state fidelity of Eq. 9.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "probabilities",
    "marginal_probability",
    "sample_counts",
    "measure_qubit",
    "collapse_qubit",
    "expectation_z",
    "state_fidelity",
    "normalize",
    "norm_error",
]


def probabilities(state: np.ndarray) -> np.ndarray:
    """Return ``|a_i|^2`` for every amplitude."""

    return np.abs(np.asarray(state)) ** 2


def normalize(state: np.ndarray) -> np.ndarray:
    """Return a unit-norm copy of *state* (no-op for the zero vector)."""

    state = np.asarray(state, dtype=np.complex128)
    norm = np.linalg.norm(state)
    if norm == 0.0:
        return state.copy()
    return state / norm


def norm_error(state: np.ndarray) -> float:
    """Absolute deviation of the squared norm from 1 (Eq. 4 check)."""

    return abs(float(np.sum(np.abs(state) ** 2)) - 1.0)


def marginal_probability(state: np.ndarray, qubit: int) -> float:
    """Probability of measuring ``|1>`` on *qubit*."""

    size = state.shape[0]
    num_qubits = size.bit_length() - 1
    if not 0 <= qubit < num_qubits:
        raise ValueError(f"qubit {qubit} out of range")
    view = np.abs(state.reshape(-1, 2, 1 << qubit)) ** 2
    return float(view[:, 1, :].sum())


def sample_counts(
    state: np.ndarray, shots: int, rng: np.random.Generator | None = None
) -> dict[int, int]:
    """Sample *shots* basis-state outcomes from the state distribution."""

    if shots < 0:
        raise ValueError("shots must be non-negative")
    if rng is None:
        rng = np.random.default_rng()
    probs = probabilities(state)
    total = probs.sum()
    if total <= 0:
        raise ValueError("cannot sample from a zero state")
    probs = probs / total
    outcomes = rng.choice(len(probs), size=shots, p=probs)
    counts: dict[int, int] = {}
    for outcome in outcomes:
        counts[int(outcome)] = counts.get(int(outcome), 0) + 1
    return counts


def measure_qubit(
    state: np.ndarray, qubit: int, rng: np.random.Generator | None = None
) -> tuple[int, np.ndarray]:
    """Projectively measure *qubit*; return (outcome, collapsed state).

    The input state is not modified; the collapsed state is renormalised.
    This supports the "intermediate measurement" use case highlighted in the
    paper's introduction.
    """

    if rng is None:
        rng = np.random.default_rng()
    p_one = marginal_probability(state, qubit)
    outcome = 1 if rng.random() < p_one else 0
    return outcome, collapse_qubit(state, qubit, outcome)


def collapse_qubit(state: np.ndarray, qubit: int, outcome: int) -> np.ndarray:
    """Project *state* onto ``qubit == outcome`` and renormalise."""

    if outcome not in (0, 1):
        raise ValueError("outcome must be 0 or 1")
    size = state.shape[0]
    low = 1 << qubit
    collapsed = np.array(state, dtype=np.complex128, copy=True)
    view = collapsed.reshape(-1, 2, low)
    view[:, 1 - outcome, :] = 0.0
    norm = np.linalg.norm(collapsed)
    if norm == 0.0:
        raise ValueError(
            f"cannot collapse onto outcome {outcome}: probability is zero"
        )
    return collapsed / norm


def expectation_z(state: np.ndarray, qubit: int) -> float:
    """Expectation value of the Pauli-Z operator on *qubit*."""

    p_one = marginal_probability(state, qubit)
    return 1.0 - 2.0 * p_one


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Pure-state fidelity ``|<a|b>|`` (Eq. 9 of the paper)."""

    a = np.asarray(state_a, dtype=np.complex128).ravel()
    b = np.asarray(state_b, dtype=np.complex128).ravel()
    if a.shape != b.shape:
        raise ValueError("states must have the same dimension")
    return float(abs(np.vdot(a, b)))
