"""Dense full-state simulator substrate (the Intel-QS role in the paper)."""

from .dense import DenseSimulator, simulate_statevector
from .measurement import (
    collapse_qubit,
    expectation_z,
    marginal_probability,
    measure_qubit,
    norm_error,
    normalize,
    probabilities,
    sample_counts,
    state_fidelity,
)
from .ops import (
    apply_controlled_single_qubit,
    apply_gate_to_vector,
    apply_single_qubit,
    apply_single_qubit_pairwise,
    control_mask_indices,
)

__all__ = [
    "DenseSimulator",
    "simulate_statevector",
    "probabilities",
    "marginal_probability",
    "sample_counts",
    "measure_qubit",
    "collapse_qubit",
    "expectation_z",
    "state_fidelity",
    "normalize",
    "norm_error",
    "apply_single_qubit",
    "apply_single_qubit_pairwise",
    "apply_controlled_single_qubit",
    "apply_gate_to_vector",
    "control_mask_indices",
]
