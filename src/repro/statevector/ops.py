"""Vectorised state-vector gate kernels.

These kernels implement Eq. 6 / Eq. 7 of the paper: applying a single-qubit
unitary ``U`` to qubit ``k`` multiplies every amplitude pair whose indices
differ only in bit ``k`` by ``U``; a controlled gate does the same but only
for pairs whose control bits are all 1.

The functions operate *in place* on a flat ``complex128`` array whose length
is a power of two.  They are shared by

* the dense reference simulator (:mod:`repro.statevector.dense`), which calls
  them on the full ``2^n`` vector, and
* the compressed simulator (:mod:`repro.core.simulator`), which calls them on
  decompressed 1- or 2-block scratch buffers where the "local qubit" index has
  already been translated to a block-local bit position.

Following the HPC-Python guidance, all pair selection is done with reshapes
and strided views — no Python-level loops over amplitudes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "apply_single_qubit",
    "apply_single_qubit_pairwise",
    "apply_single_qubit_pairwise_masked",
    "apply_single_qubit_pairwise_half",
    "apply_controlled_single_qubit",
    "local_control_mask",
    "control_mask_indices",
    "apply_gate_to_vector",
]


def _validate_vector(state: np.ndarray) -> int:
    """Return ``log2(len(state))`` after validating shape and dtype."""

    if state.ndim != 1:
        raise ValueError("state vector must be one-dimensional")
    size = state.shape[0]
    if size == 0 or size & (size - 1):
        raise ValueError(f"state vector length {size} is not a power of two")
    return size.bit_length() - 1


def apply_single_qubit(state: np.ndarray, matrix: np.ndarray, qubit: int) -> None:
    """Apply a 2x2 *matrix* to bit position *qubit* of *state*, in place.

    The vector is viewed as a ``(high, 2, low)`` tensor where ``low = 2**qubit``;
    axis 1 then enumerates the qubit value, and the update is two fused
    scalar-vector multiply-adds over contiguous slabs.
    """

    num_qubits = _validate_vector(state)
    if not 0 <= qubit < num_qubits:
        raise ValueError(f"qubit {qubit} out of range for {num_qubits}-qubit state")
    low = 1 << qubit
    view = state.reshape(-1, 2, low)
    a = view[:, 0, :]
    b = view[:, 1, :]
    u00, u01 = matrix[0, 0], matrix[0, 1]
    u10, u11 = matrix[1, 0], matrix[1, 1]
    new_a = u00 * a + u01 * b
    new_b = u10 * a + u11 * b
    view[:, 0, :] = new_a
    view[:, 1, :] = new_b


def apply_single_qubit_pairwise(
    vector_x: np.ndarray, vector_y: np.ndarray, matrix: np.ndarray
) -> None:
    """Apply a 2x2 *matrix* across two equal-length vectors, in place.

    ``vector_x`` holds the amplitudes whose target-qubit bit is 0 and
    ``vector_y`` the amplitudes whose bit is 1 (the two decompressed blocks of
    Figure 2 when the target qubit lies above the block boundary).
    """

    if vector_x.shape != vector_y.shape:
        raise ValueError("paired vectors must have identical shapes")
    u00, u01 = matrix[0, 0], matrix[0, 1]
    u10, u11 = matrix[1, 0], matrix[1, 1]
    new_x = u00 * vector_x + u01 * vector_y
    new_y = u10 * vector_x + u11 * vector_y
    vector_x[:] = new_x
    vector_y[:] = new_y


def apply_single_qubit_pairwise_masked(
    vector_x: np.ndarray,
    vector_y: np.ndarray,
    matrix: np.ndarray,
    mask: np.ndarray | None,
) -> None:
    """Pairwise 2x2 update restricted to the amplitudes *mask* selects.

    This is the cross-buffer update of a controlled gate whose controls lie
    in the local index segment: only offsets whose control bits are all 1
    participate.  ``mask=None`` is the uncontrolled case.  Shared by the
    thread executor and the block-task process workers so both tiers apply
    bit-identical arithmetic.
    """

    if mask is None:
        apply_single_qubit_pairwise(vector_x, vector_y, matrix)
        return
    u00, u01 = matrix[0, 0], matrix[0, 1]
    u10, u11 = matrix[1, 0], matrix[1, 1]
    a = vector_x[mask]
    b = vector_y[mask]
    vector_x[mask] = u00 * a + u01 * b
    vector_y[mask] = u10 * a + u11 * b


def apply_single_qubit_pairwise_half(
    vector_low: np.ndarray,
    vector_high: np.ndarray,
    matrix: np.ndarray,
    row: int,
    mask: np.ndarray | None = None,
) -> None:
    """Update only one side of a cross-buffer pair, in place.

    This is the distributed (multi-rank) form of
    :func:`apply_single_qubit_pairwise_masked`: for a gate whose target qubit
    lies in the rank index segment, each rank holds only one half of every
    amplitude pair, receives the peer half over the communicator, and may
    update only the half it owns.  ``row=0`` rewrites ``vector_low`` (the
    target-bit-0 block), ``row=1`` rewrites ``vector_high``; the other buffer
    is read-only peer data.

    Parameters
    ----------
    vector_low, vector_high:
        Equal-length complex128 blocks holding the target-bit-0 / target-bit-1
        amplitudes of the pairs.
    matrix:
        The 2x2 unitary.
    row:
        Which output row to compute (0 or 1) — i.e. which of the two buffers
        this rank owns.
    mask:
        Optional boolean mask restricting the update to offsets whose local
        control bits are all 1 (``None`` = uncontrolled).

    The arithmetic is element-for-element the expression
    :func:`apply_single_qubit_pairwise_masked` evaluates for the same row, so
    a rank-split execution stays bit-identical to a single-process one.
    """

    if vector_low.shape != vector_high.shape:
        raise ValueError("paired vectors must have identical shapes")
    if row not in (0, 1):
        raise ValueError(f"row must be 0 or 1, got {row}")
    u_a, u_b = matrix[row, 0], matrix[row, 1]
    out = vector_low if row == 0 else vector_high
    if mask is None:
        out[:] = u_a * vector_low + u_b * vector_high
        return
    a = vector_low[mask]
    b = vector_high[mask]
    out[mask] = u_a * a + u_b * b


def local_control_mask(
    size: int, local_controls: tuple[int, ...]
) -> np.ndarray | None:
    """Boolean mask over *size* block offsets whose control bits are all 1.

    ``None`` when there are no local controls (the uncontrolled fast path).
    Shared by the simulator's planner and the block-task process workers so
    both derive byte-identical masks from a plan's ``local_controls``.
    """

    if not local_controls:
        return None
    control_bits = 0
    for control in local_controls:
        control_bits |= 1 << control
    offsets = np.arange(size, dtype=np.int64)
    return (offsets & control_bits) == control_bits


def control_mask_indices(
    size: int, controls_mask: int, controls_value: int
) -> np.ndarray:
    """Return indices ``i`` in ``[0, size)`` with ``i & mask == value``.

    Used to restrict updates to amplitudes whose control bits are set
    (Eq. 7).  Vectorised over the index range.
    """

    indices = np.arange(size, dtype=np.int64)
    return indices[(indices & controls_mask) == controls_value]


def apply_controlled_single_qubit(
    state: np.ndarray,
    matrix: np.ndarray,
    qubit: int,
    control_qubits: tuple[int, ...],
) -> None:
    """Apply *matrix* to *qubit* only where every control bit is 1, in place."""

    if not control_qubits:
        apply_single_qubit(state, matrix, qubit)
        return
    num_qubits = _validate_vector(state)
    if not 0 <= qubit < num_qubits:
        raise ValueError(f"qubit {qubit} out of range for {num_qubits}-qubit state")
    for control in control_qubits:
        if not 0 <= control < num_qubits:
            raise ValueError(
                f"control qubit {control} out of range for {num_qubits}-qubit state"
            )
        if control == qubit:
            raise ValueError("control qubit equals target qubit")

    size = state.shape[0]
    target_bit = 1 << qubit
    control_mask = 0
    for control in control_qubits:
        control_mask |= 1 << control

    # Indices whose target bit is 0 and all control bits are 1.
    indices = np.arange(size, dtype=np.int64)
    selector = ((indices & control_mask) == control_mask) & ((indices & target_bit) == 0)
    idx0 = indices[selector]
    idx1 = idx0 | target_bit

    a = state[idx0]
    b = state[idx1]
    u00, u01 = matrix[0, 0], matrix[0, 1]
    u10, u11 = matrix[1, 0], matrix[1, 1]
    state[idx0] = u00 * a + u01 * b
    state[idx1] = u10 * a + u11 * b


def apply_gate_to_vector(state: np.ndarray, gate) -> None:
    """Apply a :class:`repro.circuits.Gate` to a full state vector, in place."""

    if gate.controls:
        apply_controlled_single_qubit(state, gate.matrix, gate.target, gate.controls)
    else:
        apply_single_qubit(state, gate.matrix, gate.target)
