"""Lossless compression backends.

The paper uses Zstandard (Zstd) both as the stand-alone lossless stage at the
start of every simulation (Section 3.7) and as the final entropy/dictionary
stage of every lossy pipeline (SZ, Solutions C and D).

Zstandard is not available in this offline environment, so this module wraps
the Python standard library codecs — ``zlib`` (default), ``lzma`` and
``bz2`` — behind the same :class:`Compressor` interface.  zlib is, like Zstd,
an LZ77-family dictionary coder followed by entropy coding, so the qualitative
behaviour the paper relies on (excellent ratios on the sparse early-simulation
states, poor ratios on dense random mantissas) is preserved; only the absolute
throughput and a constant ratio factor differ.  This substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

import numpy as np

from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)

__all__ = ["LosslessCompressor", "lossless_compress_bytes", "lossless_decompress_bytes"]


_TAG = 0x01

_BACKENDS = {
    "zlib": (lambda raw, level: zlib.compress(raw, level), zlib.decompress),
    "lzma": (
        lambda raw, level: lzma.compress(raw, preset=min(max(level, 0), 9)),
        lzma.decompress,
    ),
    "bz2": (lambda raw, level: bz2.compress(raw, min(max(level, 1), 9)), bz2.decompress),
}

_BACKEND_IDS = {"zlib": 0, "lzma": 1, "bz2": 2}
_BACKEND_NAMES = {v: k for k, v in _BACKEND_IDS.items()}


def lossless_compress_bytes(raw: bytes, backend: str = "zlib", level: int = 6) -> bytes:
    """Compress raw bytes with the selected stdlib backend."""

    try:
        compress, _ = _BACKENDS[backend]
    except KeyError as exc:
        raise CompressorError(f"unknown lossless backend {backend!r}") from exc
    return compress(raw, level)


def lossless_decompress_bytes(blob: bytes, backend: str = "zlib") -> bytes:
    """Inverse of :func:`lossless_compress_bytes`."""

    try:
        _, decompress = _BACKENDS[backend]
    except KeyError as exc:
        raise CompressorError(f"unknown lossless backend {backend!r}") from exc
    return decompress(blob)


class LosslessCompressor(Compressor):
    """Zstd-role lossless compressor over float64 arrays.

    Parameters
    ----------
    backend:
        ``"zlib"`` (default), ``"lzma"`` or ``"bz2"``.
    level:
        Backend compression level.  The default (6 for zlib) mirrors Zstd's
        default speed/ratio trade-off.
    """

    name = "lossless"

    def __init__(
        self, backend: str = "zlib", level: int = 6, engine: str | None = None
    ) -> None:
        super().__init__(ErrorBoundMode.LOSSLESS, 0.0)
        if backend not in _BACKENDS:
            raise CompressorError(f"unknown lossless backend {backend!r}")
        self._backend = backend
        self._level = int(level)
        # No engine-backed hot loop (the stdlib codecs do all the work), but
        # the parameter is accepted, validated and pickled so the registry's
        # uniform `get_compressor(name, engine=...)` plumbing works here too.
        self._set_engine(engine)

    @property
    def backend(self) -> str:
        """Name of the byte-level backend in use (zlib/bz2/lzma)."""

        return self._backend

    def __getstate__(self) -> dict:
        # Constructor arguments only: pickling a codec must stay cheap and
        # stable so process-pool workers can receive instances per task
        # (see repro.core.procpool); derived state is rebuilt on unpickle.
        return {
            "backend": self._backend,
            "level": self._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def compress(self, data: np.ndarray) -> bytes:
        """Byte-exact compression of the raw float64 buffer."""

        array = self._as_float64(data)
        payload = lossless_compress_bytes(array.tobytes(), self._backend, self._level)
        extra = bytes([_BACKEND_IDS[self._backend]])
        return pack_header(_TAG, array.size, extra) + payload

    def decompress(self, blob: bytes) -> np.ndarray:
        """Bit-exact reconstruction of the original float64 array."""

        tag, count, extra, offset = unpack_header(blob)
        if tag != _TAG:
            raise CompressorError(f"blob tag {tag} is not a lossless blob")
        backend = _BACKEND_NAMES[extra[0]]
        raw = lossless_decompress_bytes(blob[offset:], backend)
        array = np.frombuffer(raw, dtype=np.float64)
        if array.size != count:
            raise CompressorError(
                f"lossless blob decoded {array.size} values, expected {count}"
            )
        return array.copy()


register_compressor("lossless", LosslessCompressor)
register_compressor("zstd", LosslessCompressor)
