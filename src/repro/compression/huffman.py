"""Canonical Huffman codec over integer symbol streams.

SZ's third pipeline stage (Section 2.3 / 4.2, Solution A and B) entropy-codes
the quantization codes with Huffman coding before the final lossless pass.
This module provides a small, self-contained canonical-Huffman implementation
used by :mod:`repro.compression.sz` and :mod:`repro.compression.sz_complex`.

Both directions are fully vectorised; no Python loop runs over symbols or
bits of a stream.

* **Encoding** maps symbols to canonical code words through a table and packs
  them with :func:`repro.compression.bitpack.pack_bitfields` (one
  ``np.repeat`` fan-out plus ``np.packbits``).
* **Decoding** is table-driven: a lookup table over
  :data:`DECODE_WINDOW_BITS`-bit windows maps every window to the code it
  starts with (symbol index + code length), with a slow-path escape for codes
  longer than the window resolved by binary search over the left-justified
  canonical code values.  The serial dependency of Huffman decoding — a
  code's start position depends on every previous code length — is broken in
  three vectorised stages:

  1. code *lengths* are resolved at every bit offset of the stream at once
     (most offsets are garbage that no real code chain ever visits; that is
     fine, they are never read),
  2. ``log2(chunk)`` rounds of jump-table composition turn "advance one
     code" into "advance one chunk of codes", giving the bit offset of every
     chunk's first code via a short anchor ladder, and
  3. all chunks are decoded in lock-step (a wavefront of one gather per code
     *slot*, not per code), so the Python-level iteration count is the fixed
     chunk width, independent of the stream length.

The wire format is unchanged from the seed implementation: little-endian
``count`` / code book (symbols + lengths) / ``total_bits`` / MSB-first packed
code stream.  Blobs produced by either implementation decode identically
with the other.
"""

from __future__ import annotations

import heapq
import struct
import threading
from dataclasses import dataclass

import numpy as np

from .bitpack import pack_bitfields
from .interface import CompressorError

__all__ = ["HuffmanCodec", "encode", "decode", "DECODE_WINDOW_BITS"]

#: Width (bits) of the decoder's window lookup table.  Codes no longer than
#: this resolve with one table gather; rarer, longer codes take the
#: searchsorted slow path.  2^W table entries are built per decode call; 16
#: is the widest window a uint16 table index supports and keeps the
#: slow-path fraction negligible even for the wide-alphabet books SZ's
#: 65536-bin quantization produces (the table is clamped to the book's
#: maximum code length, so small books build small tables).
DECODE_WINDOW_BITS = 16

#: Symbols decoded per chunk by the wavefront (must be a power of two).  The
#: anchor ladder runs ``ceil(count / chunk)`` Python iterations and the
#: wavefront ``chunk`` iterations; jump composition needs ``log2(chunk)``
#: passes over the bit-offset table.  The composition passes stream through
#: memory proportional to the *bit* length of the stream, the ladder costs a
#: couple hundred nanoseconds per chunk — 4 symbols per chunk balances the
#: two on block-sized streams.
_CHUNK_LOG2 = 2


_ARANGE_CACHE = np.zeros(0, dtype=np.int64)


def _cached_arange(size: int) -> np.ndarray:
    """Grow-only cached ``np.arange(size)`` slice.

    Decode is called once per block, and the arange is the same every time —
    caching it saves one full allocation + fill pass per call.  The cache is
    only ever swapped for a larger array (an atomic rebind under the GIL), so
    concurrent decodes on executor threads each see a consistent array.
    """

    global _ARANGE_CACHE
    if _ARANGE_CACHE.size < size:
        _ARANGE_CACHE = np.arange(max(size, 2 * _ARANGE_CACHE.size), dtype=np.int64)
    return _ARANGE_CACHE[:size]


_SCRATCH = threading.local()


def _scratch(name: str, size: int, dtype: np.dtype) -> np.ndarray:
    """Grow-only per-thread scratch buffer (uninitialised).

    The decoder's big flat work arrays are the same shape on every call for a
    given block size; reusing them avoids an allocation plus a page-fault
    pass per call.  Thread-local storage keeps concurrent decodes on
    :class:`~repro.core.executor.TaskExecutor` worker threads independent.
    """

    buffers = getattr(_SCRATCH, "buffers", None)
    if buffers is None:
        buffers = _SCRATCH.buffers = {}
    buf = buffers.get(name)
    if buf is None or buf.size < size or buf.dtype != dtype:
        buf = buffers[name] = np.empty(max(size, 1024), dtype=dtype)
    return buf[:size]


@dataclass
class _CodeBook:
    """Canonical code book: symbols, code lengths and code values."""

    symbols: np.ndarray  # int64 symbols, sorted by (length, symbol)
    lengths: np.ndarray  # uint8 code lengths, same order
    codes: np.ndarray  # uint64 canonical code values, same order


def _build_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Return Huffman code lengths for each symbol given its frequency."""

    n = symbols.size
    if n == 1:
        return np.array([1], dtype=np.uint8)
    # Classic heap-based Huffman; node = (count, tie_breaker, index or tree)
    heap: list[tuple[int, int, object]] = []
    for i in range(n):
        heap.append((int(counts[i]), i, i))
    heapq.heapify(heap)
    tie = n
    parents: dict[int, list[int]] = {}
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        parents[tie] = [n1, n2]  # type: ignore[list-item]
        heapq.heappush(heap, (c1 + c2, tie, tie))
        tie += 1
    # Depth-first traversal to assign lengths.
    lengths = np.zeros(n, dtype=np.uint8)
    _, _, root = heap[0]
    stack: list[tuple[object, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, int) and node < n:
            lengths[node] = max(depth, 1)
        else:
            for child in parents[node]:  # type: ignore[index]
                stack.append((child, depth + 1))
    return lengths


def _canonicalize(symbols: np.ndarray, lengths: np.ndarray) -> _CodeBook:
    """Assign canonical code values given symbols and their code lengths.

    In the canonical ordering (ascending code length, symbol as tie-breaker)
    each code, left-justified to ``max_len`` bits, starts exactly where the
    previous code's ``2^(max_len - length)``-wide span ends — so the code
    values are an exclusive cumulative sum of span widths, computed without
    a per-entry loop.
    """

    order = np.lexsort((symbols, lengths))
    symbols = symbols[order]
    lengths = lengths[order]
    if symbols.size == 0:
        return _CodeBook(
            symbols=symbols, lengths=lengths, codes=np.zeros(0, dtype=np.uint64)
        )
    max_len = int(lengths[-1])
    spans = np.uint64(1) << (max_len - lengths).astype(np.uint64)
    left_justified = np.zeros(symbols.size, dtype=np.uint64)
    np.cumsum(spans[:-1], out=left_justified[1:])
    codes = left_justified >> (max_len - lengths).astype(np.uint64)
    return _CodeBook(symbols=symbols, lengths=lengths, codes=codes)


def _window_table(book: _CodeBook, window_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Lookup table over every *window_bits*-bit window.

    ``table_idx[w]`` is the book index of the code that the window ``w``
    starts with (or ``book.symbols.size`` as an invalid/escape sentinel) and
    ``table_len[w]`` its code length (0 for the sentinel).  Canonical codes
    of length <= W tile the window space contiguously from 0, so the table is
    two ``np.repeat`` fills.
    """

    n = book.symbols.size
    lengths = book.lengths.astype(np.int64)
    short = int(np.searchsorted(lengths, window_bits, side="right"))
    spans = np.int64(1) << (window_bits - lengths[:short])
    covered = int(spans.sum())
    table_idx = np.full(1 << window_bits, n, dtype=np.int32)
    table_len = np.zeros(1 << window_bits, dtype=np.uint8)
    table_idx[:covered] = np.repeat(np.arange(short, dtype=np.int32), spans)
    table_len[:covered] = np.repeat(book.lengths[:short], spans)
    return table_idx, table_len


def _windows_at_every_offset(
    padded: np.ndarray, num_bytes: int, total_bits: int, window_bits: int
) -> np.ndarray:
    """The *window_bits*-bit window starting at every bit offset of a stream.

    Built from a 24-bit sliding read per byte and eight strided shifts (one
    per sub-byte phase — a fixed 8 iterations regardless of stream length).
    """

    b = padded.astype(np.uint32)
    wide = (b[:num_bytes] << 16) | (b[1 : num_bytes + 1] << 8) | b[2 : num_bytes + 2]
    mask = np.uint32((1 << window_bits) - 1)
    windows = _scratch("windows", num_bytes * 8, np.uint16).reshape(num_bytes, 8)
    for phase in range(8):  # eight bit phases within a byte, not stream-sized
        windows[:, phase] = (wide >> np.uint32(24 - window_bits - phase)) & mask
    return windows.reshape(-1)[:total_bits]


def _windows64(padded: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Left-justified 64-bit windows at the given bit *positions*."""

    byte_idx = positions >> 3
    shift = (positions & 7).astype(np.uint64)
    hi = np.zeros(positions.size, dtype=np.uint64)
    for j in range(8):  # eight bytes of a 64-bit window, not stream-sized
        hi = (hi << np.uint64(8)) | padded[byte_idx + j].astype(np.uint64)
    spill = padded[byte_idx + 8].astype(np.uint64)
    return np.where(
        shift == 0, hi, (hi << shift) | (spill >> (np.uint64(8) - shift))
    )


def _resolve_long_codes(
    padded: np.ndarray,
    positions: np.ndarray,
    book: _CodeBook,
    left_justified64: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Slow-path escape: codes longer than the window, via binary search.

    Canonical codes are lexicographically ordered when left-justified, so the
    code starting at a bit position is found by ``searchsorted`` of the
    position's 64-bit window against the left-justified code values.
    Returns ``(book index, code length)`` with the sentinel
    ``(book.symbols.size, 0)`` where no code matches (garbage offsets).
    """

    n = book.symbols.size
    win64 = _windows64(padded, positions)
    idx = np.searchsorted(left_justified64, win64, side="right") - 1
    idx = np.maximum(idx, 0)
    code_len = book.lengths[idx].astype(np.uint64)
    matches = (win64 >> (np.uint64(64) - code_len)) == book.codes[idx]
    return (
        np.where(matches, idx, n).astype(np.int32),
        np.where(matches, code_len, 0).astype(np.uint8),
    )


class HuffmanCodec:
    """Encode/decode int64 symbol arrays with canonical Huffman codes."""

    def __init__(self, window_bits: int = DECODE_WINDOW_BITS) -> None:
        if not 1 <= window_bits <= 16:
            raise CompressorError("window_bits must be in [1, 16]")
        self._window_bits = window_bits

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling); decode
        # tables are always built per call, never held on the instance.
        return {"window_bits": self._window_bits}

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode a 1-D integer array into a self-describing byte string."""

        symbols = np.ascontiguousarray(symbols, dtype=np.int64)
        if symbols.ndim != 1:
            raise CompressorError("Huffman encoder expects a 1-D symbol array")
        header = struct.pack("<Q", symbols.size)
        if symbols.size == 0:
            return header + struct.pack("<I", 0)

        unique, counts = np.unique(symbols, return_counts=True)
        book = _canonicalize(unique, _build_lengths(unique, counts))

        # Dictionary: symbol -> (code, length) position via searchsorted on the
        # symbol-sorted view of the book.
        sym_order = np.argsort(book.symbols)
        sorted_syms = book.symbols[sym_order]
        positions = sym_order[np.searchsorted(sorted_syms, symbols)]
        packed, total_bits = pack_bitfields(
            book.codes[positions], book.lengths[positions].astype(np.int64)
        )

        # Serialise the code book: number of entries, symbols, lengths.
        book_blob = (
            struct.pack("<I", book.symbols.size)
            + book.symbols.astype("<i8").tobytes()
            + book.lengths.astype("<u1").tobytes()
        )
        return (
            header
            + struct.pack("<I", len(book_blob))
            + book_blob
            + struct.pack("<Q", total_bits)
            + packed.tobytes()
        )

    def decode(self, blob: bytes) -> np.ndarray:
        """Inverse of :meth:`encode`."""

        (count,) = struct.unpack_from("<Q", blob, 0)
        offset = 8
        (book_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        book_blob = blob[offset : offset + book_len]
        offset += book_len
        (num_entries,) = struct.unpack_from("<I", book_blob, 0)
        sym_off = 4
        symbols = np.frombuffer(
            book_blob, dtype="<i8", count=num_entries, offset=sym_off
        ).astype(np.int64)
        lengths = np.frombuffer(
            book_blob, dtype="<u1", count=num_entries, offset=sym_off + 8 * num_entries
        ).astype(np.uint8)
        # Validate the (untrusted) code book before building decode tables:
        # lengths outside [1, 64] would drive undefined uint64 shifts, and a
        # Kraft-inequality violation would overflow the window table.  The
        # float Kraft sum is exact far beyond the 2^-16 violation the table
        # could ever be sensitive to.
        if num_entries == 0:
            raise CompressorError("invalid Huffman code book (empty)")
        if int(lengths.min()) < 1 or int(lengths.max()) > 64:
            raise CompressorError("invalid Huffman code book (bad code length)")
        if float((2.0 ** -lengths.astype(np.float64)).sum()) > 1.0 + 1e-9:
            raise CompressorError("invalid Huffman code book (Kraft violation)")
        book = _canonicalize(symbols, lengths)

        (total_bits,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        packed = np.frombuffer(blob, dtype=np.uint8, offset=offset)
        if packed.size * 8 < total_bits or total_bits == 0:
            raise CompressorError("Huffman stream exhausted prematurely")
        return self._decode_stream(packed, int(total_bits), int(count), book)

    def _decode_stream(
        self, packed: np.ndarray, total_bits: int, count: int, book: _CodeBook
    ) -> np.ndarray:
        n = book.symbols.size
        max_len = int(book.lengths[-1])
        window_bits = min(self._window_bits, max_len)
        table_idx, table_len = _window_table(book, window_bits)
        has_long_codes = max_len > window_bits
        left_justified64 = (
            book.codes << (np.uint64(64) - book.lengths.astype(np.uint64))
            if has_long_codes
            else None
        )

        num_bytes = (total_bits + 7) // 8
        padded = np.concatenate(
            [packed[:num_bytes], np.zeros(9, dtype=np.uint8)]
        )
        windows = _windows_at_every_offset(padded, num_bytes, total_bits, window_bits)

        # Code length at every bit offset; garbage offsets (no real code
        # starts there) get whatever code their bits happen to spell, which
        # is harmless — the composed jumps below are only ever *read* along
        # the one chain of true code starts.
        bit_len = table_len[windows]
        if has_long_codes:
            escapes = np.flatnonzero(bit_len == 0)
            if escapes.size:
                _, esc_len = _resolve_long_codes(
                    padded, escapes, book, left_justified64
                )
                bit_len[escapes] = esc_len

        chunk_log2 = min(_CHUNK_LOG2, max(count - 1, 1).bit_length())
        chunk = 1 << chunk_log2
        num_chunks = -(-count // chunk)

        # Stage 2: jump composition.  jump[p] = bits advanced by decoding
        # 2^r codes starting at offset p; doubled log2(chunk) times.  The
        # reads are near-sequential (each offset looks at most
        # chunk * max_len bits ahead), so these passes stream through memory:
        # each round is one add into an int64 index buffer, one gather, one
        # in-place add.  The pad region past the stream (ones, then a zero
        # tail one maximum-jump wide) absorbs every overshooting read, so no
        # index ever needs clamping: composed jumps are bounded by
        # chunk * max_len and pad jumps collapse onto the zero tail.
        pad_bits = chunk * max(64, max_len) + 64
        # Composed jumps are bounded by chunk * max_len, so they almost
        # always fit uint8 — a quarter of the int32 traffic per pass.
        jump_dtype = np.uint8 if chunk * max_len <= 255 else np.int32
        jump = _scratch("jump", total_bits + pad_bits, jump_dtype)
        np.maximum(bit_len, 1, out=jump[:total_bits], casting="unsafe")
        jump[total_bits:-64] = 1
        jump[-64:] = 0
        anchors = np.zeros(num_chunks, dtype=np.int64)
        if num_chunks > 1:
            offsets = _cached_arange(jump.size)
            target = _scratch("target", jump.size, np.int64)
            for _ in range(chunk_log2):  # log2(chunk) composition rounds
                np.add(offsets, jump, out=target)
                jump += jump[target]
            # Anchor ladder: one Python step per *chunk* of decoded symbols.
            jump_at = jump.item
            position = 0
            for k in range(1, num_chunks):
                position += jump_at(position)
                anchors[k] = position
            if anchors[-1] >= total_bits:
                raise CompressorError("Huffman stream exhausted prematurely")

        # Stage 3: wavefront — decode every chunk in lock-step; the loop runs
        # `chunk` times however long the stream is.
        idx_rows = np.empty((chunk, num_chunks), dtype=np.int32)
        cursor = anchors
        limit = total_bits - 1
        last_lane = (count - 1) // chunk
        last_slot = (count - 1) % chunk
        last_pos = 0
        for t in range(chunk):  # fixed chunk width, independent of count
            safe = np.minimum(cursor, limit)
            w = windows[safe]
            ids = table_idx[w]
            lens = table_len[w]
            if has_long_codes:
                miss = np.flatnonzero(ids == n)
                if miss.size:
                    esc_idx, esc_len = _resolve_long_codes(
                        padded, safe[miss], book, left_justified64
                    )
                    ids[miss] = esc_idx
                    lens[miss] = esc_len
            idx_rows[t] = ids
            if t == last_slot:
                last_pos = int(cursor[last_lane])
            cursor = cursor + lens
        flat_idx = idx_rows.T.reshape(-1)[:count]

        last_idx = int(flat_idx[-1])
        if last_idx == n or last_pos + int(book.lengths[last_idx]) > total_bits:
            raise CompressorError("Huffman stream exhausted prematurely")
        if (flat_idx == n).any():
            raise CompressorError("invalid Huffman stream (no code matches)")
        return book.symbols[flat_idx]


_DEFAULT_CODEC = HuffmanCodec()


def encode(symbols: np.ndarray) -> bytes:
    """Module-level convenience wrapper around :class:`HuffmanCodec.encode`."""

    return _DEFAULT_CODEC.encode(symbols)


def decode(blob: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`HuffmanCodec.decode`."""

    return _DEFAULT_CODEC.decode(blob)
