"""Canonical Huffman codec over integer symbol streams.

SZ's third pipeline stage (Section 2.3 / 4.2, Solution A and B) entropy-codes
the quantization codes with Huffman coding before the final lossless pass.
This module provides a small, self-contained canonical-Huffman implementation
used by :mod:`repro.compression.sz` and :mod:`repro.compression.sz_complex`.

Encoding is vectorised with NumPy (symbols are mapped to code words through a
table, code words are concatenated as a bit array and packed with
``np.packbits``).  Decoding walks the canonical code tables bit-group by
bit-group; it is O(output bits) but operates on Python integers only at the
symbol level, which is fast enough for the block sizes the simulator uses.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter
from dataclasses import dataclass

import numpy as np

from .interface import CompressorError

__all__ = ["HuffmanCodec", "encode", "decode"]


@dataclass
class _CodeBook:
    """Canonical code book: symbols, code lengths and code values."""

    symbols: np.ndarray  # int64 symbols, sorted by (length, symbol)
    lengths: np.ndarray  # uint8 code lengths, same order
    codes: np.ndarray  # uint64 canonical code values, same order


def _build_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Return Huffman code lengths for each symbol given its frequency."""

    n = symbols.size
    if n == 1:
        return np.array([1], dtype=np.uint8)
    # Classic heap-based Huffman; node = (count, tie_breaker, index or tree)
    heap: list[tuple[int, int, object]] = []
    for i in range(n):
        heap.append((int(counts[i]), i, i))
    heapq.heapify(heap)
    tie = n
    parents: dict[int, list[int]] = {}
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        parents[tie] = [n1, n2]  # type: ignore[list-item]
        heapq.heappush(heap, (c1 + c2, tie, tie))
        tie += 1
    # Depth-first traversal to assign lengths.
    lengths = np.zeros(n, dtype=np.uint8)
    _, _, root = heap[0]
    stack: list[tuple[object, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, int) and node < n:
            lengths[node] = max(depth, 1)
        else:
            for child in parents[node]:  # type: ignore[index]
                stack.append((child, depth + 1))
    return lengths


def _canonicalize(symbols: np.ndarray, lengths: np.ndarray) -> _CodeBook:
    """Assign canonical code values given symbols and their code lengths."""

    order = np.lexsort((symbols, lengths))
    symbols = symbols[order]
    lengths = lengths[order]
    codes = np.zeros(symbols.size, dtype=np.uint64)
    code = 0
    prev_len = int(lengths[0]) if lengths.size else 0
    for i in range(symbols.size):
        length = int(lengths[i])
        code <<= length - prev_len
        codes[i] = code
        code += 1
        prev_len = length
    return _CodeBook(symbols=symbols, lengths=lengths, codes=codes)


class HuffmanCodec:
    """Encode/decode int64 symbol arrays with canonical Huffman codes."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode a 1-D integer array into a self-describing byte string."""

        symbols = np.ascontiguousarray(symbols, dtype=np.int64)
        if symbols.ndim != 1:
            raise CompressorError("Huffman encoder expects a 1-D symbol array")
        header = struct.pack("<Q", symbols.size)
        if symbols.size == 0:
            return header + struct.pack("<I", 0)

        unique, counts = np.unique(symbols, return_counts=True)
        book = _canonicalize(unique, _build_lengths(unique, counts))

        # Dictionary: symbol -> (code, length) position via searchsorted on the
        # symbol-sorted view of the book.
        sym_order = np.argsort(book.symbols)
        sorted_syms = book.symbols[sym_order]
        positions = sym_order[np.searchsorted(sorted_syms, symbols)]
        code_values = book.codes[positions]
        code_lengths = book.lengths[positions].astype(np.int64)

        total_bits = int(code_lengths.sum())
        # Expand every code word into a flat bit array.
        bit_array = np.zeros(total_bits, dtype=np.uint8)
        ends = np.cumsum(code_lengths)
        starts = ends - code_lengths
        max_len = int(book.lengths.max())
        # For each bit position inside a code word (vectorised over words).
        for bit in range(max_len):
            mask = code_lengths > bit
            if not mask.any():
                continue
            # bit index 0 is the most significant bit of the code word
            shifts = (code_lengths[mask] - 1 - bit).astype(np.uint64)
            bits = (code_values[mask] >> shifts) & np.uint64(1)
            bit_array[starts[mask] + bit] = bits.astype(np.uint8)

        packed = np.packbits(bit_array)

        # Serialise the code book: number of entries, symbols, lengths.
        book_blob = (
            struct.pack("<I", book.symbols.size)
            + book.symbols.astype("<i8").tobytes()
            + book.lengths.astype("<u1").tobytes()
        )
        return (
            header
            + struct.pack("<I", len(book_blob))
            + book_blob
            + struct.pack("<Q", total_bits)
            + packed.tobytes()
        )

    def decode(self, blob: bytes) -> np.ndarray:
        """Inverse of :meth:`encode`."""

        (count,) = struct.unpack_from("<Q", blob, 0)
        offset = 8
        (book_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        book_blob = blob[offset : offset + book_len]
        offset += book_len
        (num_entries,) = struct.unpack_from("<I", book_blob, 0)
        sym_off = 4
        symbols = np.frombuffer(
            book_blob, dtype="<i8", count=num_entries, offset=sym_off
        ).astype(np.int64)
        lengths = np.frombuffer(
            book_blob, dtype="<u1", count=num_entries, offset=sym_off + 8 * num_entries
        ).astype(np.uint8)
        book = _canonicalize(symbols, lengths)

        (total_bits,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        packed = np.frombuffer(blob, dtype=np.uint8, offset=offset)
        bits = np.unpackbits(packed)[:total_bits]

        # Canonical decoding tables: for each code length, the first code value
        # and the index of its first symbol.
        max_len = int(book.lengths.max())
        first_code: dict[int, int] = {}
        first_index: dict[int, int] = {}
        lengths_list = book.lengths.tolist()
        for i, length in enumerate(lengths_list):
            if length not in first_code:
                first_code[length] = int(book.codes[i])
                first_index[length] = i
        counts_per_len = Counter(lengths_list)

        out = np.empty(count, dtype=np.int64)
        book_symbols = book.symbols
        bit_list = bits.tolist()
        pos = 0
        n_bits = len(bit_list)
        for i in range(count):
            code = 0
            length = 0
            while True:
                if pos >= n_bits:
                    raise CompressorError("Huffman stream exhausted prematurely")
                code = (code << 1) | bit_list[pos]
                pos += 1
                length += 1
                if length > max_len:
                    raise CompressorError("invalid Huffman stream (length overflow)")
                if length in first_code:
                    delta = code - first_code[length]
                    if 0 <= delta < counts_per_len[length]:
                        out[i] = book_symbols[first_index[length] + delta]
                        break
        return out


_DEFAULT_CODEC = HuffmanCodec()


def encode(symbols: np.ndarray) -> bytes:
    """Module-level convenience wrapper around :class:`HuffmanCodec.encode`."""

    return _DEFAULT_CODEC.encode(symbols)


def decode(blob: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`HuffmanCodec.decode`."""

    return _DEFAULT_CODEC.decode(blob)
