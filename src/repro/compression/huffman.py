"""Canonical Huffman codec over integer symbol streams.

SZ's third pipeline stage (Section 2.3 / 4.2, Solution A and B) entropy-codes
the quantization codes with Huffman coding before the final lossless pass.
This module provides a small, self-contained canonical-Huffman implementation
used by :mod:`repro.compression.sz` and :mod:`repro.compression.sz_complex`.

The codec owns the *format*: code-book construction, canonicalisation, wire
(de)serialisation and code-book validation.  The hot loops — packing the
variable-width code words on encode and walking the bit stream on decode —
are delegated to a pluggable kernel engine
(:mod:`repro.compression.engines`): the default ``"numpy"`` engine runs the
table-driven vectorised decoder (window lookup table + jump composition +
anchor-ladder wavefront), the optional ``"numba"`` engine runs the
naturally-sequential loop as JIT-compiled machine code.  Both produce
bit-identical streams; select one with ``HuffmanCodec(engine=...)``.

The wire format is unchanged from the seed implementation: little-endian
``count`` / code book (symbols + lengths) / ``total_bits`` / MSB-first packed
code stream.  Blobs produced by any engine decode identically with every
other.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from .engines import CodecEngine, engine_name, resolve_engine
from .interface import CompressorError

__all__ = ["HuffmanCodec", "encode", "decode", "DECODE_WINDOW_BITS"]

#: Width (bits) of the numpy engine's window lookup table.  Codes no longer
#: than this resolve with one table gather; rarer, longer codes take the
#: searchsorted slow path.  2^W table entries are built per decode call; 16
#: is the widest window a uint16 table index supports and keeps the
#: slow-path fraction negligible even for the wide-alphabet books SZ's
#: 65536-bin quantization produces (the table is clamped to the book's
#: maximum code length, so small books build small tables).
DECODE_WINDOW_BITS = 16


@dataclass
class _CodeBook:
    """Canonical code book: symbols, code lengths and code values."""

    symbols: np.ndarray  # int64 symbols, sorted by (length, symbol)
    lengths: np.ndarray  # uint8 code lengths, same order
    codes: np.ndarray  # uint64 canonical code values, same order


def _build_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Return Huffman code lengths for each symbol given its frequency."""

    n = symbols.size
    if n == 1:
        return np.array([1], dtype=np.uint8)
    # Classic heap-based Huffman; node = (count, tie_breaker, index or tree)
    heap: list[tuple[int, int, object]] = []
    for i in range(n):
        heap.append((int(counts[i]), i, i))
    heapq.heapify(heap)
    tie = n
    parents: dict[int, list[int]] = {}
    while len(heap) > 1:
        c1, _, n1 = heapq.heappop(heap)
        c2, _, n2 = heapq.heappop(heap)
        parents[tie] = [n1, n2]  # type: ignore[list-item]
        heapq.heappush(heap, (c1 + c2, tie, tie))
        tie += 1
    # Depth-first traversal to assign lengths.
    lengths = np.zeros(n, dtype=np.uint8)
    _, _, root = heap[0]
    stack: list[tuple[object, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, int) and node < n:
            lengths[node] = max(depth, 1)
        else:
            for child in parents[node]:  # type: ignore[index]
                stack.append((child, depth + 1))
    return lengths


def _canonicalize(symbols: np.ndarray, lengths: np.ndarray) -> _CodeBook:
    """Assign canonical code values given symbols and their code lengths.

    In the canonical ordering (ascending code length, symbol as tie-breaker)
    each code, left-justified to ``max_len`` bits, starts exactly where the
    previous code's ``2^(max_len - length)``-wide span ends — so the code
    values are an exclusive cumulative sum of span widths, computed without
    a per-entry loop.
    """

    order = np.lexsort((symbols, lengths))
    symbols = symbols[order]
    lengths = lengths[order]
    if symbols.size == 0:
        return _CodeBook(
            symbols=symbols, lengths=lengths, codes=np.zeros(0, dtype=np.uint64)
        )
    max_len = int(lengths[-1])
    spans = np.uint64(1) << (max_len - lengths).astype(np.uint64)
    left_justified = np.zeros(symbols.size, dtype=np.uint64)
    np.cumsum(spans[:-1], out=left_justified[1:])
    codes = left_justified >> (max_len - lengths).astype(np.uint64)
    return _CodeBook(symbols=symbols, lengths=lengths, codes=codes)


class HuffmanCodec:
    """Encode/decode int64 symbol arrays with canonical Huffman codes.

    Parameters
    ----------
    window_bits:
        Width of the numpy engine's decode lookup table (ignored by other
        engines; the decoded stream never depends on it).
    engine:
        Kernel engine for the hot loops — an engine name from
        :data:`repro.compression.engines.KNOWN_ENGINES`, an already-resolved
        :class:`~repro.compression.engines.CodecEngine`, or ``None`` for the
        default.
    """

    def __init__(
        self,
        window_bits: int = DECODE_WINDOW_BITS,
        engine: str | CodecEngine | None = None,
    ) -> None:
        if not 1 <= window_bits <= 16:
            raise CompressorError("window_bits must be in [1, 16]")
        self._window_bits = window_bits
        self._engine_name = engine_name(engine)
        self._engine_impl = resolve_engine(engine)

    @property
    def engine(self) -> str:
        """The *requested* engine name (``"numpy"`` when none was given).

        Deliberately the requested name, not the resolved one: a codec pickled
        with ``engine="numba"`` on a host without numba re-resolves — and gets
        the real numba engine — when unpickled on a worker that has it.
        """

        return self._engine_name

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling); decode
        # tables are always built per call, never held on the instance.
        return {"window_bits": self._window_bits, "engine": self._engine_name}

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode a 1-D integer array into a self-describing byte string."""

        symbols = np.ascontiguousarray(symbols, dtype=np.int64)
        if symbols.ndim != 1:
            raise CompressorError("Huffman encoder expects a 1-D symbol array")
        header = struct.pack("<Q", symbols.size)
        if symbols.size == 0:
            return header + struct.pack("<I", 0)

        unique, counts = np.unique(symbols, return_counts=True)
        book = _canonicalize(unique, _build_lengths(unique, counts))

        # Dictionary: symbol -> (code, length) position via searchsorted on the
        # symbol-sorted view of the book.
        sym_order = np.argsort(book.symbols)
        sorted_syms = book.symbols[sym_order]
        positions = sym_order[np.searchsorted(sorted_syms, symbols)]
        packed, total_bits = self._engine_impl.pack_bitfields(
            book.codes[positions], book.lengths[positions].astype(np.int64)
        )

        # Serialise the code book: number of entries, symbols, lengths.
        book_blob = (
            struct.pack("<I", book.symbols.size)
            + book.symbols.astype("<i8").tobytes()
            + book.lengths.astype("<u1").tobytes()
        )
        return (
            header
            + struct.pack("<I", len(book_blob))
            + book_blob
            + struct.pack("<Q", total_bits)
            + packed.tobytes()
        )

    def decode(self, blob: bytes) -> np.ndarray:
        """Inverse of :meth:`encode`."""

        (count,) = struct.unpack_from("<Q", blob, 0)
        offset = 8
        (book_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        book_blob = blob[offset : offset + book_len]
        offset += book_len
        (num_entries,) = struct.unpack_from("<I", book_blob, 0)
        sym_off = 4
        symbols = np.frombuffer(
            book_blob, dtype="<i8", count=num_entries, offset=sym_off
        ).astype(np.int64)
        lengths = np.frombuffer(
            book_blob, dtype="<u1", count=num_entries, offset=sym_off + 8 * num_entries
        ).astype(np.uint8)
        # Validate the (untrusted) code book before building decode tables:
        # lengths outside [1, 64] would drive undefined uint64 shifts, and a
        # Kraft-inequality violation would overflow the window table.  The
        # float Kraft sum is exact far beyond the 2^-16 violation the table
        # could ever be sensitive to.
        if num_entries == 0:
            raise CompressorError("invalid Huffman code book (empty)")
        if int(lengths.min()) < 1 or int(lengths.max()) > 64:
            raise CompressorError("invalid Huffman code book (bad code length)")
        if float((2.0 ** -lengths.astype(np.float64)).sum()) > 1.0 + 1e-9:
            raise CompressorError("invalid Huffman code book (Kraft violation)")
        book = _canonicalize(symbols, lengths)

        (total_bits,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        packed = np.frombuffer(blob, dtype=np.uint8, offset=offset)
        if packed.size * 8 < total_bits or total_bits == 0:
            raise CompressorError("Huffman stream exhausted prematurely")
        return self._decode_stream(packed, int(total_bits), int(count), book)

    def _decode_stream(
        self, packed: np.ndarray, total_bits: int, count: int, book: _CodeBook
    ) -> np.ndarray:
        flat_idx = self._engine_impl.huffman_decode_indices(
            packed, total_bits, count, book.lengths, book.codes, self._window_bits
        )
        return book.symbols[flat_idx]


_DEFAULT_CODEC = HuffmanCodec()


def encode(symbols: np.ndarray) -> bytes:
    """Module-level convenience wrapper around :class:`HuffmanCodec.encode`."""

    return _DEFAULT_CODEC.encode(symbols)


def decode(blob: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`HuffmanCodec.decode`."""

    return _DEFAULT_CODEC.decode(blob)
