"""FPZIP-style precision-controlled predictive compressor (baseline).

FPZIP is the second existing lossy baseline the paper evaluates (Figure 8).
It does not take an error bound directly; instead a *precision* number
(4..64) selects how many most-significant bits of every double survive, and
the paper maps the precisions 16, 18, 22, 24 and 28 to the pointwise relative
error bounds 1e-1 .. 1e-5 "approximately".

This implementation keeps the two defining traits:

* precision-based truncation of each value to its leading bits, and
* predictive coding (previous-value prediction, residual encoded compactly)
  followed by an entropy/dictionary stage (zlib standing in for FPZIP's range
  coder).

The true guarantee of keeping ``p`` leading bits of a double is a pointwise
relative error of at most ``2**-(p - 12)`` (12 sign+exponent bits), which is
what :attr:`FPZIPLikeCompressor.bound` reports; the paper-style approximate
mapping is available through :meth:`FPZIPLikeCompressor.from_relative_bound`.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from . import bitplane
from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)
from .lossless import lossless_compress_bytes, lossless_decompress_bytes

__all__ = ["FPZIPLikeCompressor", "PAPER_PRECISION_MAP"]

_TAG = 0x0A

#: The precision numbers the paper pairs with each relative error level.
PAPER_PRECISION_MAP: dict[float, int] = {
    1e-1: 16,
    1e-2: 18,
    1e-3: 22,
    1e-4: 24,
    1e-5: 28,
}


def _precision_to_bound(precision: int) -> float:
    """True pointwise relative bound guaranteed by keeping *precision* bits."""

    mantissa_bits = max(0, precision - bitplane.DOUBLE_SIGN_EXP_BITS)
    if mantissa_bits >= 52:
        return 0.0
    return 2.0 ** (-mantissa_bits) if mantissa_bits else 1.0


class FPZIPLikeCompressor(Compressor):
    """Precision-based predictive compressor standing in for FPZIP."""

    name = "fpzip"

    def __init__(
        self,
        precision: int = 22,
        backend: str = "zlib",
        level: int = 6,
        engine: str | None = None,
    ) -> None:
        if not 4 <= precision <= 64:
            raise CompressorError("FPZIP precision must be in [4, 64]")
        bound = _precision_to_bound(precision)
        mode = ErrorBoundMode.LOSSLESS if precision >= 64 else ErrorBoundMode.RELATIVE
        super().__init__(mode, bound if bound > 0 else 1.0)
        if mode is ErrorBoundMode.LOSSLESS:
            self._bound = 0.0
        self._precision = int(precision)
        self._backend = backend
        self._level = int(level)
        # No engine-backed hot loop (byte-matrix slicing + stdlib codec), but
        # the parameter is accepted, validated and pickled so the registry's
        # uniform `get_compressor(name, engine=...)` plumbing works here too.
        self._set_engine(engine)

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling); mode and
        # bound are derived from the precision on unpickle.
        return {
            "precision": self._precision,
            "backend": self._backend,
            "level": self._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    @classmethod
    def from_relative_bound(cls, bound: float, **kwargs) -> "FPZIPLikeCompressor":
        """Build the compressor from a paper-style relative error level.

        Uses the paper's precision table for the five standard levels and the
        exact formula (12 sign/exponent bits plus enough mantissa bits) for
        anything else.
        """

        if bound in PAPER_PRECISION_MAP:
            return cls(precision=PAPER_PRECISION_MAP[bound], **kwargs)
        if bound <= 0:
            raise CompressorError("relative error bound must be positive")
        mantissa_bits = max(0, math.ceil(-math.log2(bound)))
        return cls(precision=bitplane.DOUBLE_SIGN_EXP_BITS + mantissa_bits, **kwargs)

    @property
    def precision(self) -> int:
        """Mantissa bits kept per double (the configured precision)."""

        return self._precision

    def compress(self, data: np.ndarray) -> bytes:
        """Truncate mantissas, XOR-delta the words, entropy-pack the planes."""

        array = self._as_float64(data)
        truncated = bitplane.truncate_bitplanes(array, self._precision)
        words = truncated.view(np.uint64)
        residuals = bitplane.xor_delta_encode(words)
        keep_bytes = max(1, min(8, (self._precision + 7) // 8))
        big_endian = residuals[:, None].view(np.uint8).reshape(residuals.size, 8)[:, ::-1]
        payload = lossless_compress_bytes(
            np.ascontiguousarray(big_endian[:, :keep_bytes]).tobytes(),
            self._backend,
            self._level,
        )
        extra = struct.pack("<BB", self._precision, keep_bytes)
        return pack_header(_TAG, array.size, extra) + payload

    def decompress(self, blob: bytes) -> np.ndarray:
        """Invert :meth:`compress`; exact for the kept bit-planes."""

        tag, count, extra, offset = unpack_header(blob)
        if tag != _TAG:
            raise CompressorError(f"blob tag {tag} is not an FPZIP-like blob")
        precision, keep_bytes = struct.unpack("<BB", extra)
        raw = lossless_decompress_bytes(blob[offset:], self._backend)
        kept = np.frombuffer(raw, dtype=np.uint8).reshape(count, keep_bytes)
        full = np.zeros((count, 8), dtype=np.uint8)
        full[:, :keep_bytes] = kept
        residuals = full[:, ::-1].copy().view(np.uint64).reshape(count)
        words = bitplane.xor_delta_decode(residuals)
        return words.view(np.float64).copy()


register_compressor("fpzip", FPZIPLikeCompressor)
