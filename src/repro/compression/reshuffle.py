"""Solution D: real/imaginary reshuffle + Solution C.

Quantum state amplitudes are stored as interleaved real and imaginary doubles
(the complex128 memory layout).  Solution D (Section 4.2) first de-interleaves
the stream into all real parts followed by all imaginary parts, then applies
the Solution C pipeline.  The paper finds it compresses about the same as
Solution C (the value ranges of real and imaginary parts overlap, so LZ77
pattern matching barely improves) while being slightly slower because of the
extra shuffle — our benchmarks reproduce exactly that comparison
(Figures 10 and 11).
"""

from __future__ import annotations

import struct

import numpy as np

from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)
from .xor_bitplane import XorBitplaneCompressor

__all__ = ["ReshuffleCompressor"]

_TAG = 0x04


def _deinterleave(data: np.ndarray) -> np.ndarray:
    """Reorder ``[r0, i0, r1, i1, ...]`` into ``[r0, r1, ..., i0, i1, ...]``.

    Odd-length arrays (not produced by complex blocks, but allowed by the
    interface) keep their trailing element at the end of the first half.
    """

    half = (data.size + 1) // 2
    out = np.empty_like(data)
    out[:half] = data[0::2]
    out[half:] = data[1::2]
    return out


def _interleave(data: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_deinterleave`."""

    half = (data.size + 1) // 2
    out = np.empty_like(data)
    out[0::2] = data[:half]
    out[1::2] = data[half:]
    return out


class ReshuffleCompressor(Compressor):
    """Solution D: de-interleave real/imaginary parts, then Solution C."""

    name = "reshuffle"

    def __init__(
        self,
        bound: float = 1e-3,
        backend: str = "zlib",
        level: int = 6,
        engine: str | None = None,
    ) -> None:
        super().__init__(ErrorBoundMode.RELATIVE, bound)
        self._set_engine(engine)
        self._inner = XorBitplaneCompressor(
            bound=bound, backend=backend, level=level, engine=self._engine_impl
        )

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling); the
        # inner Solution C instance is rebuilt on unpickle.
        return {
            "bound": self.bound,
            "backend": self._inner._backend,
            "level": self._inner._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def compress(self, data: np.ndarray) -> bytes:
        """De-interleave (real, imag) pairs, then run the inner SZ codec."""

        array = self._as_float64(data)
        shuffled = _deinterleave(array)
        payload = self._inner.compress(shuffled)
        return pack_header(_TAG, array.size, b"") + payload

    def decompress(self, blob: bytes) -> np.ndarray:
        """Invert the inner codec, then re-interleave the two streams."""

        tag, count, _extra, offset = unpack_header(blob)
        if tag != _TAG:
            raise CompressorError(f"blob tag {tag} is not a Solution D blob")
        shuffled = self._inner.decompress(blob[offset:])
        if shuffled.size != count:
            raise CompressorError(
                f"Solution D payload decoded {shuffled.size} values, expected {count}"
            )
        return _interleave(shuffled)


register_compressor("reshuffle", ReshuffleCompressor)
register_compressor("solution-d", ReshuffleCompressor)
