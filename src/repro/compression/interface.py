"""Compressor interface shared by every compression backend.

The paper evaluates four candidate lossy pipelines (Solutions A-D), two
existing lossy compressors used as baselines (ZFP, FPZIP) and one lossless
compressor (Zstd).  All of them are exposed here behind a single small
interface so the compressed simulator, the benchmarks and the tests can treat
them interchangeably:

* :class:`Compressor` — ``compress(ndarray) -> bytes`` /
  ``decompress(bytes) -> ndarray`` with a declared :class:`ErrorBoundMode`
  and bound value.
* :class:`CompressionRecord` — the bookkeeping produced by a round trip
  (sizes, ratio, timings), consumed by the reports and the adaptive
  controller.
* :func:`get_compressor` / :func:`available_compressors` — a registry keyed
  by the names used throughout the paper (``"sz"``, ``"sz-complex"``,
  ``"xor-bitplane"``, ``"reshuffle"``, ``"zfp"``, ``"fpzip"``, ``"lossless"``)
  and by the paper's solution letters (``"A"``–``"D"``).

All compressors operate on one-dimensional ``float64`` arrays.  Complex
amplitude blocks are viewed as interleaved real/imaginary ``float64`` pairs
by the callers (exactly the layout the paper describes for Solutions A and
C); Solutions B and D undo the interleaving internally.
"""

from __future__ import annotations

import abc
import enum
import struct
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "ErrorBoundMode",
    "CompressorError",
    "Compressor",
    "CompressionRecord",
    "roundtrip",
    "register_compressor",
    "get_compressor",
    "available_compressors",
    "PAPER_ERROR_LEVELS",
]


#: The five pointwise-relative error levels the paper steps through
#: (Section 3.7): 1e-5 (tightest) ... 1e-1 (loosest).
PAPER_ERROR_LEVELS: tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


class CompressorError(RuntimeError):
    """Raised when compression or decompression fails or is misconfigured."""


class ErrorBoundMode(enum.Enum):
    """Which error control a lossy compressor enforces (Section 2.3)."""

    #: No information loss at all.
    LOSSLESS = "lossless"
    #: Pointwise absolute bound: ``|d_i - d'_i| <= e``.
    ABSOLUTE = "abs"
    #: Pointwise relative bound: ``|d_i - d'_i| <= eps * |d_i|``.
    RELATIVE = "rel"


class Compressor(abc.ABC):
    """Abstract base class for all compression backends."""

    #: Registry name, overridden by subclasses.
    name: str = "abstract"

    def __init__(self, mode: ErrorBoundMode, bound: float) -> None:
        if mode is not ErrorBoundMode.LOSSLESS and bound <= 0:
            raise CompressorError(
                f"{type(self).__name__}: error bound must be positive, got {bound}"
            )
        self._mode = mode
        self._bound = float(bound)

    # -- codec kernel engine ------------------------------------------------------

    def _set_engine(self, engine=None) -> None:
        """Resolve and record the codec kernel engine (``engine=`` argument).

        Subclasses with engine-backed hot loops call this from their
        constructor; the resolved implementation lands on
        ``self._engine_impl`` and the *requested* name on
        ``self._engine_name`` (what :meth:`engine` reports and what pickling
        must preserve).  Imported lazily because :mod:`.engines` imports this
        module.
        """

        from .engines import engine_name, resolve_engine

        self._engine_name = engine_name(engine)
        self._engine_impl = resolve_engine(engine)

    @property
    def engine(self) -> str:
        """Requested codec engine name (``"numpy"`` when none was given)."""

        return getattr(self, "_engine_name", "numpy")

    # -- declared error control -------------------------------------------------

    @property
    def mode(self) -> ErrorBoundMode:
        """The error-bound mode this instance enforces."""

        return self._mode

    @property
    def bound(self) -> float:
        """The numeric error bound (0.0 for lossless backends)."""

        return self._bound

    @property
    def is_lossless(self) -> bool:
        """Whether this codec reconstructs bit-exactly (LOSSLESS mode)."""

        return self._mode is ErrorBoundMode.LOSSLESS

    # -- the two operations -------------------------------------------------------

    @abc.abstractmethod
    def compress(self, data: np.ndarray) -> bytes:
        """Compress a 1-D float64 array into a self-describing byte string."""

    @abc.abstractmethod
    def decompress(self, blob: bytes) -> np.ndarray:
        """Reverse :meth:`compress`, returning a float64 array."""

    # -- shared helpers ------------------------------------------------------------

    @staticmethod
    def _as_float64(data: np.ndarray) -> np.ndarray:
        array = np.ascontiguousarray(data)
        if array.dtype == np.complex128:
            # Interleaved real/imaginary view, matching the simulator layout.
            array = array.view(np.float64)
        if array.dtype != np.float64:
            array = array.astype(np.float64)
        if array.ndim != 1:
            array = array.ravel()
        return array

    def describe(self) -> str:
        """Short human-readable description used in benchmark output."""

        if self.is_lossless:
            return f"{self.name}(lossless)"
        return f"{self.name}({self._mode.value}={self._bound:g})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass
class CompressionRecord:
    """Metrics from one compress/decompress round trip."""

    compressor: str
    mode: str
    bound: float
    original_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float
    max_abs_error: float = 0.0
    max_rel_error: float = 0.0

    @property
    def ratio(self) -> float:
        """Compression ratio ``original / compressed`` (higher is better)."""

        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def compress_mb_per_s(self) -> float:
        """Compression throughput in MB/s over the original size."""

        if self.compress_seconds <= 0:
            return float("inf")
        return self.original_bytes / 1e6 / self.compress_seconds

    @property
    def decompress_mb_per_s(self) -> float:
        """Decompression throughput in MB/s over the original size."""

        if self.decompress_seconds <= 0:
            return float("inf")
        return self.original_bytes / 1e6 / self.decompress_seconds

    def as_dict(self) -> dict:
        """JSON-ready mapping of one compress/decompress measurement."""

        return {
            "compressor": self.compressor,
            "mode": self.mode,
            "bound": self.bound,
            "original_bytes": self.original_bytes,
            "compressed_bytes": self.compressed_bytes,
            "ratio": self.ratio,
            "compress_MBps": self.compress_mb_per_s,
            "decompress_MBps": self.decompress_mb_per_s,
            "max_abs_error": self.max_abs_error,
            "max_rel_error": self.max_rel_error,
        }


def roundtrip(compressor: Compressor, data: np.ndarray) -> tuple[np.ndarray, CompressionRecord]:
    """Compress and decompress *data*, returning the result and its metrics."""

    original = Compressor._as_float64(data)
    t0 = time.perf_counter()
    blob = compressor.compress(original)
    t1 = time.perf_counter()
    recovered = compressor.decompress(blob)
    t2 = time.perf_counter()

    abs_err = np.abs(original - recovered)
    max_abs = float(abs_err.max()) if abs_err.size else 0.0
    nonzero = np.abs(original) > 0
    if nonzero.any():
        max_rel = float((abs_err[nonzero] / np.abs(original[nonzero])).max())
    else:
        max_rel = 0.0

    record = CompressionRecord(
        compressor=compressor.name,
        mode=compressor.mode.value,
        bound=compressor.bound,
        original_bytes=original.nbytes,
        compressed_bytes=len(blob),
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        max_abs_error=max_abs,
        max_rel_error=max_rel,
    )
    return recovered, record


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., Compressor]] = {}

#: Aliases mapping the paper's "Solution" letters to registry names.
_SOLUTION_ALIASES = {
    "a": "sz",
    "b": "sz-complex",
    "c": "xor-bitplane",
    "d": "reshuffle",
}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a compressor *factory* under *name* (case-insensitive)."""

    _REGISTRY[name.lower()] = factory


def available_compressors() -> tuple[str, ...]:
    """Names of all registered compressors."""

    return tuple(sorted(_REGISTRY))


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered compressor by *name* or solution letter."""

    key = name.lower()
    key = _SOLUTION_ALIASES.get(key, key)
    try:
        factory = _REGISTRY[key]
    except KeyError as exc:
        raise CompressorError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from exc
    return factory(**kwargs)


# ---------------------------------------------------------------------------
# Small binary-header helpers shared by the concrete compressors
# ---------------------------------------------------------------------------

_MAGIC = b"QCSC"  # "Quantum Circuit Simulation Compression"


def pack_header(tag: int, count: int, extra: bytes = b"") -> bytes:
    """Serialise a tiny self-describing header.

    ``tag`` identifies the concrete format, ``count`` the number of float64
    values, ``extra`` any format-specific parameters.
    """

    return _MAGIC + struct.pack("<BIQ", tag, len(extra), count) + extra


def unpack_header(blob: bytes) -> tuple[int, int, bytes, int]:
    """Inverse of :func:`pack_header`.

    Returns ``(tag, count, extra, payload_offset)``.
    """

    if blob[:4] != _MAGIC:
        raise CompressorError("not a repro compression blob (bad magic)")
    tag, extra_len, count = struct.unpack_from("<BIQ", blob, 4)
    offset = 4 + struct.calcsize("<BIQ")
    extra = blob[offset : offset + extra_len]
    return tag, count, extra, offset + extra_len
