"""The numba-JIT codec kernel engine (optional, bit-identical to NumPy).

The hot codec loops are naturally sequential — Huffman decoding walks one
code chain, SZ reconstruction carries a running sum, leading-zero packing
emits a variable-length suffix per word.  The NumPy engine breaks that
seriality with clever multi-pass vectorisation, but every pass is a full
sweep over stream-sized arrays and the fancy-index gathers hold the GIL.
The kernels here run the sequential loop directly in machine code
(``@njit(cache=True, nogil=True)``): one pass, one element at a time, no
GIL — which is both faster single-threaded and lets the thread executor
tier actually scale on codec-bound work.

Every kernel reproduces the NumPy engine's output bit-for-bit (same bytes
from the encoders, same float arithmetic in the decoders — the golden blobs
and ``tests/test_engines.py`` enforce it).  When numba is not importable
this module still imports cleanly with :data:`HAVE_NUMBA` false and the
registry falls back to the NumPy engine.
"""

from __future__ import annotations

import numpy as np

from ..interface import CompressorError
from ..quantization import quantize
from .numpy_engine import CodecEngine

__all__ = ["HAVE_NUMBA", "NumbaEngine"]

try:  # pragma: no cover - exercised on hosts with numba installed
    from numba import njit

    #: True when the numba package imported and the kernels below are JITted.
    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the fallback path is the tested one
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """Stand-in decorator so the kernels below stay importable (and
        testable as plain Python) when numba is absent."""

        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


_JIT = dict(cache=True, nogil=True)


@njit(**_JIT)
def _huffman_decode_kernel(
    packed, total_bits, count, first_code, first_index, num_per_len, max_len
):
    """Serial canonical-Huffman walk; returns (book indices, status).

    Status 0 = ok, 1 = stream exhausted, 2 = no code matches.  The canonical
    property makes per-length lookup O(1): a length-L prefix is a valid code
    iff it lies in ``[first_code[L], first_code[L] + num_per_len[L])``.
    """

    out = np.empty(count, dtype=np.int64)
    pos = 0
    for i in range(count):
        code = np.uint64(0)
        length = 0
        while True:
            if pos >= total_bits:
                return out, 1
            bit = (packed[pos >> 3] >> np.uint8(7 - (pos & 7))) & np.uint8(1)
            code = (code << np.uint64(1)) | np.uint64(bit)
            pos += 1
            length += 1
            if length > max_len:
                return out, 2
            n_here = num_per_len[length]
            if n_here > 0 and code >= first_code[length]:
                delta = np.int64(code - first_code[length])
                if delta < n_here:
                    out[i] = first_index[length] + delta
                    break
    return out, 0


@njit(**_JIT)
def _pack_bitfields_kernel(values, widths, total_bits):
    """Sequential MSB-first bit writer; layout-identical to ``np.packbits``."""

    out = np.zeros((total_bits + 7) >> 3, dtype=np.uint8)
    pos = 0
    for i in range(values.size):
        width = widths[i]
        value = values[i]
        for j in range(width - 1, -1, -1):
            if (value >> np.uint64(j)) & np.uint64(1):
                out[pos >> 3] |= np.uint8(128) >> np.uint8(pos & 7)
            pos += 1
    return out


@njit(**_JIT)
def _sz_quantize_kernel(data, two_bound, limit):
    """Per-element ``rint(x / 2eps)``; returns (codes, nonfinite, overflow)."""

    codes = np.empty(data.size, dtype=np.int64)
    nonfinite = False
    overflow = False
    for i in range(data.size):
        c = np.rint(data[i] / two_bound)
        if not np.isfinite(c):
            nonfinite = True
            c = 0.0
        elif abs(c) > limit:
            overflow = True
        codes[i] = np.int64(c)
    return codes, nonfinite, overflow


@njit(**_JIT)
def _sz_reconstruct_kernel(
    bounded, escape_indices, escape_codes, escape_values, two_bound
):
    """One fused pass: cumulative sum, escape re-anchoring, dequantize."""

    count = bounded.size
    out = np.empty(count, dtype=np.float64)
    running = np.int64(0)
    k = 0
    n_escapes = escape_indices.size
    for i in range(count):
        if k < n_escapes and escape_indices[k] == i:
            running = escape_codes[k]
            out[i] = escape_values[k]
            k += 1
        else:
            running += bounded[i]
            out[i] = running * two_bound
    return out


@njit(**_JIT)
def _pack_leading_zero_kernel(xored, keep_bytes):
    """Fused leading-zero count + 2-bit code pack + suffix emit."""

    n = xored.size
    packed = np.zeros((2 * n + 7) >> 3, dtype=np.uint8)
    suffix = np.empty(n * keep_bytes, dtype=np.uint8)
    emitted = 0
    for i in range(n):
        word = xored[i]
        lead = 0
        while lead < keep_bytes:
            if (word >> np.uint64(8 * (7 - lead))) & np.uint64(0xFF):
                break
            lead += 1
        if lead > 3:
            lead = 3
        packed[i >> 2] |= np.uint8(lead << (6 - 2 * (i & 3)))
        for j in range(lead, keep_bytes):
            suffix[emitted] = np.uint8(
                (word >> np.uint64(8 * (7 - j))) & np.uint64(0xFF)
            )
            emitted += 1
    return packed, suffix[:emitted]


@njit(**_JIT)
def _unpack_leading_zero_kernel(packed_codes, suffix, count, keep_bytes):
    """Inverse of :func:`_pack_leading_zero_kernel`; returns (words, expected).

    ``expected`` is the suffix length the codes call for; the caller
    validates it against the actual suffix before trusting the words.
    """

    words = np.zeros(count, dtype=np.uint64)
    consumed = 0
    for i in range(count):
        code = (packed_codes[i >> 2] >> np.uint8(6 - 2 * (i & 3))) & np.uint8(3)
        lead = int(code)
        if lead > keep_bytes:
            lead = keep_bytes
        word = np.uint64(0)
        for j in range(lead, keep_bytes):
            if consumed < suffix.size:
                word |= np.uint64(suffix[consumed]) << np.uint64(8 * (7 - j))
            consumed += 1
        words[i] = word
    return words, consumed


class NumbaEngine(CodecEngine):
    """JIT-compiled serial kernels, blob-for-blob identical to NumPy's.

    Construction requires the numba package; the registry
    (:func:`repro.compression.engines.get_engine`) never constructs this
    class when :data:`HAVE_NUMBA` is false — it falls back to the NumPy
    engine with a one-time warning instead.
    """

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise CompressorError(
                "the numba engine requires the numba package; "
                "install numba or use engine='numpy'"
            )

    def huffman_decode_indices(
        self,
        packed: np.ndarray,
        total_bits: int,
        count: int,
        lengths: np.ndarray,
        codes: np.ndarray,
        window_bits: int,
    ) -> np.ndarray:
        """Serial canonical walk (``window_bits`` is a NumPy-engine knob and
        deliberately ignored — the decoded stream must not depend on it)."""

        max_len = int(lengths[-1])
        counts = np.bincount(lengths.astype(np.int64), minlength=max_len + 1)
        starts = np.zeros(max_len + 1, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        first_code = np.zeros(max_len + 1, dtype=np.uint64)
        present = counts > 0
        first_code[present] = codes[starts[present]]
        out, status = _huffman_decode_kernel(
            np.ascontiguousarray(packed),
            total_bits,
            count,
            first_code,
            starts,
            counts,
            max_len,
        )
        if status == 1:
            raise CompressorError("Huffman stream exhausted prematurely")
        if status == 2:
            raise CompressorError("invalid Huffman stream (no code matches)")
        return out

    def pack_bitfields(
        self, values: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Sequential bit writer; byte-identical to the NumPy word packer."""

        values = np.ascontiguousarray(values, dtype=np.uint64)
        widths = np.ascontiguousarray(widths, dtype=np.int64)
        if values.shape != widths.shape or values.ndim != 1:
            raise ValueError("values and widths must be matching 1-D arrays")
        total_bits = int(widths.sum())
        if total_bits == 0:
            return np.zeros(0, dtype=np.uint8), 0
        return _pack_bitfields_kernel(values, widths, total_bits), total_bits

    def sz_quantize(self, data: np.ndarray, error_bound: float) -> np.ndarray:
        """Per-element quantize with the shared validation contract."""

        if error_bound <= 0:
            raise CompressorError("quantization error bound must be positive")
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.size == 0:
            return np.zeros(0, dtype=np.int64)
        limit = np.iinfo(np.int64).max / 2
        # errstate matters only when the kernel runs in interpreted mode
        # (numba absent); compiled code never routes through numpy's FP-error
        # machinery.  Overflow-to-inf is the *detected* condition, not noise.
        with np.errstate(over="ignore", invalid="ignore"):
            codes, nonfinite, overflow = _sz_quantize_kernel(
                data, 2.0 * error_bound, limit
            )
        if nonfinite:
            raise CompressorError("cannot quantize non-finite data")
        if overflow:
            raise CompressorError(
                "quantization codes overflow int64; error bound too small for data range"
            )
        return codes

    def sz_reconstruct(
        self,
        bounded: np.ndarray,
        escape_indices: np.ndarray,
        escape_values: np.ndarray,
        error_bound: float,
    ) -> np.ndarray:
        """Fused sequential reconstruction (cumsum + re-anchor + dequantize).

        The escape anchors go through the exact same ``quantize`` as the
        NumPy engine so corrupted escape streams fail identically.
        """

        escape_codes = quantize(escape_values, error_bound)
        return _sz_reconstruct_kernel(
            np.ascontiguousarray(bounded, dtype=np.int64),
            np.ascontiguousarray(escape_indices, dtype=np.int64),
            escape_codes,
            np.ascontiguousarray(escape_values, dtype=np.float64),
            2.0 * error_bound,
        )

    def pack_leading_zero(
        self, xored: np.ndarray, keep_bytes: int
    ) -> tuple[bytes, bytes]:
        """Fused count/pack/emit loop over the XOR-ed words."""

        if not 1 <= keep_bytes <= 8:
            raise CompressorError("keep_bytes must be in [1, 8]")
        xored = np.ascontiguousarray(xored, dtype=np.uint64)
        if xored.size == 0:
            return b"", b""
        packed, suffix = _pack_leading_zero_kernel(xored, keep_bytes)
        return packed.tobytes(), suffix.tobytes()

    def unpack_leading_zero(
        self, packed_codes: bytes, suffix: bytes, count: int, keep_bytes: int
    ) -> np.ndarray:
        """Sequential rebuild of the XOR-ed words from codes + suffixes."""

        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        code_array = np.frombuffer(packed_codes, dtype=np.uint8)
        if code_array.size * 8 < count * 2:
            raise CompressorError(
                f"code stream has {code_array.size * 8} bits, "
                f"expected at least {count * 2}"
            )
        suffix_array = np.frombuffer(suffix, dtype=np.uint8)
        words, expected = _unpack_leading_zero_kernel(
            code_array, suffix_array, count, keep_bytes
        )
        if suffix_array.size != expected:
            raise CompressorError(
                f"suffix stream has {suffix_array.size} bytes, expected {expected}"
            )
        return words
