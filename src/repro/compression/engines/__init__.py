"""Pluggable compiled kernel engines for the codec hot loops.

The three loops that dominate (de)compression wall-clock — the canonical
Huffman window-decode wavefront, SZ quantize/reconstruct, and the 2-bit
leading-zero code packing of Solution C — exist in two interchangeable
implementations:

* ``"numpy"`` — the vectorised pure-NumPy kernels the codecs have always
  used (extracted verbatim into :mod:`repro.compression.engines.numpy_engine`).
  Always available; the default.
* ``"numba"`` — JIT-compiled serial kernels
  (:mod:`repro.compression.engines.numba_engine`, ``@njit(cache=True)``).
  The NumPy fancy-index gathers at the heart of the table-driven Huffman
  decoder hold the GIL and pay one full-array pass per pipeline stage; the
  numba kernels run the naturally-sequential loops in machine code instead,
  release the GIL, and touch each element once.

Both engines are **blob-for-blob bit-identical**: they encode to the same
bytes and decode to the same values, so blobs (and checkpoints) written
under one engine always read under the other.  The golden blobs in
``tests/golden/`` and the differential suite in ``tests/test_engines.py``
pin this contract.

Selection is a constructor parameter on every codec
(``HuffmanCodec(engine="numba")``, ``SZCompressor(engine=...)``, ...),
plumbed from :class:`repro.core.config.SimulatorConfig` via its
``codec_engine`` field and surviving process/rank-worker pickling through
the constructor-args-only ``__getstate__`` contract.  When numba is not
installed, requesting ``"numba"`` falls back to the NumPy engine with a
one-time :class:`EngineFallbackWarning`; nothing else changes, because the
two engines agree bit-for-bit.
"""

from __future__ import annotations

import importlib
import warnings

from ..interface import CompressorError
from .numpy_engine import CodecEngine, NumpyEngine

__all__ = [
    "KNOWN_ENGINES",
    "DEFAULT_ENGINE",
    "CodecEngine",
    "NumpyEngine",
    "EngineFallbackWarning",
    "available_engines",
    "engine_name",
    "get_engine",
    "resolve_engine",
]

#: Engine names the registry understands (valid values for every codec's
#: ``engine=`` parameter and for ``SimulatorConfig.codec_engine``).
KNOWN_ENGINES = ("numpy", "numba")

#: The engine used when none is requested.
DEFAULT_ENGINE = "numpy"


class EngineFallbackWarning(UserWarning):
    """Warned once per process when ``engine="numba"`` is requested but numba
    is not importable and the NumPy engine is silently substituted."""


_NUMPY_ENGINE = NumpyEngine()
_numba_engine = None  # lazily constructed singleton
_warned_fallback = False


def _numba_module():
    """Import :mod:`.numba_engine` lazily (importing numba itself is slow)."""

    return importlib.import_module(__name__ + ".numba_engine")


def available_engines() -> tuple[str, ...]:
    """Names of the engines whose kernels can run natively on this host.

    ``"numpy"`` is always present; ``"numba"`` is listed only when the numba
    package is importable (without it, ``get_engine("numba")`` still works
    but resolves to the NumPy fallback).
    """

    if _numba_module().HAVE_NUMBA:
        return ("numba", "numpy")
    return ("numpy",)


def get_engine(name: str | None = None) -> CodecEngine:
    """Return the engine registered under *name* (default ``"numpy"``).

    Unknown names raise :class:`~repro.compression.interface.CompressorError`.
    Requesting ``"numba"`` without numba installed returns the NumPy engine
    and fires :class:`EngineFallbackWarning` exactly once per process.
    """

    global _numba_engine, _warned_fallback
    key = DEFAULT_ENGINE if name is None else str(name).lower()
    if key not in KNOWN_ENGINES:
        raise CompressorError(
            f"unknown codec engine {name!r}; known engines: {KNOWN_ENGINES}"
        )
    if key == "numpy":
        return _NUMPY_ENGINE
    module = _numba_module()
    if module.HAVE_NUMBA:
        if _numba_engine is None:
            _numba_engine = module.NumbaEngine()
        return _numba_engine
    if not _warned_fallback:
        warnings.warn(
            "codec engine 'numba' requested but numba is not importable; "
            "falling back to the bit-identical 'numpy' engine",
            EngineFallbackWarning,
            stacklevel=2,
        )
        _warned_fallback = True
    return _NUMPY_ENGINE


def engine_name(engine: str | CodecEngine | None) -> str:
    """Normalise a codec's ``engine=`` argument to its *requested* name.

    The requested name — not the resolved one — is what codecs record and
    pickle, so a codec built with ``engine="numba"`` on a fallback host still
    asks for (and gets) the real numba engine when unpickled on a worker
    that has it.  Unknown names raise
    :class:`~repro.compression.interface.CompressorError`.
    """

    if engine is None:
        return DEFAULT_ENGINE
    if isinstance(engine, CodecEngine):
        return engine.name
    key = str(engine).lower()
    if key not in KNOWN_ENGINES:
        raise CompressorError(
            f"unknown codec engine {engine!r}; known engines: {KNOWN_ENGINES}"
        )
    return key


def resolve_engine(engine: str | CodecEngine | None) -> CodecEngine:
    """Normalise a codec's ``engine=`` argument to an engine instance.

    Accepts an engine name, an already-resolved :class:`CodecEngine`
    (passed through unchanged), or ``None`` for the default.
    """

    if isinstance(engine, CodecEngine):
        return engine
    return get_engine(engine)
