"""The pure-NumPy codec kernel engine (always available, the default).

This module holds the vectorised implementations of the codec hot loops,
extracted from where they grew up so they sit behind the same
:class:`CodecEngine` interface as the numba kernels:

* the table-driven canonical Huffman decode (window lookup + jump
  composition + anchor ladder + lock-step wavefront) that used to live in
  :mod:`repro.compression.huffman`,
* variable-width bitfield packing, delegated to
  :mod:`repro.compression.bitpack`,
* SZ linear-scaling quantization and the loop-free escape-segment
  reconstruction (global cumsum + per-segment offset repeat) from
  :mod:`repro.compression.sz`,
* the 2-bit leading-zero code (un)packing of Solution C, delegated to
  :mod:`repro.compression.bitplane`.

The byte layouts and float arithmetic are exactly the historical ones; the
golden-blob tests pin them, and the numba engine must match them
bit-for-bit.
"""

from __future__ import annotations

import threading

import numpy as np

from ..bitpack import pack_bitfields
from ..bitplane import pack_leading_zero_stream, unpack_leading_zero_stream
from ..interface import CompressorError
from ..quantization import dequantize, quantize

__all__ = ["CodecEngine", "NumpyEngine"]

#: Symbols decoded per chunk by the wavefront (must be a power of two).  The
#: anchor ladder runs ``ceil(count / chunk)`` Python iterations and the
#: wavefront ``chunk`` iterations; jump composition needs ``log2(chunk)``
#: passes over the bit-offset table.  The composition passes stream through
#: memory proportional to the *bit* length of the stream, the ladder costs a
#: couple hundred nanoseconds per chunk — 4 symbols per chunk balances the
#: two on block-sized streams.
_CHUNK_LOG2 = 2


_ARANGE_CACHE = np.zeros(0, dtype=np.int64)


def _cached_arange(size: int) -> np.ndarray:
    """Grow-only cached ``np.arange(size)`` slice.

    Decode is called once per block, and the arange is the same every time —
    caching it saves one full allocation + fill pass per call.  The cache is
    only ever swapped for a larger array (an atomic rebind under the GIL), so
    concurrent decodes on executor threads each see a consistent array.
    """

    global _ARANGE_CACHE
    if _ARANGE_CACHE.size < size:
        _ARANGE_CACHE = np.arange(max(size, 2 * _ARANGE_CACHE.size), dtype=np.int64)
    return _ARANGE_CACHE[:size]


_SCRATCH = threading.local()


def _scratch(name: str, size: int, dtype: np.dtype) -> np.ndarray:
    """Grow-only per-thread scratch buffer (uninitialised).

    The decoder's big flat work arrays are the same shape on every call for a
    given block size; reusing them avoids an allocation plus a page-fault
    pass per call.  Thread-local storage keeps concurrent decodes on
    :class:`~repro.core.executor.TaskExecutor` worker threads independent.
    """

    buffers = getattr(_SCRATCH, "buffers", None)
    if buffers is None:
        buffers = _SCRATCH.buffers = {}
    buf = buffers.get(name)
    if buf is None or buf.size < size or buf.dtype != dtype:
        buf = buffers[name] = np.empty(max(size, 1024), dtype=dtype)
    return buf[:size]


def _window_table(
    lengths: np.ndarray, window_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Lookup table over every *window_bits*-bit window.

    ``table_idx[w]`` is the book index of the code that the window ``w``
    starts with (or the book size as an invalid/escape sentinel) and
    ``table_len[w]`` its code length (0 for the sentinel).  Canonical codes
    of length <= W tile the window space contiguously from 0, so the table is
    two ``np.repeat`` fills.
    """

    n = lengths.size
    lengths64 = lengths.astype(np.int64)
    short = int(np.searchsorted(lengths64, window_bits, side="right"))
    spans = np.int64(1) << (window_bits - lengths64[:short])
    covered = int(spans.sum())
    table_idx = np.full(1 << window_bits, n, dtype=np.int32)
    table_len = np.zeros(1 << window_bits, dtype=np.uint8)
    table_idx[:covered] = np.repeat(np.arange(short, dtype=np.int32), spans)
    table_len[:covered] = np.repeat(lengths[:short], spans)
    return table_idx, table_len


def _windows_at_every_offset(
    padded: np.ndarray, num_bytes: int, total_bits: int, window_bits: int
) -> np.ndarray:
    """The *window_bits*-bit window starting at every bit offset of a stream.

    Built from a 24-bit sliding read per byte and eight strided shifts (one
    per sub-byte phase — a fixed 8 iterations regardless of stream length).
    """

    b = padded.astype(np.uint32)
    wide = (b[:num_bytes] << 16) | (b[1 : num_bytes + 1] << 8) | b[2 : num_bytes + 2]
    mask = np.uint32((1 << window_bits) - 1)
    windows = _scratch("windows", num_bytes * 8, np.uint16).reshape(num_bytes, 8)
    for phase in range(8):  # eight bit phases within a byte, not stream-sized
        windows[:, phase] = (wide >> np.uint32(24 - window_bits - phase)) & mask
    return windows.reshape(-1)[:total_bits]


def _windows64(padded: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Left-justified 64-bit windows at the given bit *positions*."""

    byte_idx = positions >> 3
    shift = (positions & 7).astype(np.uint64)
    hi = np.zeros(positions.size, dtype=np.uint64)
    for j in range(8):  # eight bytes of a 64-bit window, not stream-sized
        hi = (hi << np.uint64(8)) | padded[byte_idx + j].astype(np.uint64)
    spill = padded[byte_idx + 8].astype(np.uint64)
    return np.where(
        shift == 0, hi, (hi << shift) | (spill >> (np.uint64(8) - shift))
    )


def _resolve_long_codes(
    padded: np.ndarray,
    positions: np.ndarray,
    lengths: np.ndarray,
    codes: np.ndarray,
    left_justified64: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Slow-path escape: codes longer than the window, via binary search.

    Canonical codes are lexicographically ordered when left-justified, so the
    code starting at a bit position is found by ``searchsorted`` of the
    position's 64-bit window against the left-justified code values.
    Returns ``(book index, code length)`` with the sentinel
    ``(book size, 0)`` where no code matches (garbage offsets).
    """

    n = lengths.size
    win64 = _windows64(padded, positions)
    idx = np.searchsorted(left_justified64, win64, side="right") - 1
    idx = np.maximum(idx, 0)
    code_len = lengths[idx].astype(np.uint64)
    matches = (win64 >> (np.uint64(64) - code_len)) == codes[idx]
    return (
        np.where(matches, idx, n).astype(np.int32),
        np.where(matches, code_len, 0).astype(np.uint8),
    )


class CodecEngine:
    """Interface of a codec kernel engine.

    An engine bundles one implementation of each codec hot loop.  All
    engines must be blob-for-blob bit-identical: same bytes out of the
    encoders, same values out of the decoders, same
    :class:`~repro.compression.interface.CompressorError` contract on
    malformed streams.  :class:`NumpyEngine` is the reference
    implementation; the conformance suite in ``tests/test_engines.py``
    differential-tests every other engine against it.
    """

    #: Registry name of the engine ("numpy", "numba", ...).
    name = "abstract"

    def huffman_decode_indices(
        self,
        packed: np.ndarray,
        total_bits: int,
        count: int,
        lengths: np.ndarray,
        codes: np.ndarray,
        window_bits: int,
    ) -> np.ndarray:
        """Decode *count* canonical-Huffman code-book indices from a stream.

        ``packed`` is the MSB-first byte stream, ``lengths``/``codes`` the
        canonical code book sorted by (length, symbol).  Returns the book
        index of every decoded symbol; raises ``CompressorError`` when the
        stream ends early or spells no valid code.
        """

        raise NotImplementedError

    def pack_bitfields(
        self, values: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Concatenate ``values[i]`` as a ``widths[i]``-bit big-endian field.

        Same contract as :func:`repro.compression.bitpack.pack_bitfields`.
        """

        raise NotImplementedError

    def sz_quantize(self, data: np.ndarray, error_bound: float) -> np.ndarray:
        """Quantize *data* onto the uniform grid with pitch ``2 * bound``.

        Same contract as :func:`repro.compression.quantization.quantize`.
        """

        raise NotImplementedError

    def sz_reconstruct(
        self,
        bounded: np.ndarray,
        escape_indices: np.ndarray,
        escape_values: np.ndarray,
        error_bound: float,
    ) -> np.ndarray:
        """Rebuild an SZ value stream from bounded deltas and escape anchors.

        ``bounded`` holds the decoded delta codes (escape positions included),
        ``escape_indices`` the positions stored verbatim and
        ``escape_values`` their raw values.  Every escape re-anchors the
        running sum on its own quantized code; escape positions are returned
        verbatim.
        """

        raise NotImplementedError

    def pack_leading_zero(
        self, xored: np.ndarray, keep_bytes: int
    ) -> tuple[bytes, bytes]:
        """Encode XOR-ed words as (packed 2-bit codes, suffix bytes).

        Same contract as
        :func:`repro.compression.bitplane.pack_leading_zero_stream`.
        """

        raise NotImplementedError

    def unpack_leading_zero(
        self, packed_codes: bytes, suffix: bytes, count: int, keep_bytes: int
    ) -> np.ndarray:
        """Inverse of :meth:`pack_leading_zero`; returns uint64 XOR-ed words.

        Same contract as
        :func:`repro.compression.bitplane.unpack_leading_zero_stream`.
        """

        raise NotImplementedError


class NumpyEngine(CodecEngine):
    """The vectorised pure-NumPy engine (reference implementation)."""

    name = "numpy"

    def huffman_decode_indices(
        self,
        packed: np.ndarray,
        total_bits: int,
        count: int,
        lengths: np.ndarray,
        codes: np.ndarray,
        window_bits: int,
    ) -> np.ndarray:
        """Table-driven decode: window lookup, jump composition, wavefront."""

        n = lengths.size
        max_len = int(lengths[-1])
        window_bits = min(window_bits, max_len)
        table_idx, table_len = _window_table(lengths, window_bits)
        has_long_codes = max_len > window_bits
        left_justified64 = (
            codes << (np.uint64(64) - lengths.astype(np.uint64))
            if has_long_codes
            else None
        )

        num_bytes = (total_bits + 7) // 8
        padded = np.concatenate(
            [packed[:num_bytes], np.zeros(9, dtype=np.uint8)]
        )
        windows = _windows_at_every_offset(padded, num_bytes, total_bits, window_bits)

        # Code length at every bit offset; garbage offsets (no real code
        # starts there) get whatever code their bits happen to spell, which
        # is harmless — the composed jumps below are only ever *read* along
        # the one chain of true code starts.
        bit_len = table_len[windows]
        if has_long_codes:
            escapes = np.flatnonzero(bit_len == 0)
            if escapes.size:
                _, esc_len = _resolve_long_codes(
                    padded, escapes, lengths, codes, left_justified64
                )
                bit_len[escapes] = esc_len

        chunk_log2 = min(_CHUNK_LOG2, max(count - 1, 1).bit_length())
        chunk = 1 << chunk_log2
        num_chunks = -(-count // chunk)

        # Stage 2: jump composition.  jump[p] = bits advanced by decoding
        # 2^r codes starting at offset p; doubled log2(chunk) times.  The
        # reads are near-sequential (each offset looks at most
        # chunk * max_len bits ahead), so these passes stream through memory:
        # each round is one add into an int64 index buffer, one gather, one
        # in-place add.  The pad region past the stream (ones, then a zero
        # tail one maximum-jump wide) absorbs every overshooting read, so no
        # index ever needs clamping: composed jumps are bounded by
        # chunk * max_len and pad jumps collapse onto the zero tail.
        pad_bits = chunk * max(64, max_len) + 64
        # Composed jumps are bounded by chunk * max_len, so they almost
        # always fit uint8 — a quarter of the int32 traffic per pass.
        jump_dtype = np.uint8 if chunk * max_len <= 255 else np.int32
        jump = _scratch("jump", total_bits + pad_bits, jump_dtype)
        np.maximum(bit_len, 1, out=jump[:total_bits], casting="unsafe")
        jump[total_bits:-64] = 1
        jump[-64:] = 0
        anchors = np.zeros(num_chunks, dtype=np.int64)
        if num_chunks > 1:
            offsets = _cached_arange(jump.size)
            target = _scratch("target", jump.size, np.int64)
            for _ in range(chunk_log2):  # log2(chunk) composition rounds
                np.add(offsets, jump, out=target)
                jump += jump[target]
            # Anchor ladder: one Python step per *chunk* of decoded symbols.
            jump_at = jump.item
            position = 0
            for k in range(1, num_chunks):
                position += jump_at(position)
                anchors[k] = position
            if anchors[-1] >= total_bits:
                raise CompressorError("Huffman stream exhausted prematurely")

        # Stage 3: wavefront — decode every chunk in lock-step; the loop runs
        # `chunk` times however long the stream is.
        idx_rows = np.empty((chunk, num_chunks), dtype=np.int32)
        cursor = anchors
        limit = total_bits - 1
        last_lane = (count - 1) // chunk
        last_slot = (count - 1) % chunk
        last_pos = 0
        for t in range(chunk):  # fixed chunk width, independent of count
            safe = np.minimum(cursor, limit)
            w = windows[safe]
            ids = table_idx[w]
            lens = table_len[w]
            if has_long_codes:
                miss = np.flatnonzero(ids == n)
                if miss.size:
                    esc_idx, esc_len = _resolve_long_codes(
                        padded, safe[miss], lengths, codes, left_justified64
                    )
                    ids[miss] = esc_idx
                    lens[miss] = esc_len
            idx_rows[t] = ids
            if t == last_slot:
                last_pos = int(cursor[last_lane])
            cursor = cursor + lens
        flat_idx = idx_rows.T.reshape(-1)[:count]

        last_idx = int(flat_idx[-1])
        if last_idx == n or last_pos + int(lengths[last_idx]) > total_bits:
            raise CompressorError("Huffman stream exhausted prematurely")
        if (flat_idx == n).any():
            raise CompressorError("invalid Huffman stream (no code matches)")
        return flat_idx

    def pack_bitfields(
        self, values: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Delegates to :func:`repro.compression.bitpack.pack_bitfields`."""

        return pack_bitfields(values, widths)

    def sz_quantize(self, data: np.ndarray, error_bound: float) -> np.ndarray:
        """Delegates to :func:`repro.compression.quantization.quantize`."""

        return quantize(data, error_bound)

    def sz_reconstruct(
        self,
        bounded: np.ndarray,
        escape_indices: np.ndarray,
        escape_values: np.ndarray,
        error_bound: float,
    ) -> np.ndarray:
        """Loop-free reconstruction: global cumsum + per-segment offsets.

        Every escape re-anchors the running sum on its own quantized code, so
        the reconstruction is one global cumulative sum of the deltas (with
        escape deltas zeroed) plus a per-segment offset: for the segment
        after escape k the offset is the escape's code minus the cumulative
        sum at its anchor.  The offsets broadcast to positions with one
        ``np.repeat`` over the segment lengths — no loop over segments.
        """

        count = bounded.size
        codes = bounded.copy()
        codes[escape_indices] = 0
        np.cumsum(codes, out=codes)
        if escape_indices.size:
            escape_codes = quantize(escape_values, error_bound)
            segment_offsets = escape_codes - codes[escape_indices]
            segment_lengths = np.diff(escape_indices, append=count)
            # Positions before the first escape keep the plain cumulative sum
            # (offset 0), exactly as the seed's sequential walk did.
            codes[escape_indices[0] :] += np.repeat(segment_offsets, segment_lengths)
        values = dequantize(codes, error_bound)
        if escape_indices.size:
            values[escape_indices] = escape_values
        return values

    def pack_leading_zero(
        self, xored: np.ndarray, keep_bytes: int
    ) -> tuple[bytes, bytes]:
        """Delegates to :func:`repro.compression.bitplane.pack_leading_zero_stream`."""

        return pack_leading_zero_stream(xored, keep_bytes)

    def unpack_leading_zero(
        self, packed_codes: bytes, suffix: bytes, count: int, keep_bytes: int
    ) -> np.ndarray:
        """Delegates to :func:`repro.compression.bitplane.unpack_leading_zero_stream`."""

        return unpack_leading_zero_stream(packed_codes, suffix, count, keep_bytes)
