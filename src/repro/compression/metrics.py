"""Compression quality metrics.

These implement the measurements the paper's evaluation section is built on:

* compression ratio (Figures 7, 8, 10, Table 2),
* compression / decompression throughput (Figure 11),
* per-block maximum pointwise relative error and its CDF (Figure 12),
* normalized error distribution against the bound (Figure 14), and
* the lag-1 autocorrelation of the compression errors, the paper's evidence
  that Solution C's errors are uncorrelated (Section 4.2, last paragraph).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .interface import Compressor, CompressionRecord, roundtrip

__all__ = [
    "compression_ratio",
    "pointwise_absolute_errors",
    "pointwise_relative_errors",
    "max_pointwise_relative_error",
    "per_block_max_relative_error",
    "normalized_errors",
    "error_cdf",
    "lag1_autocorrelation",
    "evaluate_compressor",
    "throughput_mbps",
]


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Ratio ``original / compressed``; ``inf`` for an empty blob."""

    if compressed_bytes <= 0:
        return float("inf")
    return original_bytes / compressed_bytes


def pointwise_absolute_errors(original: np.ndarray, recovered: np.ndarray) -> np.ndarray:
    """Elementwise ``|d_i - d'_i|``."""

    original = np.asarray(original, dtype=np.float64)
    recovered = np.asarray(recovered, dtype=np.float64)
    if original.shape != recovered.shape:
        raise ValueError("original and recovered arrays must have the same shape")
    return np.abs(original - recovered)


def pointwise_relative_errors(
    original: np.ndarray, recovered: np.ndarray
) -> np.ndarray:
    """Elementwise ``|d_i - d'_i| / |d_i|``; exact zeros contribute 0 error
    when reconstructed exactly and ``inf`` otherwise."""

    original = np.asarray(original, dtype=np.float64)
    abs_err = pointwise_absolute_errors(original, recovered)
    magnitude = np.abs(original)
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(magnitude > 0, abs_err / magnitude, np.where(abs_err > 0, np.inf, 0.0))
    return rel


def max_pointwise_relative_error(original: np.ndarray, recovered: np.ndarray) -> float:
    """Largest pointwise relative error over the array."""

    rel = pointwise_relative_errors(original, recovered)
    return float(rel.max(initial=0.0))


def per_block_max_relative_error(
    original: np.ndarray, recovered: np.ndarray, block_size: int
) -> np.ndarray:
    """Maximum pointwise relative error of each *block_size*-long block.

    This is the quantity whose CDF the paper plots in Figure 12 (one point
    per 16 MB data block).  A trailing partial block is included.
    """

    if block_size <= 0:
        raise ValueError("block_size must be positive")
    rel = pointwise_relative_errors(original, recovered)
    num_blocks = (rel.size + block_size - 1) // block_size
    # Pad the trailing partial block with zeros (relative errors are >= 0,
    # and an empty block's maximum is defined as 0) and reduce row-wise —
    # one reshaped max instead of a Python loop over blocks.
    padded = np.zeros(num_blocks * block_size, dtype=np.float64)
    padded[: rel.size] = rel
    return padded.reshape(num_blocks, block_size).max(axis=1)


def normalized_errors(
    original: np.ndarray, recovered: np.ndarray, bound: float
) -> np.ndarray:
    """Signed compression errors normalised by ``bound * |d_i|`` (Figure 14).

    Values lie in ``[-1, 1]`` when the pointwise relative bound is respected.
    Zero-valued originals are skipped (they carry no relative error).
    """

    if bound <= 0:
        raise ValueError("bound must be positive")
    original = np.asarray(original, dtype=np.float64)
    recovered = np.asarray(recovered, dtype=np.float64)
    mask = np.abs(original) > 0
    signed = (recovered[mask] - original[mask]) / (np.abs(original[mask]) * bound)
    return signed


def error_cdf(errors: np.ndarray, num_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` — the empirical CDF sampled at *num_points* knots."""

    errors = np.sort(np.asarray(errors, dtype=np.float64))
    if errors.size == 0:
        return np.zeros(0), np.zeros(0)
    x = np.linspace(errors[0], errors[-1], num_points)
    cdf = np.searchsorted(errors, x, side="right") / errors.size
    return x, cdf


def lag1_autocorrelation(values: np.ndarray) -> float:
    """Lag-1 autocorrelation coefficient of *values*.

    The paper reports this on the compression-error series to show Solution C
    errors are uncorrelated (values within roughly [-1e-4, 1e-4] on dense
    data).  Returns 0 for constant or near-empty inputs.
    """

    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        return 0.0
    centered = values - values.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 0.0
    numer = float(np.dot(centered[:-1], centered[1:]))
    return numer / denom


def throughput_mbps(num_bytes: int, seconds: float) -> float:
    """Throughput in MB/s (10^6 bytes per second), ``inf`` for zero time."""

    if seconds <= 0:
        return float("inf")
    return num_bytes / 1e6 / seconds


@dataclass
class CompressorEvaluation:
    """Bundle of metrics for one compressor on one dataset."""

    record: CompressionRecord
    per_block_max_rel: np.ndarray
    normalized: np.ndarray
    lag1_error_autocorrelation: float

    def as_dict(self) -> dict:
        """The wrapped record's dict plus the error-autocorrelation field."""

        data = self.record.as_dict()
        data["lag1_error_autocorrelation"] = self.lag1_error_autocorrelation
        return data


def evaluate_compressor(
    compressor: Compressor,
    data: np.ndarray,
    block_size: int = 4096,
) -> CompressorEvaluation:
    """Round-trip *data* through *compressor* and collect the paper's metrics."""

    original = Compressor._as_float64(data)
    recovered, record = roundtrip(compressor, original)
    per_block = per_block_max_relative_error(original, recovered, block_size)
    bound = compressor.bound if compressor.bound > 0 else 1.0
    norm = normalized_errors(original, recovered, bound)
    errors = recovered - original
    return CompressorEvaluation(
        record=record,
        per_block_max_rel=per_block,
        normalized=norm,
        lag1_error_autocorrelation=lag1_autocorrelation(errors),
    )
