"""Linear-scaling quantization for the SZ-style pipelines.

SZ (Solutions A and B in the paper) introduces and controls its error in the
quantization step: each value is approximated by an integer multiple of
``2 * error_bound``, so the reconstruction error is at most ``error_bound``
for every point.  This module provides the quantizer plus the log-domain
transform SZ uses to turn a pointwise *relative* error bound into an absolute
bound (Section 4.1: "log-preprocessing-based compression has been validated
as the best way to do the pointwise relative-error-bounded compression").
"""

from __future__ import annotations

import numpy as np

from .interface import CompressorError

__all__ = [
    "quantize",
    "dequantize",
    "log_transform",
    "log_inverse_transform",
    "relative_to_log_absolute",
]


def quantize(data: np.ndarray, error_bound: float) -> np.ndarray:
    """Quantize *data* onto the uniform grid with pitch ``2 * error_bound``.

    Returns int64 codes such that ``dequantize(codes, error_bound)`` differs
    from *data* by at most *error_bound* pointwise.  (For 1-D data, delta
    coding of these grid codes is algebraically equivalent to SZ's Lorenzo
    prediction from the decompressed neighbour followed by linear-scaling
    quantization, while staying fully vectorised.)
    """

    if error_bound <= 0:
        raise CompressorError("quantization error bound must be positive")
    data = np.asarray(data, dtype=np.float64)
    with np.errstate(over="ignore", invalid="ignore"):
        codes = np.rint(data / (2.0 * error_bound))
    if not np.isfinite(codes).all():
        raise CompressorError("cannot quantize non-finite data")
    # Guard against int64 overflow for pathological bounds.
    limit = np.iinfo(np.int64).max / 2
    if np.abs(codes).max(initial=0.0) > limit:
        raise CompressorError(
            "quantization codes overflow int64; error bound too small for data range"
        )
    return codes.astype(np.int64)


def dequantize(codes: np.ndarray, error_bound: float) -> np.ndarray:
    """Inverse of :func:`quantize`."""

    if error_bound <= 0:
        raise CompressorError("quantization error bound must be positive")
    return np.asarray(codes, dtype=np.float64) * (2.0 * error_bound)


def log_transform(data: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map *data* to ``log|data|`` for relative-error-bounded compression.

    Returns ``(log_magnitudes, signs, zero_mask)``.  Zero values cannot be
    represented in the log domain; their positions are recorded in
    ``zero_mask`` and their log entries are set to 0 (ignored on inverse).
    """

    data = np.asarray(data, dtype=np.float64)
    zero_mask = data == 0.0
    signs = np.sign(data)
    magnitudes = np.abs(data)
    safe = np.where(zero_mask, 1.0, magnitudes)
    return np.log(safe), signs, zero_mask


def log_inverse_transform(
    log_magnitudes: np.ndarray, signs: np.ndarray, zero_mask: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`log_transform`."""

    values = np.exp(np.asarray(log_magnitudes, dtype=np.float64)) * np.asarray(signs)
    values = np.where(np.asarray(zero_mask, dtype=bool), 0.0, values)
    return values


def relative_to_log_absolute(relative_bound: float) -> float:
    """Absolute bound in the log domain equivalent to a relative bound.

    If ``|log d' - log d| <= log(1 + eps)`` then ``|d' - d| <= eps * |d|``
    on the reconstruction side (for the downward branch the error is even
    smaller), so compressing the log-domain data with this absolute bound
    enforces the pointwise relative bound on the original data.
    """

    if relative_bound <= 0:
        raise CompressorError("relative error bound must be positive")
    return float(np.log1p(relative_bound))
