"""Compression substrate: lossless backends, the paper's Solutions A-D and
the ZFP/FPZIP baselines, plus quality metrics.

Importing this package registers every concrete compressor with the registry
in :mod:`repro.compression.interface`, so ``get_compressor("C", bound=1e-3)``
works immediately.
"""

from .engines import (
    DEFAULT_ENGINE,
    KNOWN_ENGINES,
    EngineFallbackWarning,
    available_engines,
    get_engine,
)
from .interface import (
    PAPER_ERROR_LEVELS,
    CompressionRecord,
    Compressor,
    CompressorError,
    ErrorBoundMode,
    available_compressors,
    get_compressor,
    register_compressor,
    roundtrip,
)
from .lossless import LosslessCompressor
from .sz import SZCompressor, DEFAULT_QUANTIZATION_BINS
from .sz_complex import SZComplexCompressor, COMPLEX_QUANTIZATION_BINS
from .xor_bitplane import XorBitplaneCompressor
from .reshuffle import ReshuffleCompressor
from .zfp_like import ZFPLikeCompressor
from .fpzip_like import FPZIPLikeCompressor, PAPER_PRECISION_MAP
from . import bitplane, engines, huffman, metrics, quantization

__all__ = [
    "DEFAULT_ENGINE",
    "KNOWN_ENGINES",
    "EngineFallbackWarning",
    "available_engines",
    "get_engine",
    "engines",
    "Compressor",
    "CompressorError",
    "CompressionRecord",
    "ErrorBoundMode",
    "PAPER_ERROR_LEVELS",
    "available_compressors",
    "get_compressor",
    "register_compressor",
    "roundtrip",
    "LosslessCompressor",
    "SZCompressor",
    "SZComplexCompressor",
    "XorBitplaneCompressor",
    "ReshuffleCompressor",
    "ZFPLikeCompressor",
    "FPZIPLikeCompressor",
    "DEFAULT_QUANTIZATION_BINS",
    "COMPLEX_QUANTIZATION_BINS",
    "PAPER_PRECISION_MAP",
    "bitplane",
    "huffman",
    "metrics",
    "quantization",
]
