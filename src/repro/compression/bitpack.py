"""Vectorised variable-width bitfield packing.

Both entropy stages of the codec layer — the canonical Huffman coder
(:mod:`repro.compression.huffman`) and the ZFP-style embedded coefficient
coder (:mod:`repro.compression.zfp_like`) — serialise a sequence of values
whose *i*-th element occupies ``widths[i]`` bits, most significant bit first,
concatenated back to back and packed eight bits per byte (the exact layout
``np.packbits``/``np.unpackbits`` use with their default big-endian bit
order).

The seed implementations expanded these fields with a Python loop over bit
*positions* (``for bit in range(max_width)``), i.e. one masked full-array
pass per bit plane.  The helpers here work in one shot instead.  Packing
assembles the stream directly as uint64 words: every field is left-justified
to 64 bits, split into its (at most two) overlapping stream words, and the
per-word fragments are OR-folded with ``np.bitwise_or.reduceat`` — all
operations are over *field*-sized arrays, never bit-sized ones.  Unpacking
fans the bit array out with one ``np.repeat`` and folds per-field with
``reduceat``.  No Python loop runs over values, bits, or bytes, and the byte
layout is bit-identical to the seed's.
"""

from __future__ import annotations

import numpy as np

from .interface import CompressorError

__all__ = ["pack_bitfields", "unpack_bitfields"]


def pack_bitfields(values: np.ndarray, widths: np.ndarray) -> tuple[np.ndarray, int]:
    """Concatenate ``values[i]`` as a ``widths[i]``-bit big-endian field.

    Parameters
    ----------
    values:
        Unsigned field values; only the low ``widths[i]`` bits of each are
        emitted (callers guarantee the values fit).
    widths:
        Per-field bit widths in ``[0, 64]``; zero-width fields emit nothing.

    Returns
    -------
    ``(packed, total_bits)`` where *packed* is the ``np.packbits`` byte array
    of the concatenated bit string.
    """

    values = np.ascontiguousarray(values, dtype=np.uint64)
    widths = np.ascontiguousarray(widths, dtype=np.int64)
    if values.shape != widths.shape or values.ndim != 1:
        raise ValueError("values and widths must be matching 1-D arrays")
    total_bits = int(widths.sum())
    if total_bits == 0:
        return np.zeros(0, dtype=np.uint8), 0

    ends = np.cumsum(widths)
    starts = ends - widths
    # Zero-width fields emit nothing; drop them up front so no fragment is
    # computed for them (their empty "tail" could otherwise index one word
    # past the stream when they sit at a 64-bit-aligned stream end) and so
    # the left-justifying shift below stays within [0, 63].
    nonzero = widths > 0
    if not nonzero.all():
        values = values[nonzero]
        widths = widths[nonzero]
        starts = starts[nonzero]
    # Left-justify every field to 64 bits, then split it into its (at most
    # two) overlapping words of the output stream.  Stream bit b lives in
    # word b >> 6, with bit 64*w being that word's MSB.
    left = values << (np.uint64(64) - widths.astype(np.uint64))
    word_idx = starts >> 6
    rot = (starts & 63).astype(np.uint64)
    head = left >> rot
    # The spill into the following word; a shift by 64 is undefined, so the
    # rot == 0 case (no spill) is masked out explicitly.
    tail = np.where(
        rot > 0, left << ((np.uint64(64) - rot) & np.uint64(63)), np.uint64(0)
    )

    num_words = (total_bits + 63) // 64
    words = np.zeros(num_words + 1, dtype=np.uint64)  # +1: tail slack
    # word_idx is sorted (starts are monotone), so each word's fragments are
    # one contiguous run; reduceat over the run starts OR-folds them.
    for idx, frag in ((word_idx, head), (word_idx + 1, tail)):
        run_starts = np.flatnonzero(np.diff(idx, prepend=-1))
        words[idx[run_starts]] |= np.bitwise_or.reduceat(frag, run_starts)
    # The stream is MSB-first, so each word serialises big-endian.
    packed = words.byteswap().view(np.uint8)[: (total_bits + 7) // 8]
    return packed.copy(), total_bits


def unpack_bitfields(
    bits: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`pack_bitfields` given the unpacked bit array.

    Parameters
    ----------
    bits:
        The uint8 0/1 bit array (``np.unpackbits`` output, already trimmed to
        the stream's total bit count).
    widths:
        Per-field bit widths; ``widths.sum()`` must equal ``bits.size``.

    Returns
    -------
    uint64 array of field values (zero for zero-width fields).
    """

    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    widths = np.ascontiguousarray(widths, dtype=np.int64)
    total_bits = int(widths.sum())
    if total_bits != bits.size:
        # A mismatch means the blob was truncated or corrupted — surface it
        # as the codec error contract, not a bare ValueError.
        raise CompressorError(
            f"bit stream has {bits.size} bits, field widths need {total_bits}"
        )
    values = np.zeros(widths.size, dtype=np.uint64)
    if total_bits == 0:
        return values

    ends = np.cumsum(widths)
    starts = ends - widths
    field_of_bit = np.repeat(np.arange(widths.size, dtype=np.int64), widths)
    bit_in_field = np.arange(total_bits, dtype=np.int64) - starts[field_of_bit]
    shifts = (widths[field_of_bit] - 1 - bit_in_field).astype(np.uint64)
    contrib = bits.astype(np.uint64) << shifts
    # OR the per-bit contributions back together per field.  ``reduceat``
    # mishandles empty segments (it returns the element at the segment start
    # instead of the identity), so reduce over non-empty fields only.
    nonzero = widths > 0
    values[nonzero] = np.bitwise_or.reduceat(contrib, starts[nonzero])
    return values
