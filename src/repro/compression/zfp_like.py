"""ZFP-style domain-transform compressor (baseline).

ZFP is the representative of the *domain-transform-based* compression model
the paper contrasts with SZ (Section 2.3): values are grouped into small
blocks, aligned to a common exponent (block-floating-point), passed through a
(nearly) orthogonal block transform to decorrelate them, and the transform
coefficients are encoded most-significant-bit-plane first until the error
bound allows truncation.

The paper's conclusion — and what the Figure 7/8 benchmarks reproduce — is
that this model collapses on quantum state data because the amplitudes are
spiky, not smooth, so the transform does not concentrate energy and the bit
planes cannot be truncated aggressively.  This implementation follows the
same three stages on 1-D blocks of four doubles:

1. exponent alignment to the block maximum,
2. an orthogonal 4-point transform (the same lifting butterfly family ZFP
   uses),
3. bit-plane truncation of the fixed-point coefficients to the number of bits
   required by the absolute error bound, followed by a lossless pass.

Pointwise relative bounds are supported the same way the paper evaluated ZFP:
log-transform preprocessing plus absolute-bound compression of the
transformed data.
"""

from __future__ import annotations

import struct

import numpy as np

from . import quantization
from .bitpack import unpack_bitfields
from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)
from .lossless import lossless_compress_bytes, lossless_decompress_bytes

__all__ = ["ZFPLikeCompressor", "BLOCK_SIZE"]

_TAG_ABS = 0x08
_TAG_REL = 0x09

#: ZFP groups 4^d values per block; for 1-D streams that is 4.
BLOCK_SIZE = 4

# Orthonormal 4-point transform matrix (a DCT-II, which like ZFP's lifted
# transform decorrelates smooth blocks and is exactly invertible).
_DCT4 = np.array(
    [
        [0.5, 0.5, 0.5, 0.5],
        [
            0.6532814824381883,
            0.2705980500730985,
            -0.2705980500730985,
            -0.6532814824381883,
        ],
        [0.5, -0.5, -0.5, 0.5],
        [
            0.2705980500730985,
            -0.6532814824381883,
            0.6532814824381883,
            -0.2705980500730985,
        ],
    ],
    dtype=np.float64,
)


class ZFPLikeCompressor(Compressor):
    """Fixed-accuracy ZFP-style compressor for 1-D float64 streams."""

    name = "zfp"

    def __init__(
        self,
        bound: float = 1e-3,
        mode: ErrorBoundMode = ErrorBoundMode.ABSOLUTE,
        backend: str = "zlib",
        level: int = 6,
        engine: str | None = None,
    ) -> None:
        if mode is ErrorBoundMode.LOSSLESS:
            raise CompressorError("ZFP-like is a lossy compressor")
        super().__init__(mode, bound)
        self._backend = backend
        self._level = int(level)
        self._set_engine(engine)

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling).
        return {
            "bound": self.bound,
            "mode": self.mode,
            "backend": self._backend,
            "level": self._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    # -- fixed-point / embedded coding machinery ---------------------------------------

    def _encode_abs(self, array: np.ndarray, bound: float) -> bytes:
        count = array.size
        padded_len = ((count + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        padded = np.zeros(padded_len, dtype=np.float64)
        padded[:count] = array
        blocks = padded.reshape(-1, BLOCK_SIZE)

        # Orthonormal transform: coefficient error equals value error in the
        # 2-norm; a per-coefficient quantization step of `bound` keeps the
        # reconstruction within ~2*bound per point, so use bound/2.
        coeffs = blocks @ _DCT4.T
        step = bound / 2.0
        codes = np.rint(coeffs / step).astype(np.int64)

        # Embedded coding stand-in: each block stores its coefficients with
        # exactly as many bit planes as its largest coefficient needs (ZFP's
        # fixed-accuracy mode truncates bit planes the bound allows; it does
        # NOT run a dictionary coder afterwards, which is why it collapses on
        # spiky data — blocks with large high-frequency coefficients keep all
        # their planes).
        zigzag = (np.abs(codes) * 2 - (codes < 0)).astype(np.uint64).reshape(-1)
        per_block_max = zigzag.reshape(-1, BLOCK_SIZE).max(axis=1)
        widths = np.zeros(per_block_max.size, dtype=np.uint8)
        nonzero = per_block_max > 0
        if nonzero.any():
            widths[nonzero] = (
                np.floor(np.log2(per_block_max[nonzero].astype(np.float64))).astype(np.int64)
                + 1
            )
        # Guard against log2 rounding at exact powers of two.
        too_small = (np.uint64(1) << widths.astype(np.uint64)) <= per_block_max
        widths[too_small] += 1

        per_coeff_width = np.repeat(widths, BLOCK_SIZE).astype(np.int64)
        packed, total_bits = self._engine_impl.pack_bitfields(zigzag, per_coeff_width)

        header = struct.pack("<dQQ", step, zigzag.size, total_bits)
        return header + widths.tobytes() + packed.tobytes()

    def _decode_abs(self, blob: bytes, count: int) -> np.ndarray:
        step, total, total_bits = struct.unpack_from("<dQQ", blob, 0)
        offset = struct.calcsize("<dQQ")
        num_blocks = total // BLOCK_SIZE
        widths = np.frombuffer(blob, dtype=np.uint8, count=num_blocks, offset=offset)
        offset += num_blocks
        packed = np.frombuffer(blob, dtype=np.uint8, offset=offset)
        bits = (
            np.unpackbits(packed)[:total_bits]
            if total_bits
            else np.zeros(0, dtype=np.uint8)
        )

        per_coeff_width = np.repeat(widths.astype(np.int64), BLOCK_SIZE)
        zigzag = unpack_bitfields(bits, per_coeff_width)

        signs = (zigzag & np.uint64(1)).astype(np.int64)
        magnitudes = (zigzag >> np.uint64(1)).astype(np.int64) + signs
        codes = np.where(signs == 1, -magnitudes, magnitudes)
        coeffs = codes.astype(np.float64).reshape(-1, BLOCK_SIZE) * step
        blocks = coeffs @ _DCT4  # inverse of an orthonormal transform
        return blocks.reshape(-1)[:count].copy()

    # -- public API ---------------------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Block-transform + embedded encoding under the configured bound."""

        array = self._as_float64(data)
        if self.mode is ErrorBoundMode.ABSOLUTE:
            return pack_header(_TAG_ABS, array.size, b"") + self._encode_abs(
                array, self.bound
            )
        # Relative mode: log-preprocessing then absolute-bound compression,
        # exactly how the paper evaluated ZFP for Figure 8.
        log_mag, signs, zero_mask = quantization.log_transform(array)
        log_bound = quantization.relative_to_log_absolute(self.bound)
        body = self._encode_abs(log_mag, log_bound)
        sign_bits = np.packbits((signs < 0).astype(np.uint8))
        zero_bits = np.packbits(zero_mask.astype(np.uint8))
        side = lossless_compress_bytes(
            sign_bits.tobytes() + zero_bits.tobytes(), self._backend, self._level
        )
        extra = struct.pack("<QQ", len(body), len(side))
        return pack_header(_TAG_REL, array.size, extra) + body + side

    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct within the error bound from either payload layout."""

        tag, count, extra, offset = unpack_header(blob)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        if tag == _TAG_ABS:
            return self._decode_abs(blob[offset:], count)
        if tag != _TAG_REL:
            raise CompressorError(f"blob tag {tag} is not a ZFP-like blob")
        body_len, side_len = struct.unpack("<QQ", extra)
        body = blob[offset : offset + body_len]
        side = blob[offset + body_len : offset + body_len + side_len]
        log_mag = self._decode_abs(body, count)
        side_raw = lossless_decompress_bytes(side, self._backend)
        packed_len = (count + 7) // 8
        sign_bits = np.unpackbits(np.frombuffer(side_raw[:packed_len], dtype=np.uint8))[
            :count
        ]
        zero_bits = np.unpackbits(
            np.frombuffer(side_raw[packed_len : 2 * packed_len], dtype=np.uint8)
        )[:count]
        signs = np.where(sign_bits == 1, -1.0, 1.0)
        return quantization.log_inverse_transform(log_mag, signs, zero_bits.astype(bool))


register_compressor("zfp", ZFPLikeCompressor)
