"""Solution B: SZ with complex-type support.

Solution B (Section 4.2) improves on plain SZ for quantum state data in two
ways:

* the real and the imaginary parts are predicted/compressed as two separate
  streams instead of one interleaved stream, which improves the prediction
  accuracy (neighbouring reals resemble each other much more than a real
  resembles the following imaginary), and
* the maximum number of quantization bins is lowered from 65,536 to 16,384,
  which speeds up encoding at tight error bounds.

It reuses the absolute/relative machinery of :mod:`repro.compression.sz` on
each half-stream.
"""

from __future__ import annotations

import struct

import numpy as np

from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)
from .sz import SZCompressor

__all__ = ["SZComplexCompressor", "COMPLEX_QUANTIZATION_BINS"]

_TAG = 0x07

#: Solution B's reduced maximum number of quantization bins.
COMPLEX_QUANTIZATION_BINS = 16384


class SZComplexCompressor(Compressor):
    """Solution B: per-component SZ compression of complex amplitude data."""

    name = "sz-complex"

    def __init__(
        self,
        bound: float = 1e-3,
        mode: ErrorBoundMode = ErrorBoundMode.RELATIVE,
        max_bins: int = COMPLEX_QUANTIZATION_BINS,
        backend: str = "zlib",
        level: int = 6,
        engine: str | None = None,
    ) -> None:
        if mode is ErrorBoundMode.LOSSLESS:
            raise CompressorError("SZ-complex is a lossy compressor")
        super().__init__(mode, bound)
        self._set_engine(engine)
        self._inner = SZCompressor(
            bound=bound,
            mode=mode,
            max_bins=max_bins,
            backend=backend,
            level=level,
            engine=self._engine_impl,
        )

    @property
    def max_bins(self) -> int:
        """Quantization-bin budget of the inner SZ codec."""

        return self._inner.max_bins

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling); the
        # inner per-component SZ instance is rebuilt on unpickle.
        return {
            "bound": self.bound,
            "mode": self.mode,
            "max_bins": self._inner.max_bins,
            "backend": self._inner._backend,
            "level": self._inner._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def compress(self, data: np.ndarray) -> bytes:
        """Split interleaved (real, imag) into two SZ streams (Solution B)."""

        array = self._as_float64(data)
        # Treat the stream as interleaved (real, imaginary) pairs; a trailing
        # unpaired value (odd length) joins the real stream.
        real_part = array[0::2]
        imag_part = array[1::2]
        real_blob = self._inner.compress(real_part)
        imag_blob = self._inner.compress(imag_part)
        extra = struct.pack("<QQ", len(real_blob), len(imag_blob))
        return pack_header(_TAG, array.size, extra) + real_blob + imag_blob

    def decompress(self, blob: bytes) -> np.ndarray:
        """Decode both SZ streams and re-interleave into one array."""

        tag, count, extra, offset = unpack_header(blob)
        if tag != _TAG:
            raise CompressorError(f"blob tag {tag} is not a Solution B blob")
        real_len, imag_len = struct.unpack("<QQ", extra)
        real_blob = blob[offset : offset + real_len]
        imag_blob = blob[offset + real_len : offset + real_len + imag_len]
        real_part = self._inner.decompress(real_blob)
        imag_part = self._inner.decompress(imag_blob)
        out = np.empty(count, dtype=np.float64)
        out[0::2] = real_part
        out[1::2] = imag_part
        return out


register_compressor("sz-complex", SZComplexCompressor)
register_compressor("solution-b", SZComplexCompressor)
