"""Bit-plane truncation and XOR leading-zero coding primitives.

These are the building blocks of the paper's tailored lossy compressor
(Solution C, Section 4.2):

1. **Significant-bit count** (Eq. 12): the number of leading bits of an IEEE
   754 double that must be preserved to respect a pointwise relative error
   bound ``eps``::

       Sig_Bit_Count = Bit_Count(Sign & Exp) - EXP(eps)

   where ``Bit_Count(Sign & Exp) = 12`` for double precision and ``EXP(eps)``
   is the (negative) binary exponent of the bound, e.g. ``EXP(0.01) = -7``.

2. **Bit-plane truncation**: zeroing all bits below the significant count.
   Because only low-order mantissa bits are dropped, the decompressed
   magnitude never exceeds the original and never falls below
   ``|d| * (1 - eps)`` — exactly the guarantee stated in Section 3.7.

3. **XOR leading-zero reduction**: each (truncated) value is XOR-ed with its
   predecessor; the number of identical leading bytes is stored as a two-bit
   code and only the differing suffix bytes are emitted.

Everything operates on whole NumPy arrays; there are no per-element Python
loops (see the HPC-Python guides on vectorisation).
"""

from __future__ import annotations

import math

import numpy as np

from .interface import CompressorError

__all__ = [
    "DOUBLE_SIGN_EXP_BITS",
    "significant_bit_count",
    "bytes_to_keep",
    "truncate_bitplanes",
    "truncation_table",
    "xor_delta_encode",
    "xor_delta_decode",
    "leading_zero_bytes",
    "pack_leading_zero_stream",
    "unpack_leading_zero_stream",
]

#: Number of bits occupied by the sign and exponent of an IEEE 754 double.
DOUBLE_SIGN_EXP_BITS = 12


def significant_bit_count(relative_bound: float) -> int:
    """Eq. 12: leading bits of a double to keep for a relative bound.

    ``EXP(eps)`` is ``floor(log2(eps))`` (e.g. ``EXP(0.01) = -7``), so the
    count grows as the bound tightens.  The result is clamped to ``[1, 64]``.
    """

    if relative_bound <= 0:
        raise CompressorError("relative error bound must be positive")
    if relative_bound >= 1.0:
        return DOUBLE_SIGN_EXP_BITS
    exp_of_bound = math.floor(math.log2(relative_bound))
    count = DOUBLE_SIGN_EXP_BITS - exp_of_bound
    return max(1, min(64, count))


def bytes_to_keep(relative_bound: float) -> int:
    """Number of leading *bytes* of each double kept after truncation.

    Solution C truncates on byte boundaries (the suffix bytes are what the
    XOR/leading-zero stage and Zstd operate on), so the significant bit count
    is rounded up to the next byte.  Keeping more bits than required can only
    shrink the error, never grow it.
    """

    return max(1, min(8, math.ceil(significant_bit_count(relative_bound) / 8)))


def truncate_bitplanes(data: np.ndarray, keep_bits: int) -> np.ndarray:
    """Zero all but the *keep_bits* most significant bits of each double."""

    if not 1 <= keep_bits <= 64:
        raise CompressorError("keep_bits must be in [1, 64]")
    data = np.ascontiguousarray(data, dtype=np.float64)
    bits = data.view(np.uint64)
    if keep_bits == 64:
        return data.copy()
    mask = np.uint64(~((1 << (64 - keep_bits)) - 1) & 0xFFFFFFFFFFFFFFFF)
    truncated = bits & mask
    return truncated.view(np.float64).copy()


def truncation_table(value: float, max_mantissa_bits: int = 10) -> list[dict]:
    """Reproduce Figure 13(b): decompressed value and relative error as the
    kept mantissa width shrinks from *max_mantissa_bits* down to zero.

    Each row keeps the 12 sign/exponent bits plus ``m`` mantissa bits; the
    paper's example value 3.9921875 then steps through 3.984375, 3.96875,
    3.9375, 3.875, 3.75, 3.5, ... exactly as the figure lists.

    Returns a list of ``{"mantissa_bits", "bits_kept", "value",
    "relative_error"}`` rows, tightest first.
    """

    if max_mantissa_bits < 0 or max_mantissa_bits > 52:
        raise CompressorError("max_mantissa_bits must be in [0, 52]")
    rows = []
    for mantissa_bits in range(max_mantissa_bits, -1, -1):
        kept = DOUBLE_SIGN_EXP_BITS + mantissa_bits
        truncated = float(truncate_bitplanes(np.array([value]), kept)[0])
        rel = abs(value - truncated) / abs(value) if value != 0 else 0.0
        rows.append(
            {
                "mantissa_bits": mantissa_bits,
                "bits_kept": kept,
                "value": truncated,
                "relative_error": rel,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# XOR delta + leading-zero byte coding
# ---------------------------------------------------------------------------


def xor_delta_encode(words: np.ndarray) -> np.ndarray:
    """XOR every 64-bit word with its predecessor (first word unchanged)."""

    words = np.ascontiguousarray(words, dtype=np.uint64)
    xored = words.copy()
    xored[1:] ^= words[:-1]
    return xored


def xor_delta_decode(xored: np.ndarray) -> np.ndarray:
    """Inverse of :func:`xor_delta_encode`.

    The prefix-XOR scan is sequential by nature; it is computed with
    ``np.bitwise_xor.accumulate`` which runs in C.
    """

    xored = np.ascontiguousarray(xored, dtype=np.uint64)
    return np.bitwise_xor.accumulate(xored)


def leading_zero_bytes(xored: np.ndarray, keep_bytes: int) -> np.ndarray:
    """Number of leading zero bytes (big-endian order) of each XOR-ed word,
    clamped to the two-bit code range ``[0, 3]`` used by Solution C."""

    byte_matrix = _word_bytes(xored, keep_bytes)
    nonzero = byte_matrix != 0
    # Index of the first non-zero byte per row; rows that are all zero get
    # keep_bytes.
    first_nonzero = np.where(
        nonzero.any(axis=1), nonzero.argmax(axis=1), keep_bytes
    )
    return np.minimum(first_nonzero, 3).astype(np.uint8)


def _word_bytes(words: np.ndarray, keep_bytes: int) -> np.ndarray:
    """View *words* as a ``(n, keep_bytes)`` big-endian byte matrix."""

    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words[:, None].view(np.uint8).reshape(words.size, 8)
    # words are little-endian in memory; big-endian (most significant first)
    # ordering places the kept bytes in the leading columns.
    big_endian = as_bytes[:, ::-1]
    return big_endian[:, :keep_bytes]


def pack_leading_zero_stream(xored: np.ndarray, keep_bytes: int) -> tuple[bytes, bytes]:
    """Encode XOR-ed words as (two-bit codes, suffix bytes).

    For each word the two-bit code ``c`` records ``min(leading zero bytes, 3)``
    and only the remaining ``keep_bytes - c`` bytes are emitted.  Returns the
    packed code array and the concatenated suffix bytes.
    """

    if not 1 <= keep_bytes <= 8:
        raise CompressorError("keep_bytes must be in [1, 8]")
    codes = leading_zero_bytes(xored, keep_bytes)
    codes = np.minimum(codes, keep_bytes).astype(np.uint8)
    byte_matrix = _word_bytes(xored, keep_bytes)
    columns = np.arange(keep_bytes, dtype=np.uint8)[None, :]
    keep_mask = columns >= codes[:, None]
    suffix = byte_matrix[keep_mask]
    # Pack the 2-bit codes, four per byte (MSB-first, same layout the
    # unpackbits/packbits detour produced): extract both bits of each code
    # directly instead of expanding all eight bit planes per byte.
    code_bits = np.empty((codes.size, 2), dtype=np.uint8)
    code_bits[:, 0] = codes >> 1
    code_bits[:, 1] = codes & 1
    packed_codes = np.packbits(code_bits.reshape(-1))
    return packed_codes.tobytes(), suffix.tobytes()


def unpack_leading_zero_stream(
    packed_codes: bytes, suffix: bytes, count: int, keep_bytes: int
) -> np.ndarray:
    """Inverse of :func:`pack_leading_zero_stream`; returns uint64 XOR-ed words."""

    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    code_bits = np.unpackbits(
        np.frombuffer(packed_codes, dtype=np.uint8), count=count * 2
    ).reshape(count, 2)
    codes = (code_bits[:, 0] << 1) | code_bits[:, 1]
    codes = np.minimum(codes, keep_bytes)

    columns = np.arange(keep_bytes, dtype=np.uint8)[None, :]
    keep_mask = columns >= codes[:, None]
    byte_matrix = np.zeros((count, keep_bytes), dtype=np.uint8)
    suffix_array = np.frombuffer(suffix, dtype=np.uint8)
    expected = int(keep_mask.sum())
    if suffix_array.size != expected:
        raise CompressorError(
            f"suffix stream has {suffix_array.size} bytes, expected {expected}"
        )
    byte_matrix[keep_mask] = suffix_array

    # Rebuild the 64-bit words: kept bytes are the most significant ones.
    full = np.zeros((count, 8), dtype=np.uint8)
    full[:, :keep_bytes] = byte_matrix
    # Convert from big-endian byte rows back to native uint64.
    words = full[:, ::-1].copy().view(np.uint64).reshape(count)
    return words
