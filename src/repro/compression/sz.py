"""Solution A: SZ-style prediction + quantization + Huffman + lossless.

SZ 2.1 is the strongest existing error-bounded lossy compressor the paper
evaluates (Section 4.1) and the baseline that Solutions C/D are measured
against.  For the 1-D quantum state stream its pipeline is:

1. *Lorenzo prediction*: predict each point from its (decompressed)
   predecessor.
2. *Linear-scaling quantization*: encode the prediction error as an integer
   multiple of ``2 * error_bound``.
3. *Huffman encoding* of the quantization codes.
4. *Lossless* (Zstd) compression of everything.

This implementation quantizes every value onto the global grid with pitch
``2 * error_bound`` and then delta-codes the grid indices.  For a 1-D Lorenzo
predictor this is algebraically the same transform (the delta of grid codes
*is* the quantized prediction error) while keeping every stage vectorised;
the pointwise error bound is enforced by the grid pitch exactly as in SZ.
Values whose grid code does not fit the configured quantization-bin range are
stored verbatim as "unpredictable" values, mirroring SZ's escape mechanism.

Pointwise *relative* bounds are handled the way SZ 2.1 does it: the data is
mapped to the logarithm domain and compressed there with the equivalent
absolute bound (plus a sign stream and a zero-position stream).
"""

from __future__ import annotations

import struct

import numpy as np

from . import huffman, quantization
from .engines import CodecEngine, resolve_engine
from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)
from .lossless import lossless_compress_bytes, lossless_decompress_bytes

__all__ = ["SZCompressor", "DEFAULT_QUANTIZATION_BINS"]

_TAG_ABS = 0x05
_TAG_REL = 0x06

#: SZ 2.1's default maximum number of quantization bins (Section 4.2).
DEFAULT_QUANTIZATION_BINS = 65536


# ---------------------------------------------------------------------------
# Shared absolute-error-bounded kernel (also used by Solution B)
# ---------------------------------------------------------------------------


def compress_absolute_stream(
    array: np.ndarray,
    bound: float,
    max_bins: int,
    backend: str,
    level: int,
    engine: str | CodecEngine | None = None,
) -> bytes:
    """Compress a float64 stream under an absolute error bound.

    Returns a payload (without the outer header) containing the Huffman-coded
    bounded delta codes, the escape positions and raw values, all passed
    through the lossless backend.  ``engine`` selects the kernel engine for
    quantization and Huffman packing (every engine emits the same bytes).
    """

    impl = resolve_engine(engine)
    codes = impl.sz_quantize(array, bound)
    deltas = np.empty_like(codes)
    if codes.size:
        deltas[0] = codes[0]
        deltas[1:] = codes[1:] - codes[:-1]

    half_bins = max_bins // 2
    predictable = np.abs(deltas) < half_bins
    # The first value is always stored raw so the decoder has an anchor that
    # does not depend on the quantization grid.
    if deltas.size:
        predictable[0] = False

    bounded = np.where(predictable, deltas, half_bins)  # escape symbol
    escape_values = array[~predictable]

    huff_blob = huffman.HuffmanCodec(engine=impl).encode(bounded.astype(np.int64))
    escape_blob = escape_values.astype("<f8").tobytes()

    payload = (
        struct.pack("<dIQ", bound, max_bins, escape_values.size)
        + struct.pack("<Q", len(huff_blob))
        + huff_blob
        + escape_blob
    )
    return lossless_compress_bytes(payload, backend, level)


def decompress_absolute_stream(
    blob: bytes, count: int, backend: str, engine: str | CodecEngine | None = None
) -> np.ndarray:
    """Inverse of :func:`compress_absolute_stream`."""

    impl = resolve_engine(engine)
    payload = lossless_decompress_bytes(blob, backend)
    bound, max_bins, num_escapes = struct.unpack_from("<dIQ", payload, 0)
    offset = struct.calcsize("<dIQ")
    (huff_len,) = struct.unpack_from("<Q", payload, offset)
    offset += 8
    bounded = huffman.HuffmanCodec(engine=impl).decode(
        payload[offset : offset + huff_len]
    )
    offset += huff_len
    escape_values = np.frombuffer(
        payload, dtype="<f8", count=num_escapes, offset=offset
    ).astype(np.float64)

    if bounded.size != count:
        raise CompressorError(
            f"SZ stream decoded {bounded.size} codes, expected {count}"
        )
    half_bins = max_bins // 2
    escape_indices = np.flatnonzero(bounded == half_bins)
    if escape_indices.size != num_escapes:
        raise CompressorError(
            f"SZ stream decoded {escape_indices.size} escapes, "
            f"header claims {num_escapes}"
        )
    # Rebuilding grid codes from bounded deltas + escape anchors is one of
    # the engine hot loops (cumsum + per-segment re-anchoring + dequantize).
    return impl.sz_reconstruct(bounded, escape_indices, escape_values, bound)


# ---------------------------------------------------------------------------
# The compressor class
# ---------------------------------------------------------------------------


class SZCompressor(Compressor):
    """Solution A: SZ-style compressor for 1-D float64 streams.

    Parameters
    ----------
    bound:
        The error bound value.
    mode:
        ``ErrorBoundMode.ABSOLUTE`` or ``ErrorBoundMode.RELATIVE``
        (default relative, which is what the simulator uses).
    max_bins:
        Maximum number of quantization bins (65536 in SZ 2.1).
    engine:
        Kernel engine for the hot loops (``"numpy"``, ``"numba"`` or a
        resolved :class:`~repro.compression.engines.CodecEngine`); all
        engines are blob-for-blob identical.
    """

    name = "sz"

    def __init__(
        self,
        bound: float = 1e-3,
        mode: ErrorBoundMode = ErrorBoundMode.RELATIVE,
        max_bins: int = DEFAULT_QUANTIZATION_BINS,
        backend: str = "zlib",
        level: int = 6,
        engine: str | CodecEngine | None = None,
    ) -> None:
        if mode is ErrorBoundMode.LOSSLESS:
            raise CompressorError("SZ is a lossy compressor; use LosslessCompressor")
        super().__init__(mode, bound)
        if max_bins < 4:
            raise CompressorError("max_bins must be at least 4")
        self._max_bins = int(max_bins)
        self._backend = backend
        self._level = int(level)
        self._set_engine(engine)

    @property
    def max_bins(self) -> int:
        """Quantization-bin budget for the linear-scaling stage."""

        return self._max_bins

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling).
        return {
            "bound": self.bound,
            "mode": self.mode,
            "max_bins": self._max_bins,
            "backend": self._backend,
            "level": self._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    # -- absolute mode ------------------------------------------------------------

    def _compress_abs(self, array: np.ndarray) -> bytes:
        payload = compress_absolute_stream(
            array,
            self.bound,
            self._max_bins,
            self._backend,
            self._level,
            engine=self._engine_impl,
        )
        return pack_header(_TAG_ABS, array.size, b"") + payload

    def _decompress_abs(self, blob: bytes, count: int, offset: int) -> np.ndarray:
        return decompress_absolute_stream(
            blob[offset:], count, self._backend, engine=self._engine_impl
        )

    # -- relative mode (log transform) ----------------------------------------------

    def _compress_rel(self, array: np.ndarray) -> bytes:
        log_mag, signs, zero_mask = quantization.log_transform(array)
        log_bound = quantization.relative_to_log_absolute(self.bound)
        body = compress_absolute_stream(
            log_mag,
            log_bound,
            self._max_bins,
            self._backend,
            self._level,
            engine=self._engine_impl,
        )
        sign_bits = np.packbits((signs < 0).astype(np.uint8))
        zero_bits = np.packbits(zero_mask.astype(np.uint8))
        side = lossless_compress_bytes(
            sign_bits.tobytes() + zero_bits.tobytes(), self._backend, self._level
        )
        extra = struct.pack("<QQ", len(body), len(side))
        return pack_header(_TAG_REL, array.size, extra) + body + side

    def _decompress_rel(self, blob: bytes, count: int, extra: bytes, offset: int) -> np.ndarray:
        body_len, side_len = struct.unpack("<QQ", extra)
        body = blob[offset : offset + body_len]
        side = blob[offset + body_len : offset + body_len + side_len]
        log_mag = decompress_absolute_stream(
            body, count, self._backend, engine=self._engine_impl
        )
        side_raw = lossless_decompress_bytes(side, self._backend)
        packed_len = (count + 7) // 8
        sign_bits = np.unpackbits(
            np.frombuffer(side_raw[:packed_len], dtype=np.uint8)
        )[:count]
        zero_bits = np.unpackbits(
            np.frombuffer(side_raw[packed_len : 2 * packed_len], dtype=np.uint8)
        )[:count]
        signs = np.where(sign_bits == 1, -1.0, 1.0)
        return quantization.log_inverse_transform(
            log_mag, signs, zero_bits.astype(bool)
        )

    # -- public API -------------------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Predict, quantize within the bound, Huffman-pack (paper Sec. 4)."""

        array = self._as_float64(data)
        if array.size == 0:
            # Empty blocks share the regular absolute-stream payload layout
            # (<dIQ> header + Huffman length + empty Huffman blob) instead of
            # the seed's ad-hoc <dIQQ> struct, so every SZ payload now parses
            # with the same reader.  Decoders still accept the old layout:
            # they short-circuit on count == 0 without touching the payload.
            return pack_header(_TAG_ABS, 0, b"") + compress_absolute_stream(
                array,
                self.bound,
                self._max_bins,
                self._backend,
                self._level,
                engine=self._engine_impl,
            )
        if self.mode is ErrorBoundMode.ABSOLUTE:
            return self._compress_abs(array)
        return self._compress_rel(array)

    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct within the error bound from either payload layout."""

        tag, count, extra, offset = unpack_header(blob)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        if tag == _TAG_ABS:
            return self._decompress_abs(blob, count, offset)
        if tag == _TAG_REL:
            return self._decompress_rel(blob, count, extra, offset)
        raise CompressorError(f"blob tag {tag} is not an SZ blob")


register_compressor("sz", SZCompressor)
register_compressor("solution-a", SZCompressor)
