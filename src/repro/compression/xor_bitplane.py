"""Solution C: XOR leading-zero reduction + bit-plane truncation + lossless.

This is the paper's tailored lossy compressor (Section 4.2) and the one its
final simulator uses.  The pipeline for each block of doubles is:

1. Compute the number of significant leading bits from the pointwise relative
   error bound (Eq. 12) and truncate every value to that many bits
   (byte-aligned).  Truncation only ever shrinks the magnitude, so the
   decompressed value ``|d'|`` always lies in ``(|d|(1 - eps), |d|]`` — the
   guarantee quoted in Section 3.7.
2. XOR every truncated word with its predecessor and record the number of
   identical leading bytes with a two-bit code, emitting only the differing
   suffix bytes (the "XOR leading-zero data reduction" step borrowed from
   FPC).
3. Compress the code stream and the suffix stream with the lossless backend
   (Zstd in the paper, zlib here — see DESIGN.md).

Compared with SZ (Solution A/B) this removes the three costly stages —
prediction, quantization and Huffman coding — which is why the paper reports
it as both faster and, on spiky quantum state data, at least as compressible.
The truncation errors depend only on each value's own low-order bits, so the
compression errors are uncorrelated across data points (evaluated in
Figure 14 and by ``repro.compression.metrics.lag1_autocorrelation``).
"""

from __future__ import annotations

import struct

import numpy as np

from . import bitplane
from .interface import (
    Compressor,
    CompressorError,
    ErrorBoundMode,
    pack_header,
    register_compressor,
    unpack_header,
)
from .lossless import lossless_compress_bytes, lossless_decompress_bytes

__all__ = ["XorBitplaneCompressor"]

_TAG = 0x03


class XorBitplaneCompressor(Compressor):
    """The paper's Solution C lossy compressor.

    Parameters
    ----------
    bound:
        Pointwise relative error bound (one of the paper's levels 1e-5..1e-1,
        though any positive value works).
    backend:
        Lossless backend for the final stage (default zlib, standing in for
        Zstd).
    level:
        Lossless backend compression level.
    engine:
        Kernel engine for the leading-zero (un)packing hot loop (``"numpy"``,
        ``"numba"``); all engines are blob-for-blob identical.
    """

    name = "xor-bitplane"

    def __init__(
        self,
        bound: float = 1e-3,
        backend: str = "zlib",
        level: int = 6,
        engine: str | None = None,
    ) -> None:
        super().__init__(ErrorBoundMode.RELATIVE, bound)
        self._backend = backend
        self._level = int(level)
        self._keep_bytes = bitplane.bytes_to_keep(bound)
        self._set_engine(engine)

    @property
    def keep_bytes(self) -> int:
        """Leading bytes of each double preserved by the truncation stage."""

        return self._keep_bytes

    def __getstate__(self) -> dict:
        # Constructor arguments only (cheap process-pool pickling); the
        # derived truncation width is recomputed on unpickle.
        return {
            "bound": self.bound,
            "backend": self._backend,
            "level": self._level,
            "engine": self._engine_name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    # -- compression ---------------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """XOR-condition exponents, keep leading bit-planes (Solution C)."""

        array = self._as_float64(data)
        keep_bits = self._keep_bytes * 8

        # Subnormal doubles have no usable exponent field, so bit-plane
        # truncation cannot honour a relative bound on them; they are stored
        # verbatim in a (normally empty) exception stream.  Quantum amplitude
        # data never contains subnormals in practice, but the compressor must
        # not silently violate its contract when fed one.
        magnitude = np.abs(array)
        exceptional = (magnitude > 0.0) & (magnitude < np.finfo(np.float64).tiny)
        if exceptional.any():
            working = array.copy()
            working[exceptional] = 0.0
            exc_indices = np.flatnonzero(exceptional).astype("<u8")
            exc_values = array[exceptional].astype("<f8")
            exceptions = exc_indices.tobytes() + exc_values.tobytes()
        else:
            working = array
            exceptions = b""

        truncated = bitplane.truncate_bitplanes(working, keep_bits)
        words = truncated.view(np.uint64)
        xored = bitplane.xor_delta_encode(words)
        packed_codes, suffix = self._engine_impl.pack_leading_zero(
            xored, self._keep_bytes
        )
        codes_blob = lossless_compress_bytes(packed_codes, self._backend, self._level)
        suffix_blob = lossless_compress_bytes(suffix, self._backend, self._level)
        exc_blob = lossless_compress_bytes(exceptions, self._backend, self._level)
        extra = struct.pack(
            "<BdIIIQ",
            self._keep_bytes,
            self.bound,
            len(codes_blob),
            len(suffix_blob),
            len(exc_blob),
            int(exceptional.sum()),
        )
        return pack_header(_TAG, array.size, extra) + codes_blob + suffix_blob + exc_blob

    # -- decompression ----------------------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        """Rebuild doubles from kept planes; exceptions restore exact values."""

        tag, count, extra, offset = unpack_header(blob)
        if tag != _TAG:
            raise CompressorError(f"blob tag {tag} is not a Solution C blob")
        keep_bytes, _bound, codes_len, suffix_len, exc_len, exc_count = struct.unpack(
            "<BdIIIQ", extra
        )
        codes_blob = blob[offset : offset + codes_len]
        suffix_blob = blob[offset + codes_len : offset + codes_len + suffix_len]
        exc_blob = blob[
            offset + codes_len + suffix_len : offset + codes_len + suffix_len + exc_len
        ]
        packed_codes = lossless_decompress_bytes(codes_blob, self._backend)
        suffix = lossless_decompress_bytes(suffix_blob, self._backend)
        xored = self._engine_impl.unpack_leading_zero(
            packed_codes, suffix, count, keep_bytes
        )
        words = bitplane.xor_delta_decode(xored)
        values = words.view(np.float64).copy()
        if exc_count:
            exceptions = lossless_decompress_bytes(exc_blob, self._backend)
            exc_indices = np.frombuffer(exceptions, dtype="<u8", count=exc_count)
            exc_values = np.frombuffer(
                exceptions, dtype="<f8", count=exc_count, offset=8 * exc_count
            )
            values[exc_indices.astype(np.int64)] = exc_values
        return values


register_compressor("xor-bitplane", XorBitplaneCompressor)
register_compressor("solution-c", XorBitplaneCompressor)
