"""Compressed block cache (Section 3.4).

Many circuits — Grover's search above all — keep large groups of amplitudes
identical, so the same (gate, compressed-input-blocks) pattern recurs over and
over.  The cache stores, per pattern, the compressed *output* blocks, letting
the simulator skip decompression, the gate kernel and recompression entirely
on a hit.

The paper's design: 64 cache lines per rank, least-recently-used replacement,
a line holds ``(OP, CB1, CB2, CB1', CB2')``; the cache is disabled when the
hit rate stays at zero (random circuits), so misses stop costing lookups.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "BlockCache"]


@dataclass
class CacheStats:
    """Hit/miss counters plus the disable state."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    disabled: bool = False

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""

        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""

        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        """JSON-ready mapping of the counter values and hit rate."""

        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "disabled": self.disabled,
        }


def _digest(blob: bytes | None) -> bytes:
    """Short stable digest of a compressed blob (None for absent blocks)."""

    if blob is None:
        return b"\x00" * 16
    return hashlib.blake2b(blob, digest_size=16).digest()


class BlockCache:
    """LRU cache keyed on (gate operation, compressed input blocks).

    Parameters
    ----------
    lines:
        Maximum number of cache lines (64 in the paper).
    miss_disable_threshold:
        After this many lookups with zero hits the cache disables itself,
        mirroring the paper's "disable if the hit rate is always zero" rule.
        ``None`` never disables.
    """

    def __init__(self, lines: int = 64, miss_disable_threshold: int | None = 256) -> None:
        if lines < 1:
            raise ValueError("cache must have at least one line")
        self._lines = int(lines)
        self._threshold = miss_disable_threshold
        self._entries: "OrderedDict[bytes, tuple[bytes, bytes | None]]" = OrderedDict()
        self.stats = CacheStats()
        # Lookups and insertions may come from the executor's worker threads;
        # one lock keeps the LRU order and the counters consistent.
        self._mutex = threading.RLock()

    @property
    def lines(self) -> int:
        """Capacity of the cache in entries."""

        return self._lines

    @property
    def enabled(self) -> bool:
        """Whether caching is active (False once self-disabled)."""

        return not self.stats.disabled

    def _key(self, op_key: tuple, blob1: bytes, blob2: bytes | None) -> bytes:
        hasher = hashlib.blake2b(digest_size=20)
        hasher.update(repr(op_key).encode())
        hasher.update(_digest(blob1))
        hasher.update(_digest(blob2))
        return hasher.digest()

    def lookup(
        self, op_key: tuple, blob1: bytes, blob2: bytes | None
    ) -> tuple[bytes, bytes | None] | None:
        """Return the cached output blobs for this pattern, or ``None``."""

        # Unlocked fast path: once disabled, lookups must stay free of the
        # key hashing cost (the whole point of the disable rule).  The flag
        # only ever flips False -> True, so a stale read is harmless.
        if self.stats.disabled:
            return None
        key = self._key(op_key, blob1, blob2)
        with self._mutex:
            if self.stats.disabled:
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                if (
                    self._threshold is not None
                    and self.stats.hits == 0
                    and self.stats.misses >= self._threshold
                ):
                    self.stats.disabled = True
                    self._entries.clear()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def insert(
        self,
        op_key: tuple,
        blob1: bytes,
        blob2: bytes | None,
        out1: bytes,
        out2: bytes | None,
    ) -> None:
        """Store the output blobs for this pattern (LRU eviction)."""

        if self.stats.disabled:
            return
        key = self._key(op_key, blob1, blob2)
        with self._mutex:
            if self.stats.disabled:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (out1, out2)
            self.stats.insertions += 1
            while len(self._entries) > self._lines:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def record_shard_lookup(self, hit: bool) -> None:
        """Fold one worker-shard lookup outcome into this cache's counters.

        With the process executor the lookups (and lines) live in per-worker
        shards; this object stays in the simulator purely as the aggregate
        stats sink the reports read, so shard outcomes are accounted here
        without touching the line store or the disable rule (each shard
        applies its own).
        """

        with self._mutex:
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1

    def clear(self) -> None:
        """Drop all lines and re-enable the cache (counters are kept)."""

        with self._mutex:
            self._entries.clear()
            self.stats.disabled = False

    def reset(self) -> None:
        """Drop all lines AND zero the statistics (fresh-simulator state).

        Used by the batched-run reset so each circuit sees the same cache
        behaviour — including the miss-disable rule — as a fresh simulator.
        """

        with self._mutex:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)
