"""The blocked, compressed representation of the quantum state.

:class:`CompressedStateVector` is the data structure at the heart of the
paper: the ``2^n`` amplitudes are split over simulated ranks and blocks
(:class:`~repro.distributed.partition.Partition`) and every block is held
compressed (:class:`~repro.core.blocks.BlockStore`).  Blocks are decompressed
only transiently — either into the scratch pool while a gate updates them, or
on demand when the user asks for probabilities, norms or (for small systems)
the full dense vector.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..compression.interface import Compressor
from ..distributed.comm import SimulatedCommunicator
from ..distributed.partition import Partition
from .blocks import BlockStore, CompressedBlock

__all__ = ["CompressedStateVector", "initial_rank_blocks"]


def initial_rank_blocks(
    partition: Partition,
    compressor: Compressor,
    basis_state: int,
    rank: int,
    zero_blob: bytes | None = None,
) -> tuple[dict[int, CompressedBlock], bytes | None]:
    """Build one rank's slice of ``|basis_state>`` as compressed blocks.

    The single source of truth for state initialisation: the parent-side
    :class:`CompressedStateVector` builds every rank's slice with it, and
    each :class:`~repro.distributed.ranked.RankWorker` builds its own — the
    compressors are deterministic, so both paths produce byte-identical
    blobs, which is what the ranked tier's bit-identity contract rests on.

    Parameters
    ----------
    partition:
        The rank/block decomposition.
    compressor:
        Compressor for the initial blocks.
    basis_state:
        Global basis-state index to initialise to.
    rank:
        Which rank's slice to build.
    zero_blob:
        Optional pre-compressed all-zero block, so a caller looping over
        ranks compresses the zero block once; pass ``None`` to (lazily)
        compress it here.

    Returns
    -------
    tuple
        ``(blocks, zero_blob)`` — block index → :class:`CompressedBlock`
        for this rank, and the zero blob for reuse on the next rank (still
        ``None`` when every block of this rank held the basis state).
    """

    target_rank, target_block, target_offset = partition.locate(basis_state)
    zero_block = np.zeros(partition.block_amplitudes, dtype=np.complex128)
    blocks: dict[int, CompressedBlock] = {}
    for block in range(partition.blocks_per_rank):
        if rank == target_rank and block == target_block:
            amplitudes = zero_block.copy()
            amplitudes[target_offset] = 1.0
            blob = compressor.compress(amplitudes.view(np.float64))
        else:
            if zero_blob is None:
                zero_blob = compressor.compress(zero_block.view(np.float64))
            blob = zero_blob
        blocks[block] = CompressedBlock(
            blob=blob, compressor=compressor.name, bound=compressor.bound
        )
    return blocks, zero_blob


class CompressedStateVector:
    """State vector stored as compressed blocks.

    Parameters
    ----------
    partition:
        The rank/block decomposition.
    compressor:
        Compressor used for the *initial* blocks (usually the lossless one —
        the adaptive controller swaps in lossy compressors later).
    comm:
        Optional communicator used to account for the collective operations
        (norm computations) a distributed implementation would need.
    initial_basis_state:
        Basis state to initialise to (default ``|0...0>``).
    """

    def __init__(
        self,
        partition: Partition,
        compressor: Compressor,
        comm: SimulatedCommunicator | None = None,
        initial_basis_state: int = 0,
    ) -> None:
        self._partition = partition
        self._store = BlockStore(partition)
        self._comm = comm
        if not 0 <= initial_basis_state < partition.total_amplitudes:
            raise ValueError(
                f"initial basis state {initial_basis_state} out of range"
            )
        self._initialise(compressor, initial_basis_state)

    def _initialise(self, compressor: Compressor, basis_state: int) -> None:
        partition = self._partition
        zero_blob: bytes | None = None
        for rank in range(partition.num_ranks):
            blocks, zero_blob = initial_rank_blocks(
                partition, compressor, basis_state, rank, zero_blob
            )
            for block, entry in blocks.items():
                self._store.put(rank, block, entry)

    def reset(self, compressor: Compressor, initial_basis_state: int = 0) -> None:
        """Re-initialise every block to ``|initial_basis_state>`` in place.

        The partition geometry and block table survive, so holders of a
        reference (the simulator's executor in particular) keep working —
        this is the batched-run reset path.
        """

        if not 0 <= initial_basis_state < self._partition.total_amplitudes:
            raise ValueError(
                f"initial basis state {initial_basis_state} out of range"
            )
        self._initialise(compressor, initial_basis_state)

    # -- structural accessors ---------------------------------------------------------

    @property
    def partition(self) -> Partition:
        """The rank/block partition of the simulated machine."""

        return self._partition

    @property
    def store(self) -> BlockStore:
        """The underlying compressed-block store."""

        return self._store

    @property
    def num_qubits(self) -> int:
        """Number of qubits the state vector represents."""

        return self._partition.num_qubits

    # -- block-level access -------------------------------------------------------------

    def get_block(self, rank: int, block: int) -> CompressedBlock:
        """The compressed block at (*rank*, *block*)."""

        return self._store.get(rank, block)

    def put_block(
        self, rank: int, block: int, blob: bytes, compressor: Compressor
    ) -> None:
        """Store *blob* at (*rank*, *block*), tagged with its codec name."""

        self._store.put(
            rank,
            block,
            CompressedBlock(blob=blob, compressor=compressor.name, bound=compressor.bound),
        )

    def decompress_block(
        self, rank: int, block: int, compressor: Compressor
    ) -> np.ndarray:
        """Decompress one block into a fresh complex128 array."""

        blob = self._store.get(rank, block).blob
        values = compressor.decompress(blob)
        return values.view(np.complex128)

    def iter_blocks(self) -> Iterator[tuple[tuple[int, int], CompressedBlock]]:
        """Iterate ``((rank, block), CompressedBlock)`` over every block."""

        return iter(self._store)

    # -- memory accounting ----------------------------------------------------------------

    def compressed_bytes(self) -> int:
        """Total compressed footprint across every rank."""

        return self._store.compressed_bytes()

    def footprint_bytes(self) -> int:
        """Eq. 8: compressed blocks plus two scratch blocks per rank."""

        return self._store.total_bytes_with_scratch()

    def compression_ratio(self) -> float:
        """Uncompressed size over compressed size (higher is better)."""

        return self._store.compression_ratio()

    def uncompressed_bytes(self) -> int:
        """What the dense state vector would occupy (16 bytes/amplitude)."""

        return self._partition.uncompressed_bytes()

    # -- state-level queries -----------------------------------------------------------------

    def _decompressor_for(self, entry: CompressedBlock, fallback: Compressor) -> Compressor:
        """Return a compressor able to decode *entry* (usually the fallback)."""

        # All compressors in this codebase embed a self-describing header, and
        # decompression only needs an instance of the same class; the caller
        # passes the instance currently in use, which matches because the
        # simulator recompresses every block it touches with that instance.
        return fallback

    def to_statevector(self, decompressors: dict[str, Compressor]) -> np.ndarray:
        """Materialise the full dense state vector (small systems only).

        ``decompressors`` maps compressor names to instances able to decode
        blocks produced by them (the simulator provides this).
        """

        partition = self._partition
        if partition.num_qubits > 26:
            raise ValueError(
                "refusing to materialise a state vector above 26 qubits"
            )
        state = np.empty(partition.total_amplitudes, dtype=np.complex128)
        for (rank, block), entry in self._store:
            decompressor = decompressors[entry.compressor]
            values = decompressor.decompress(entry.blob).view(np.complex128)
            start = partition.global_index(rank, block, 0)
            state[start : start + partition.block_amplitudes] = values
        return state

    def norm_squared(self, decompressors: dict[str, Compressor]) -> float:
        """Sum of squared magnitudes, computed blockwise (never densifying).

        When a communicator is attached the per-rank partial sums go through
        ``allreduce_sum`` so the collective traffic is accounted for, exactly
        as an MPI implementation would do it.
        """

        per_rank = np.zeros(self._partition.num_ranks, dtype=np.float64)
        for (rank, _block), entry in self._store:
            decompressor = decompressors[entry.compressor]
            values = decompressor.decompress(entry.blob).view(np.complex128)
            per_rank[rank] += float(np.sum(np.abs(values) ** 2))
        if self._comm is not None:
            return self._comm.allreduce_sum(per_rank)
        return float(per_rank.sum())

    def probabilities_of_block(
        self, rank: int, block: int, decompressors: dict[str, Compressor]
    ) -> np.ndarray:
        """``|a_i|^2`` for the amplitudes of one block."""

        entry = self._store.get(rank, block)
        values = decompressors[entry.compressor].decompress(entry.blob)
        return np.abs(values.view(np.complex128)) ** 2
