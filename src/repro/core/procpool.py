"""Persistent process pool with shared-memory payload transport.

The thread pool of :class:`~repro.core.executor.TaskExecutor` only scales
where the hot loop drops the GIL, and PR 2 measured that the table-driven
codec path does not: NumPy fancy-index gathers hold the GIL, so codec-bound
workloads stay serial however many worker threads exist.  This module is the
fix the ROADMAP names — a pool of *processes*, each holding warm state
(decompressor map, scratch buffers, block-cache shard) initialised once, fed
through pipes for small control messages and through
:mod:`multiprocessing.shared_memory` slot rings for block-sized payloads so
compressed blobs never ride a pickle stream.

Two worker kinds build on the same :class:`ProcessPool`:

* :class:`BlockTaskWorker` — executes the decompress → apply → recompress
  round trip of one :class:`~repro.distributed.exchange.BlockTask`
  (driven by :class:`~repro.core.executor.ProcessTaskExecutor`), and
* the circuit-fanout worker of :mod:`repro.backends.parallel`, which runs
  whole circuits on a warm per-process backend session.

Flow control is slot-based: every worker owns ``SLOTS_PER_WORKER`` input and
output slots in shared memory, a dispatch with ticket ``t`` uses slot
``t % SLOTS_PER_WORKER``, and the caller never keeps more than
``SLOTS_PER_WORKER`` tasks outstanding per worker — so a slot is only ever
rewritten after its previous payload has been fully consumed, with no locks
or frees inside the shared segments.  Payloads that do not fit their slot
fall back to inline pickling, so correctness never depends on the slot size.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import weakref
import zlib
from multiprocessing import connection as mp_connection
from multiprocessing import get_context, shared_memory

import numpy as np

from ..compression.interface import Compressor
from ..errors import (
    BlockCorruptionError,
    PoolProtocolError,
    ReproError,
    WorkerCrashedError,
)
from ..statevector import ops
from .blocks import ScratchPool
from .cache import BlockCache

__all__ = [
    "ProcessPool",
    "BlockTaskWorker",
    "WorkerCrashedError",
    "BlockCorruptionError",
    "effective_cpu_count",
    "live_pool_count",
    "SLOTS_PER_WORKER",
]

#: Outstanding tasks (and therefore shared-memory slots) per worker.  Two
#: keeps a worker busy while the parent processes its previous response
#: without growing the shared segments beyond a double buffer per direction.
SLOTS_PER_WORKER = 2

#: Shutdown sentinel sent down a worker's control pipe.
_SHUTDOWN = None

#: Every ProcessPool constructed but not yet closed.  Weak references: a
#: pool that is garbage-collected without close() (a bug, but one the
#: registry must not mask) simply drops out.  Long-lived owners that share
#: pools across many jobs — warm backend sessions under
#: :class:`repro.serve.SimulationService` — assert against
#: :func:`live_pool_count` that drain-and-close leaked nothing.
_LIVE_POOLS: "weakref.WeakSet[ProcessPool]" = weakref.WeakSet()


def live_pool_count() -> int:
    """Number of :class:`ProcessPool` instances currently open.

    Counts pools constructed in this process whose :meth:`ProcessPool.close`
    has not run yet.  Used by service-lifecycle tests as the zero-leak
    oracle: the count after a drain-and-close must equal the count before
    the service started.
    """

    return len(_LIVE_POOLS)


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware).

    ``os.cpu_count()`` reports the machine, not the container or cpuset this
    process is pinned to; benchmark speedup curves and worker-count defaults
    must use the effective number or container runs overstate the available
    parallelism.
    """

    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def raise_worker_error(reply: tuple, context: str) -> None:
    """Re-raise an ``("err", exc, traceback)`` worker reply in the parent.

    The original exception object is re-raised when it survived pickling, so
    callers see the same type parallel or not; the worker-side traceback is
    attached as a note (or wrapped, pre-3.11) either way.
    """

    _, exc, worker_traceback = reply
    detail = f"{context}:\n{worker_traceback}"
    if exc is None:
        raise ReproError(detail)
    if hasattr(exc, "add_note"):  # Python >= 3.11
        exc.add_note(detail)
        raise exc
    raise exc from ReproError(detail)  # pragma: no cover - py3.10 path


# ---------------------------------------------------------------------------
# Shared-memory slot arenas
# ---------------------------------------------------------------------------


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment created by the pool parent.

    Workers share the parent's resource-tracker process (the tracker fd is
    inherited under fork and spawn alike), and its name cache is a set — the
    attach-side re-register is a no-op there, and the single unlink in the
    parent's :meth:`SlotArena.close` unregisters exactly once.  Nothing to
    work around as long as only the creating side ever unlinks.
    """

    return shared_memory.SharedMemory(name=name)


class SlotArena:
    """A shared-memory segment divided into fixed-size payload slots.

    One side writes a batch of byte payloads into a slot and describes them
    with ``("shm", slot, start, length, crc32)`` frame references shipped
    through the control pipe; the other side reads them zero-copy off the
    mapping and verifies the checksum, so a scribbled segment surfaces as a
    typed :class:`~repro.errors.BlockCorruptionError` instead of a garbage
    decode deep inside a codec.  The slot-reuse discipline (ticket modulo
    :data:`SLOTS_PER_WORKER`, with the outstanding cap) makes the arena
    race-free without any locking.
    """

    def __init__(
        self, *, slots: int, slot_bytes: int, name: str | None = None
    ) -> None:
        self._slots = int(slots)
        self._slot_bytes = int(slot_bytes)
        size = max(1, self._slots * self._slot_bytes)
        if name is None:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            self._shm = _attach_shared_memory(name)
            self._owner = False

    @property
    def name(self) -> str:
        """Shared-memory segment name workers attach to."""

        return self._shm.name

    @property
    def slot_bytes(self) -> int:
        """Capacity of one payload slot in bytes."""

        return self._slot_bytes

    def write(self, slot: int, payloads: list[bytes]) -> list[tuple] | None:
        """Pack *payloads* into *slot*; ``None`` when they do not fit."""

        total = sum(len(payload) for payload in payloads)
        if total > self._slot_bytes:
            return None
        base = slot * self._slot_bytes
        view = self._shm.buf
        refs: list[tuple] = []
        cursor = 0
        for payload in payloads:
            view[base + cursor : base + cursor + len(payload)] = payload
            refs.append(
                ("shm", slot, cursor, len(payload), zlib.crc32(payload))
            )
            cursor += len(payload)
        return refs

    def read(self, ref: tuple) -> bytes:
        """Materialise (and checksum-verify) the payload a reference points at."""

        _, slot, start, length, expected_crc = ref
        base = slot * self._slot_bytes + start
        payload = bytes(self._shm.buf[base : base + length])
        actual_crc = zlib.crc32(payload)
        if actual_crc != expected_crc:
            raise BlockCorruptionError(
                "shared-memory payload failed its checksum",
                slot=slot,
                expected_crc=expected_crc,
                actual_crc=actual_crc,
            )
        return payload

    def corrupt(self, ref: tuple) -> None:
        """Flip one byte of the region a reference points at (fault injection).

        Used by the deterministic fault harness to prove that corruption is
        detected and retried; never called outside injected-fault paths.
        """

        _, slot, start, length, _ = ref
        if length <= 0:  # pragma: no cover - empty payloads are never framed
            return
        base = slot * self._slot_bytes + start
        self._shm.buf[base] = self._shm.buf[base] ^ 0xFF

    def close(self) -> None:
        """Detach from the segment; the creating side also unlinks it."""

        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


def _pack_frames(
    arena: SlotArena | None, slot: int, payloads: list[bytes]
) -> list[tuple]:
    """Frame references for *payloads*: shared-memory slots when they fit,
    inline pickled bytes otherwise (and always when no arena exists)."""

    if arena is not None:
        refs = arena.write(slot, payloads)
        if refs is not None:
            return refs
    return [("inline", payload) for payload in payloads]


def _read_frame(
    arena: SlotArena | None, ref: tuple, worker_id: int | None = None
) -> bytes:
    if ref[0] == "inline":
        return ref[1]
    if arena is None:
        raise WorkerCrashedError("shm frame reference without an arena")
    try:
        return arena.read(ref)
    except BlockCorruptionError as exc:
        exc.worker_id = worker_id
        raise


# ---------------------------------------------------------------------------
# Worker main loop
# ---------------------------------------------------------------------------


def _pool_worker_main(
    conn,
    state_factory,
    init_args: tuple,
    in_name: str | None,
    out_name: str | None,
    slots: int,
    slot_bytes: int,
) -> None:
    """Entry point of every pool worker process.

    Builds the warm worker state once, then serves control messages until
    the shutdown sentinel arrives or the parent's end of the pipe closes.
    A crash inside a handler is reported, not fatal: the traceback travels
    back as an ``("err", ...)`` reply so the parent can raise it with
    context.
    """

    in_arena = (
        SlotArena(slots=slots, slot_bytes=slot_bytes, name=in_name)
        if in_name
        else None
    )
    out_arena = (
        SlotArena(slots=slots, slot_bytes=slot_bytes, name=out_name)
        if out_name
        else None
    )
    state = None
    try:
        state = state_factory(*init_args)
        if hasattr(state, "bind_arenas"):
            state.bind_arenas(in_arena, out_arena)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is _SHUTDOWN:
                break
            try:
                reply = state.handle(message)
            # repro-lint: disable=error-taxonomy -- worker boundary: the
            # exception is shipped to the parent and re-raised there
            except Exception as exc:
                # Ship the exception object itself (when picklable) so the
                # parent can re-raise the *original* type — parallel and
                # sequential execution must fail identically — along with
                # the formatted worker traceback for context.
                try:
                    pickle.dumps(exc)
                # repro-lint: disable=error-taxonomy -- pickling probe: any
                # failure just downgrades the reply to traceback-only
                except Exception:
                    exc = None
                reply = ("err", exc, traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        if state is not None and hasattr(state, "close"):
            try:
                state.close()
            # repro-lint: disable=error-taxonomy -- best-effort teardown on
            # the way out of a dying worker; nothing to report to
            except Exception:  # pragma: no cover
                pass
        for arena in (in_arena, out_arena):
            if arena is not None:
                arena.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class _WorkerHandle:
    """Parent-side bookkeeping for one pool worker."""

    def __init__(self, process, conn, in_arena, out_arena) -> None:
        self.process = process
        self.conn = conn
        self.in_arena = in_arena
        self.out_arena = out_arena
        self.next_ticket = 0
        self.outstanding = 0


class ProcessPool:
    """A small persistent pool of warm worker processes.

    Parameters
    ----------
    num_workers:
        Pool width.
    state_factory:
        Module-level class (picklable by reference, spawn-safe) constructed
        once per worker as ``state_factory(*init_args)``; its ``handle``
        method serves every control message.
    init_args:
        Arguments for the factory; must be picklable under every start
        method.
    worker_args:
        Optional per-worker argument tuples, one per worker, appended after
        *init_args* — ``state_factory(*init_args, *worker_args[i])`` for
        worker ``i``.  This is how the ranked tier tells each worker which
        rank it is while sharing the rest of the configuration.
    slot_bytes:
        Size of one shared-memory payload slot; ``0`` disables the arenas
        (all payloads ride the pipe inline).
    start_method:
        ``"fork"``, ``"spawn"``, ``"forkserver"`` or ``None`` for the
        platform default.
    fault_policy:
        Optional :class:`~repro.resilience.FaultPolicy` of the owning run.
        The pool itself never retries — recovery belongs to the executors —
        but the policy gates probabilistic chaos injection: chaos kills are
        only armed when the policy can survive them (``max_retries > 0``).
        Targeted fault-plan injections are always armed.
    """

    def __init__(
        self,
        num_workers: int,
        state_factory,
        init_args: tuple = (),
        *,
        worker_args: list[tuple] | None = None,
        slot_bytes: int = 0,
        start_method: str | None = None,
        fault_policy=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if worker_args is not None and len(worker_args) != num_workers:
            raise ValueError(
                f"worker_args has {len(worker_args)} entries for "
                f"{num_workers} workers"
            )
        # Everything a dead worker's replacement needs is kept around, so
        # respawn_worker() can rebuild the warm state from scratch.
        self._context = get_context(start_method)
        self._state_factory = state_factory
        self._init_args = init_args
        self._worker_args = worker_args
        self._slot_bytes = slot_bytes
        from ..resilience import faults as _faults

        chaos_allowed = bool(
            fault_policy is not None and fault_policy.max_retries > 0
        )
        self._faults = _faults.arm_for_pool(
            getattr(state_factory, "POOL_KIND", "task"),
            num_workers,
            chaos_allowed,
        )
        self._workers: list[_WorkerHandle] = []
        _LIVE_POOLS.add(self)
        try:
            for worker_index in range(num_workers):
                self._workers.append(self._spawn_worker(worker_index))
        except BaseException:
            self.close()
            raise

    def _spawn_worker(
        self,
        worker_index: int,
        in_arena: SlotArena | None = None,
        out_arena: SlotArena | None = None,
    ) -> _WorkerHandle:
        """Start one worker process; arenas are created unless handed in
        (respawn reuses the dead worker's segments)."""

        created: list[SlotArena] = []
        try:
            if self._slot_bytes and in_arena is None:
                in_arena = SlotArena(
                    slots=SLOTS_PER_WORKER, slot_bytes=self._slot_bytes
                )
                created.append(in_arena)
            if self._slot_bytes and out_arena is None:
                out_arena = SlotArena(
                    slots=SLOTS_PER_WORKER, slot_bytes=self._slot_bytes
                )
                created.append(out_arena)
            parent_conn, child_conn = self._context.Pipe()
            extra = (
                self._worker_args[worker_index] if self._worker_args else ()
            )
            process = self._context.Process(
                target=_pool_worker_main,
                args=(
                    child_conn,
                    self._state_factory,
                    self._init_args + tuple(extra),
                    in_arena.name if in_arena else None,
                    out_arena.name if out_arena else None,
                    SLOTS_PER_WORKER,
                    self._slot_bytes,
                ),
                # Not daemonic: circuit-fanout workers may themselves
                # use a process executor, and daemons cannot have
                # children.  Workers exit on pipe EOF, so they never
                # outlive the parent's handles.
                daemon=False,
            )
            process.start()
        except BaseException:
            # Arenas created here are not yet owned by a _WorkerHandle, so
            # the caller's cleanup would leak them (shm stays mapped and
            # linked until interpreter exit).
            for arena in created:
                arena.close()
            raise
        child_conn.close()
        return _WorkerHandle(process, parent_conn, in_arena, out_arena)

    @property
    def num_workers(self) -> int:
        """Live pool width."""

        return len(self._workers)

    # -- dispatch ---------------------------------------------------------------------

    def submit(self, worker_id: int, message: tuple, payloads: list[bytes] = ()) -> int:
        """Send *message* (plus slot payloads) to a worker; returns the ticket.

        ``payloads`` are written into the worker's input slot for this ticket
        and their frame references appended to the message.  The caller must
        keep at most :data:`SLOTS_PER_WORKER` tickets outstanding per worker
        (enforced here) and must fully consume each response before
        submitting the ticket that reuses its slot.
        """

        worker = self._workers[worker_id]
        if worker.outstanding >= SLOTS_PER_WORKER:
            raise PoolProtocolError(
                f"worker {worker_id} already has {worker.outstanding} outstanding "
                f"tasks (cap {SLOTS_PER_WORKER}); collect a response first",
                worker_id=worker_id,
                op="submit",
            )
        if self._faults is not None:
            victim = self._faults.on_submit(worker_id, message[0])
            if victim is not None:
                self._inject_kill(victim)
        ticket = worker.next_ticket
        worker.next_ticket += 1
        frames = _pack_frames(
            worker.in_arena, ticket % SLOTS_PER_WORKER, list(payloads)
        )
        try:
            worker.conn.send(message + (ticket, frames))
        except (BrokenPipeError, OSError) as exc:
            raise self._crash_error(worker_id) from exc
        worker.outstanding += 1
        return ticket

    def _inject_kill(self, worker_id: int) -> None:
        """Kill a worker on behalf of an armed fault plan (SIGKILL, reaped).

        The join makes the death visible before the triggering submission
        proceeds, so injected crashes surface deterministically instead of
        racing the pipe.
        """

        process = self._workers[worker_id].process
        if process.is_alive():
            process.kill()
            process.join(timeout=10.0)

    def read_frame(self, worker_id: int, ref: tuple) -> bytes:
        """Materialise an output frame reference returned by a worker.

        Shared-memory frames are checksum-verified; a mismatch raises
        :class:`~repro.errors.BlockCorruptionError` carrying the worker id.
        """

        worker = self._workers[worker_id]
        if (
            self._faults is not None
            and ref is not None
            and ref[0] == "shm"
            and worker.out_arena is not None
            and self._faults.on_read_frame(worker_id)
        ):
            worker.out_arena.corrupt(ref)
        return _read_frame(worker.out_arena, ref, worker_id=worker_id)

    def can_submit(self, worker_id: int) -> bool:
        """Whether the worker has a free outstanding-task slot."""

        return self._workers[worker_id].outstanding < SLOTS_PER_WORKER

    def has_outstanding(self) -> bool:
        """Whether any worker still owes a response."""

        return any(worker.outstanding for worker in self._workers)

    def recv_any(self, timeout: float | None = None) -> tuple[int, tuple]:
        """Next ``(worker_id, reply)`` from any worker with outstanding work.

        Raises :class:`WorkerCrashedError` promptly — instead of hanging —
        when a worker with outstanding tasks dies (pipe EOF or a failed
        liveness probe).  A healthy worker may legitimately compute for
        minutes on a large block, so there is no default deadline; pass
        *timeout* (seconds) to additionally bound the wait, e.g. in tests.
        """

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            waiting = {
                worker.conn: worker_id
                for worker_id, worker in enumerate(self._workers)
                if worker.outstanding
            }
            if not waiting:
                raise PoolProtocolError(
                    "recv_any() called with no outstanding tasks", op="recv_any"
                )
            ready = mp_connection.wait(list(waiting), timeout=0.2)
            for conn in ready:
                worker_id = waiting[conn]
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as exc:
                    raise self._crash_error(worker_id) from exc
                self._workers[worker_id].outstanding -= 1
                return worker_id, reply
            for worker_id, worker in enumerate(self._workers):
                if worker.outstanding and not worker.process.is_alive():
                    raise self._crash_error(worker_id)
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerCrashedError(
                    f"no pool worker answered within {timeout:.0f}s "
                    f"({sum(w.outstanding for w in self._workers)} tasks outstanding)"
                )

    def broadcast(self, message: tuple) -> list[tuple]:
        """Send *message* to every worker and collect one reply from each."""

        replies = []
        for worker_id in range(len(self._workers)):
            self.submit(worker_id, message)
        for _ in range(len(self._workers)):
            _, reply = self.recv_any()
            replies.append(reply)
        return replies

    def worker_pid(self, worker_id: int) -> int:
        """PID of a worker process (test/diagnostic hook)."""

        return self._workers[worker_id].process.pid

    def _crash_error(self, worker_id: int) -> WorkerCrashedError:
        worker = self._workers[worker_id]
        worker.process.join(timeout=1.0)
        exitcode = worker.process.exitcode
        return WorkerCrashedError(
            f"pool worker {worker_id} (pid {worker.process.pid}) died "
            "mid-plan; the in-flight wave must be replayed (or the "
            "simulator rebuilt) to continue",
            worker_id=worker_id,
            pid=worker.process.pid,
            exitcode=exitcode,
        )

    # -- self-healing -----------------------------------------------------------------

    def worker_alive(self, worker_id: int) -> bool:
        """Whether a worker's process is currently alive."""

        return self._workers[worker_id].process.is_alive()

    def dead_workers(self) -> list[int]:
        """Ids of all workers whose processes have died."""

        return [
            worker_id
            for worker_id, worker in enumerate(self._workers)
            if not worker.process.is_alive()
        ]

    def abandon_outstanding(self, worker_id: int) -> int:
        """Forget a dead worker's outstanding tickets; returns how many.

        After this, :meth:`recv_any`/:meth:`has_outstanding` no longer wait
        on the corpse — the caller owns re-dispatching the abandoned work
        (it knows which tasks the tickets carried; the pool does not).
        """

        worker = self._workers[worker_id]
        abandoned = worker.outstanding
        worker.outstanding = 0
        return abandoned

    def respawn_worker(self, worker_id: int) -> None:
        """Replace a dead worker with a fresh process in the same seat.

        The replacement rebuilds its warm state (decompressor map, scratch
        buffers, cache shard) from the original factory arguments and reuses
        the dead worker's shared-memory arenas, so callers keep their
        worker-id routing and frame references unchanged.  Any outstanding
        tickets of the old worker are dropped — abandon and re-dispatch them
        first.
        """

        old = self._workers[worker_id]
        if old.process.is_alive():
            old.process.kill()
        old.process.join(timeout=10.0)
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        self._workers[worker_id] = self._spawn_worker(
            worker_id, in_arena=old.in_arena, out_arena=old.out_arena
        )

    def heal(self) -> list[int]:
        """Respawn every dead worker; returns the respawned ids.

        Outstanding tickets of each corpse are abandoned as part of healing
        (their replies can never arrive); the caller re-dispatches that work.
        """

        respawned = []
        for worker_id in self.dead_workers():
            self.abandon_outstanding(worker_id)
            self.respawn_worker(worker_id)
            respawned.append(worker_id)
        return respawned

    # -- lifecycle --------------------------------------------------------------------

    def close(self, join_timeout: float = 3.0) -> None:
        """Shut every worker down (idempotent).

        Teardown is bounded: a graceful join of *join_timeout* seconds, then
        SIGTERM, then SIGKILL — a wedged child can never block interpreter
        exit, and every worker is reaped (no zombies) before the arenas are
        unlinked.
        """

        _LIVE_POOLS.discard(self)
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=join_timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            for arena in (worker.in_arena, worker.out_arena):
                if arena is not None:
                    arena.close()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Block-task worker
# ---------------------------------------------------------------------------


def block_slot_bytes(block_amplitudes: int) -> int:
    """Input/output slot size for block-task transport.

    A task moves at most two blobs, each bounded in practice by the
    uncompressed block size plus codec overhead; pathological blobs (e.g.
    all-subnormal exception streams) simply take the inline fallback.
    """

    return 2 * (16 * int(block_amplitudes) + 16384)


class BlockTaskWorker:
    """Warm per-process state executing block tasks.

    Initialised once per worker: the decompressor map (one instance per
    codec class, exactly like the parent simulator's), two scratch buffers
    leased from a private :class:`ScratchPool`, a compressor cache keyed by
    ``describe()`` so recompression reuses warm instances across gates, and
    an optional :class:`BlockCache` shard.  Tasks are routed to workers by
    block affinity, so a shard sees every recurrence of its blocks' patterns.
    """

    #: Dominant message kind, consulted by the fault harness when arming
    #: chaos injection for a pool of these workers.
    POOL_KIND = "task"

    def __init__(
        self,
        block_amplitudes: int,
        decompressors: dict[str, Compressor],
        cache_lines: int,
        cache_miss_disable_threshold: int | None,
        cache_enabled: bool,
    ) -> None:
        self._scratch = ScratchPool(block_amplitudes, buffers=2)
        self._decompressors = dict(decompressors)
        self._compressors: dict[str, Compressor] = {}
        self._masks: dict[tuple[int, ...], np.ndarray | None] = {}
        self._cache = (
            BlockCache(
                lines=cache_lines,
                miss_disable_threshold=cache_miss_disable_threshold,
            )
            if cache_enabled
            else None
        )
        self._in_arena: SlotArena | None = None
        self._out_arena: SlotArena | None = None

    def bind_arenas(
        self, in_arena: SlotArena | None, out_arena: SlotArena | None
    ) -> None:
        """Receive the worker's payload slot arenas from the worker main loop."""

        self._in_arena = in_arena
        self._out_arena = out_arena

    # -- warm lookups ----------------------------------------------------------------

    def _compressor_for(self, compressor: Compressor) -> Compressor:
        warm = self._compressors.get(compressor.describe())
        if warm is None:
            warm = self._compressors[compressor.describe()] = compressor
            # The same class decodes every blob it produced; keep the map in
            # sync so escalated-level blobs always find a decoder.
            self._decompressors.setdefault(compressor.name, compressor)
        return warm

    def _mask_for(self, local_controls: tuple[int, ...]) -> np.ndarray | None:
        if local_controls not in self._masks:
            self._masks[local_controls] = ops.local_control_mask(
                self._scratch.block_amplitudes, local_controls
            )
        return self._masks[local_controls]

    # -- message handling -------------------------------------------------------------

    def handle(self, message: tuple) -> tuple:
        """Serve one control message (``task`` / ``reset`` / ``ping`` / ``die``)."""

        kind = message[0]
        if kind == "task":
            return self._run_task(message)
        if kind == "reset":
            ticket = message[-2]
            if self._cache is not None:
                self._cache.reset()
            self._compressors.clear()
            return ("reset-ok", ticket)
        if kind == "ping":
            return ("pong", message[-2])
        if kind == "die":  # test hook for the worker-failure path
            os._exit(17)
        raise ValueError(f"unknown block-task message {kind!r}")

    def _run_task(self, message: tuple) -> tuple:
        (
            _,
            matrix,
            target,
            local_controls,
            compressor,
            op_key,
            decoder_names,
            ticket,
            frames,
        ) = message
        pair = decoder_names[1] is not None
        blob1 = _read_frame(self._in_arena, frames[0])
        blob2 = _read_frame(self._in_arena, frames[1]) if pair else None
        compressor = self._compressor_for(compressor)

        # Mirror BlockCache's own accounting: once a shard disables itself
        # its lookups are free and *uncounted*, exactly like the
        # sequential/thread tiers — the parent only folds in outcomes that
        # the shard itself counted.
        hit = False
        outcome = "off"
        if self._cache is not None and self._cache.enabled:
            cached = self._cache.lookup(op_key, blob1, blob2)
            if cached is not None:
                out1, out2 = cached
                hit = True
            outcome = "hit" if hit else "miss"
        if not hit:
            timings = {}
            with self._scratch.lease(2 if pair else 1) as buffers:
                start = time.perf_counter()
                buffer1 = self._scratch.fill(
                    buffers[0],
                    self._decompressors[decoder_names[0]].decompress(blob1),
                )
                buffer2 = None
                if blob2 is not None:
                    buffer2 = self._scratch.fill(
                        buffers[1],
                        self._decompressors[decoder_names[1]].decompress(blob2),
                    )
                timings["decompression"] = time.perf_counter() - start

                start = time.perf_counter()
                if buffer2 is None:
                    ops.apply_controlled_single_qubit(
                        buffer1, matrix, target, local_controls
                    )
                else:
                    ops.apply_single_qubit_pairwise_masked(
                        buffer1, buffer2, matrix, self._mask_for(local_controls)
                    )
                timings["computation"] = time.perf_counter() - start

                start = time.perf_counter()
                out1 = compressor.compress(buffer1.view(np.float64))
                out2 = (
                    compressor.compress(buffer2.view(np.float64))
                    if buffer2 is not None
                    else None
                )
                timings["compression"] = time.perf_counter() - start
            if self._cache is not None:
                self._cache.insert(op_key, blob1, blob2, out1, out2)
        else:
            timings = {"decompression": 0.0, "computation": 0.0, "compression": 0.0}

        payloads = [out1] if out2 is None else [out1, out2]
        refs = _pack_frames(
            self._out_arena, ticket % SLOTS_PER_WORKER, payloads
        )
        out_refs = (refs[0], refs[1] if out2 is not None else None)
        calls = 0 if hit else (2 if pair else 1)
        stats = (outcome, calls, timings)
        return ("done", ticket, out_refs, stats)
