"""Per-simulation bookkeeping: the time breakdown and summary of Table 2.

The paper reports, for every benchmark run: total time, the percentage spent
in compression / decompression / communication / computation, time per gate,
the simulation fidelity (lower bound) and the minimum compression ratio seen
during the run.  :class:`SimulationReport` accumulates exactly those numbers
while the compressed simulator executes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "SimulationReport"]


class Timer:
    """Tiny context-manager stopwatch feeding a named bucket of a report."""

    def __init__(self, report: "SimulationReport", bucket: str) -> None:
        self._report = report
        self._bucket = bucket
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._report.add_time(self._bucket, elapsed)


@dataclass
class SimulationReport:
    """Aggregated metrics of one compressed-simulation run."""

    num_qubits: int = 0
    num_ranks: int = 1
    block_amplitudes: int = 0
    gates_executed: int = 0

    compression_seconds: float = 0.0
    decompression_seconds: float = 0.0
    computation_seconds: float = 0.0
    communication_seconds: float = 0.0
    other_seconds: float = 0.0

    communication_bytes: int = 0
    block_exchanges: int = 0

    cache_hits: int = 0
    cache_misses: int = 0

    #: Compressor / decompressor invocations (one per block round trip side).
    #: Gate fusion exists to shrink these; cache hits skip them entirely.
    compress_calls: int = 0
    decompress_calls: int = 0

    #: Block tasks executed (a task covers one block or one block pair).
    tasks_executed: int = 0

    #: Gates fed into / emitted by the fusion pass (0/0 when fusion is off).
    fusion_gates_in: int = 0
    fusion_gates_out: int = 0

    #: Smallest compression ratio observed after any gate (Table 2, last row).
    min_compression_ratio: float = float("inf")
    #: Largest total footprint (compressed + scratch) observed, Eq. 8.
    peak_footprint_bytes: int = 0

    #: ``Π(1 - δ_i)`` over the gates executed, or ``None`` when
    #: ``SimulatorConfig.track_fidelity_bound`` is off.
    fidelity_lower_bound: float | None = 1.0
    final_error_bound: float = 0.0
    escalations: int = 0

    #: Per-rank communicator counters of the ranked tier
    #: (``SimulatorConfig.comm="process"``): one dict per rank with the
    #: :class:`~repro.distributed.comm.CommunicationStats` fields this
    #: endpoint sent plus measured ``exchange_seconds`` /
    #: ``allreduce_seconds`` / ``barrier_seconds``.  ``None`` when
    #: communication is simulated (the aggregate counters above then carry
    #: the modelled traffic).
    rank_comm: list | None = None

    #: Fault-recovery accounting, or ``None`` when the run never recovered
    #: from (or prepared for) a failure: retries, waves/gates replayed, time
    #: lost re-executing, checkpoints written, pool restarts, and the
    #: executor tier degraded to (if the retry ladder was exhausted).  Fed by
    #: :meth:`record_recovery` from the resilience machinery.
    recovery: dict | None = None

    _buckets: dict = field(default_factory=dict, repr=False)
    #: Guards the accumulators: with ``num_workers > 1`` timers and counters
    #: are fed from the executor's worker threads.  Time buckets then sum
    #: CPU-style across threads (they can exceed wall-clock time).
    _mutex: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    # -- accumulation -----------------------------------------------------------------

    def add_time(self, bucket: str, seconds: float) -> None:
        """Add *seconds* to the named time bucket (thread-safe)."""

        attr = f"{bucket}_seconds"
        if not hasattr(self, attr):
            raise KeyError(f"unknown time bucket {bucket!r}")
        with self._mutex:
            setattr(self, attr, getattr(self, attr) + seconds)

    def add_count(self, counter: str, amount: int = 1) -> None:
        """Thread-safe increment of an integer counter field."""

        if not isinstance(getattr(self, counter, None), int):
            raise KeyError(f"unknown counter {counter!r}")
        with self._mutex:
            setattr(self, counter, getattr(self, counter) + amount)

    def timer(self, bucket: str) -> Timer:
        """Context manager accumulating its wall time into *bucket*."""

        return Timer(self, bucket)

    def observe_ratio(self, ratio: float) -> None:
        """Track the worst (minimum) compression ratio seen so far."""

        if ratio < self.min_compression_ratio:
            self.min_compression_ratio = ratio

    def observe_footprint(self, footprint_bytes: int) -> None:
        """Track the peak memory footprint seen so far."""

        if footprint_bytes > self.peak_footprint_bytes:
            self.peak_footprint_bytes = footprint_bytes

    def record_recovery(
        self,
        *,
        retries: int = 0,
        waves_replayed: int = 0,
        gates_replayed: int = 0,
        time_lost_seconds: float = 0.0,
        checkpoints_written: int = 0,
        restarts: int = 0,
        degraded_to: str | None = None,
    ) -> None:
        """Thread-safe accumulation into the :attr:`recovery` section.

        The section is created lazily on first call, so reports of runs that
        never exercised recovery keep ``recovery is None`` (and their JSON
        stays unchanged).
        """

        with self._mutex:
            if self.recovery is None:
                self.recovery = {
                    "retries": 0,
                    "waves_replayed": 0,
                    "gates_replayed": 0,
                    "time_lost_seconds": 0.0,
                    "checkpoints_written": 0,
                    "restarts": 0,
                    "degraded_to": None,
                }
            self.recovery["retries"] += retries
            self.recovery["waves_replayed"] += waves_replayed
            self.recovery["gates_replayed"] += gates_replayed
            self.recovery["time_lost_seconds"] += time_lost_seconds
            self.recovery["checkpoints_written"] += checkpoints_written
            self.recovery["restarts"] += restarts
            if degraded_to is not None:
                self.recovery["degraded_to"] = degraded_to

    # -- derived quantities --------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Sum of every time bucket (the run's accounted wall time)."""

        return (
            self.compression_seconds
            + self.decompression_seconds
            + self.computation_seconds
            + self.communication_seconds
            + self.other_seconds
        )

    @property
    def seconds_per_gate(self) -> float:
        """Average accounted time per executed gate (0.0 before any gate)."""

        if self.gates_executed == 0:
            return 0.0
        return self.total_seconds / self.gates_executed

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time per bucket (the Table 2 percentage rows)."""

        total = self.total_seconds
        if total <= 0:
            return {
                "compression": 0.0,
                "decompression": 0.0,
                "communication": 0.0,
                "computation": 0.0,
                "other": 0.0,
            }
        return {
            "compression": self.compression_seconds / total,
            "decompression": self.decompression_seconds / total,
            "communication": self.communication_seconds / total,
            "computation": self.computation_seconds / total,
            "other": self.other_seconds / total,
        }

    def as_dict(self) -> dict:
        """JSON-ready mapping of every metric (used by benchmarks/docs)."""

        data = {
            "num_qubits": self.num_qubits,
            "num_ranks": self.num_ranks,
            "block_amplitudes": self.block_amplitudes,
            "gates_executed": self.gates_executed,
            "total_seconds": self.total_seconds,
            "seconds_per_gate": self.seconds_per_gate,
            "compression_seconds": self.compression_seconds,
            "decompression_seconds": self.decompression_seconds,
            "computation_seconds": self.computation_seconds,
            "communication_seconds": self.communication_seconds,
            "other_seconds": self.other_seconds,
            "communication_bytes": self.communication_bytes,
            "block_exchanges": self.block_exchanges,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compress_calls": self.compress_calls,
            "decompress_calls": self.decompress_calls,
            "tasks_executed": self.tasks_executed,
            "fusion_gates_in": self.fusion_gates_in,
            "fusion_gates_out": self.fusion_gates_out,
            "min_compression_ratio": self.min_compression_ratio,
            "peak_footprint_bytes": self.peak_footprint_bytes,
            "fidelity_lower_bound": self.fidelity_lower_bound,
            "final_error_bound": self.final_error_bound,
            "escalations": self.escalations,
            "rank_comm": self.rank_comm,
            "recovery": dict(self.recovery) if self.recovery is not None else None,
        }
        data.update({f"{k}_fraction": v for k, v in self.breakdown().items()})
        return data

    def summary(self) -> str:
        """Multi-line human-readable summary (used by the examples)."""

        breakdown = self.breakdown()
        lines = [
            f"qubits={self.num_qubits} ranks={self.num_ranks} "
            f"block={self.block_amplitudes} gates={self.gates_executed}",
            f"total time           : {self.total_seconds:.3f} s "
            f"({self.seconds_per_gate * 1e3:.2f} ms/gate)",
            f"  compression        : {breakdown['compression'] * 100:5.1f}%",
            f"  decompression      : {breakdown['decompression'] * 100:5.1f}%",
            f"  communication      : {breakdown['communication'] * 100:5.1f}%",
            f"  computation        : {breakdown['computation'] * 100:5.1f}%",
            f"communication volume : {self.communication_bytes / 2**20:.2f} MiB "
            f"in {self.block_exchanges} block exchanges",
            f"cache                : {self.cache_hits} hits / {self.cache_misses} misses",
            f"compressor calls     : {self.compress_calls} compress / "
            f"{self.decompress_calls} decompress over {self.tasks_executed} tasks",
            f"min compression ratio: {self.min_compression_ratio:.2f}",
            f"peak footprint       : {self.peak_footprint_bytes / 2**20:.2f} MiB",
            "fidelity lower bound : "
            + (
                f"{self.fidelity_lower_bound:.6f}"
                if self.fidelity_lower_bound is not None
                else "not tracked"
            ),
            f"final error bound    : {self.final_error_bound:g}",
            f"escalations          : {self.escalations}",
        ]
        if self.recovery is not None:
            degraded = self.recovery["degraded_to"]
            lines.append(
                f"recovery             : {self.recovery['retries']} retries, "
                f"{self.recovery['waves_replayed']} waves / "
                f"{self.recovery['gates_replayed']} gates replayed, "
                f"{self.recovery['restarts']} restarts, "
                f"{self.recovery['checkpoints_written']} checkpoints, "
                f"{self.recovery['time_lost_seconds']:.3f} s lost"
                + (f", degraded to {degraded}" if degraded else "")
            )
        return "\n".join(lines)
