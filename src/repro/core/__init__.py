"""Core contribution: the compressed-state full-circuit simulator."""

from .adaptive import AdaptiveErrorController, EscalationEvent
from .blocks import BlockStore, CompressedBlock, ScratchPool
from .cache import BlockCache, CacheStats
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .compressed_state import CompressedStateVector
from .config import PAPER_BLOCK_AMPLITUDES, SimulatorConfig
from .executor import ProcessTaskExecutor, TaskExecutor
from .procpool import (
    BlockCorruptionError,
    ProcessPool,
    WorkerCrashedError,
    effective_cpu_count,
)
from .fidelity import FidelityTracker, fidelity_curve, fidelity_lower_bound
from .report import SimulationReport, Timer
from .simulator import CompressedSimulator

__all__ = [
    "CompressedSimulator",
    "TaskExecutor",
    "ProcessTaskExecutor",
    "ProcessPool",
    "WorkerCrashedError",
    "BlockCorruptionError",
    "effective_cpu_count",
    "CompressedStateVector",
    "SimulatorConfig",
    "PAPER_BLOCK_AMPLITUDES",
    "SimulationReport",
    "Timer",
    "AdaptiveErrorController",
    "EscalationEvent",
    "BlockCache",
    "CacheStats",
    "BlockStore",
    "CompressedBlock",
    "ScratchPool",
    "FidelityTracker",
    "fidelity_lower_bound",
    "fidelity_curve",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointError",
]
