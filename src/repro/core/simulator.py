"""The compressed-state quantum circuit simulator (the paper's contribution).

:class:`CompressedSimulator` executes a circuit Schrödinger-style while the
state vector stays compressed.  Per gate (Figure 2):

0. (optional) The fusion pass (:mod:`repro.circuits.fusion`) coalesces runs
   of consecutive same-target/same-control gates so each run pays one block
   round trip instead of one per gate (``SimulatorConfig.fusion_enabled``).
1. The gate plan (:func:`repro.distributed.exchange.plan_gate`) lists which
   (rank, block) buffers must be staged together, which depends on the target
   qubit's index segment and the control qubits.
2. The :class:`~repro.core.executor.TaskExecutor` runs the plan's tasks —
   sequentially by default, or concurrently on a thread pool
   (``SimulatorConfig.num_workers``) since the tasks touch disjoint blocks.
   Per task the compressed block cache is consulted; on a miss the block
   (or block pair) is decompressed into the scratch pool, the 2x2 unitary is
   applied with the vectorised kernels of :mod:`repro.statevector.ops`, and
   the result is recompressed with the compressor chosen by the adaptive
   error controller.
3. Inter-rank tasks account their block exchange with the simulated
   communicator; every task updates the time-breakdown report.
4. After the gate, the memory footprint (Eq. 8) is compared against the
   budget and the error bound escalates if needed; the fidelity tracker
   records the bound that was in force.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import warnings
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..circuits.fusion import fuse_gate_sequence
from ..compression.interface import Compressor, get_compressor
from ..distributed.comm import SimulatedCommunicator
from ..distributed.exchange import plan_gate
from ..distributed.partition import Partition, QubitSegment
from ..errors import ProcessCommTimeout, WorkerCrashedError
from ..resilience import resolve_fault_policy
from ..statevector import ops
from .adaptive import AdaptiveErrorController
from .blocks import CompressedBlock, ScratchPool
from .cache import BlockCache
from .compressed_state import CompressedStateVector
from .config import SimulatorConfig
from .executor import ProcessTaskExecutor, TaskExecutor
from .fidelity import FidelityTracker
from .report import SimulationReport

__all__ = ["CompressedSimulator"]


class CompressedSimulator:
    """Full-state simulator that keeps the state vector compressed in memory.

    Parameters
    ----------
    num_qubits:
        Register size.
    config:
        :class:`~repro.core.config.SimulatorConfig`; defaults are laptop-scale
        equivalents of the paper's setup.
    comm:
        Optional pre-built :class:`SimulatedCommunicator` (for benches that
        model interconnect bandwidth); one is created automatically otherwise.
    initial_basis_state:
        Basis state to start from (default ``|0...0>``, as in the paper's
        benchmarks).
    """

    def __init__(
        self,
        num_qubits: int,
        config: SimulatorConfig | None = None,
        comm: SimulatedCommunicator | None = None,
        initial_basis_state: int = 0,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self._config = config or SimulatorConfig()
        self._num_qubits = int(num_qubits)
        self._initial_basis_state = int(initial_basis_state)
        self._policy = resolve_fault_policy(self._config.fault_policy)

        block_amplitudes = self._config.resolve_block_amplitudes(
            num_qubits, self._config.num_ranks
        )
        self._partition = Partition(
            num_qubits=num_qubits,
            num_ranks=self._config.num_ranks,
            block_amplitudes=block_amplitudes,
        )
        self._comm = comm or SimulatedCommunicator(self._config.num_ranks)
        self._controller = AdaptiveErrorController(self._config)
        # Two scratch buffers per worker *thread*: every block-pair task
        # leases its own pair, so parallel tasks never share a staging
        # buffer.  Block-task process workers stage in their own address
        # space, so the parent pool stays at the sequential size; rank
        # workers own *all* staging (parent-side state queries allocate
        # fresh arrays), so the ranked parent keeps no pool at all.
        ranked_mode = self._config.comm == "process"
        process_mode = self._config.executor == "process" and not ranked_mode
        self._scratch = (
            None
            if ranked_mode
            else ScratchPool(
                block_amplitudes,
                buffers=2 if process_mode else 2 * self._config.num_workers,
            )
        )
        self._cache = (
            BlockCache(
                lines=self._config.cache_lines,
                miss_disable_threshold=self._config.cache_miss_disable_threshold,
            )
            if self._config.use_block_cache
            else None
        )
        self._fidelity = (
            FidelityTracker() if self._config.track_fidelity_bound else None
        )
        self._report = SimulationReport(
            num_qubits=num_qubits,
            num_ranks=self._config.num_ranks,
            block_amplitudes=block_amplitudes,
        )

        # Decompression needs an instance of the same compressor class that
        # produced a blob; bounds and backends are embedded in the blobs, so
        # one instance per class suffices.
        lossless = self._controller.lossless_compressor()
        lossy = get_compressor(
            self._config.lossy_compressor,
            bound=self._config.error_levels[0],
            backend=self._config.lossless_backend,
            level=self._config.lossless_level,
            engine=self._config.codec_engine,
        )
        self._decompressors: dict[str, Compressor] = {
            lossless.name: lossless,
            lossy.name: lossy,
        }

        # In-run resilience bookkeeping (the ranked recovery path): gates
        # applied since the last resilience checkpoint, the path of that
        # checkpoint, and a lazily created temp directory for it when the
        # policy does not pin one.
        self._replay_log: list[Gate] = []
        self._resilience_ckpt: Path | None = None
        self._ckpt_tempdir: str | None = None
        self._ranked_generation = 0
        # Lazily computed config every fork of this simulator shares; see
        # fork() — rebuilding it per fork re-ran SimulatorConfig validation
        # once per X/Y observable per circuit in a batch.
        self._fork_config: SimulatorConfig | None = None

        if ranked_mode:
            self._build_ranked(initial_basis_state)
            self._gate_index = 0
            return

        self._state = CompressedStateVector(
            partition=self._partition,
            compressor=self._initial_compressor(),
            comm=self._comm,
            initial_basis_state=initial_basis_state,
        )
        if process_mode:
            self._executor: TaskExecutor = ProcessTaskExecutor(
                state=self._state,
                scratch=self._scratch,
                cache=self._cache,
                decompressors=self._decompressors,
                report=self._report,
                comm=self._comm,
                num_workers=self._config.num_workers,
                cache_lines=self._config.cache_lines,
                cache_miss_disable_threshold=(
                    self._config.cache_miss_disable_threshold
                ),
                start_method=self._config.mp_start_method,
                fault_policy=self._policy,
            )
        else:
            self._executor = TaskExecutor(
                state=self._state,
                scratch=self._scratch,
                cache=self._cache,
                decompressors=self._decompressors,
                report=self._report,
                comm=self._comm,
                num_workers=self._config.num_workers,
            )
        self._gate_index = 0

    def _build_ranked(self, initial_basis_state: int) -> None:
        """(Re)build the ranked tier: one worker process per rank, each
        holding its partition slice, with real inter-rank block exchange over
        shared memory.  Imported lazily to keep the repro.distributed package
        import-light.  Called from ``__init__`` and again from
        :meth:`_recover_ranked` after a rank death tears the pool down.
        """

        from ..distributed.ranked import RankedExecutor, RankedStateVector

        ranked = RankedExecutor(
            partition=self._partition,
            decompressors=self._decompressors,
            report=self._report,
            comm_sink=self._comm,
            cache=self._cache,
            cache_lines=self._config.cache_lines,
            cache_miss_disable_threshold=(
                self._config.cache_miss_disable_threshold
            ),
            start_method=self._config.mp_start_method,
            fault_policy=self._policy,
            pool_generation=self._ranked_generation,
        )
        try:
            self._state = RankedStateVector(
                partition=self._partition,
                executor=ranked,
                comm=self._comm,
                compressor=self._initial_compressor(),
                initial_basis_state=initial_basis_state,
            )
        except BaseException:
            ranked.close()
            raise
        self._executor = ranked

    # -- public accessors -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits being simulated."""

        return self._num_qubits

    @property
    def config(self) -> SimulatorConfig:
        """The immutable configuration this simulator was built from."""

        return self._config

    @property
    def partition(self) -> Partition:
        """The rank/block partition of the simulated machine."""

        return self._partition

    @property
    def state(self) -> CompressedStateVector:
        """The compressed state vector being evolved."""

        return self._state

    @property
    def comm(self) -> SimulatedCommunicator:
        """The inter-rank communicator (records MPI-equivalent traffic)."""

        return self._comm

    @property
    def cache(self) -> BlockCache | None:
        """The block-transform cache, or ``None`` when disabled."""

        return self._cache

    @property
    def controller(self) -> AdaptiveErrorController:
        """The adaptive error-bound controller steering the codecs."""

        return self._controller

    @property
    def fidelity_tracker(self) -> FidelityTracker | None:
        """The per-gate fidelity accountant, or ``None`` when
        ``config.track_fidelity_bound`` is off."""

        return self._fidelity

    @property
    def current_error_bound(self) -> float:
        """The error bound the controller currently applies (0 = lossless)."""

        return self._controller.current_bound

    @property
    def gate_count(self) -> int:
        """How many gates have been applied so far."""

        return self._gate_index

    @property
    def executor(self) -> TaskExecutor:
        """The task executor running block plans (thread or process tier)."""

        return self._executor

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's workers — threads or processes (idempotent;
        a no-op for the sequential thread tier) — and any temporary
        resilience-checkpoint directory this simulator created."""

        self._executor.close()
        if self._ckpt_tempdir is not None:
            shutil.rmtree(self._ckpt_tempdir, ignore_errors=True)
            self._ckpt_tempdir = None
            self._resilience_ckpt = None

    def __enter__(self) -> "CompressedSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _initial_compressor(self) -> Compressor:
        return (
            self._controller.lossless_compressor()
            if self._config.start_lossless
            else self._controller.compressor()
        )

    def reset(self, initial_basis_state: int = 0) -> None:
        """Reset to ``|initial_basis_state>`` in place, keeping workers warm.

        Behaviour after a reset is indistinguishable from a freshly
        constructed simulator with the same config: the adaptive controller,
        fidelity tracker, block cache, communicator statistics and the report
        all start over.  What survives is the expensive machinery — the
        executor (and its thread pool), the scratch pool and the decompressor
        instances — which is what makes batched runs over same-width circuits
        cheap (:class:`repro.backends.CompressedBackend` calls this between
        circuits).
        """

        self._controller = AdaptiveErrorController(self._config)
        self._state.reset(self._initial_compressor(), initial_basis_state)
        self._comm.reset()
        if self._cache is not None:
            self._cache.reset()
        self._fidelity = (
            FidelityTracker() if self._config.track_fidelity_bound else None
        )
        self._report = SimulationReport(
            num_qubits=self._num_qubits,
            num_ranks=self._config.num_ranks,
            block_amplitudes=self._partition.block_amplitudes,
        )
        self._executor.rebind_report(self._report)
        self._executor.reset_workers()
        self._gate_index = 0
        # Any in-run resilience checkpoint describes the pre-reset state.
        self._replay_log.clear()
        self._resilience_ckpt = None

    def fork(self) -> "CompressedSimulator":
        """Snapshot this simulator's state into an independent copy.

        The copy shares nothing mutable with the original: the compressed
        blobs are immutable ``bytes``, so copying the state is just
        rebuilding the block table (construction itself compresses one
        reusable zero block).  The fork always runs single-worker — it
        exists for short side computations, so it never pays for a thread
        pool or a per-worker scratch pool — and its adaptive controller is
        forced to the original's current error level so further gates
        compress with the same bound.  Used by
        :meth:`repro.backends.PauliObservable.expectation` to evaluate X/Y
        terms via basis-change gates without disturbing the live state.
        """

        config = self._fork_config
        if config is None:
            config = self._config
            if (
                config.num_workers != 1
                or config.executor != "thread"
                or config.comm != "simulated"
            ):
                # Forks exist for short side computations: always local,
                # single-worker, simulated-communication — even when the
                # parent runs on the process or ranked tier.  Derived once
                # per simulator: dataclasses.replace re-runs the full config
                # validation, which must not execute per fork (batched runs
                # fork once per X/Y observable per circuit).
                config = replace(
                    config, num_workers=1, executor="thread", comm="simulated"
                )
            self._fork_config = config
        clone = CompressedSimulator(self._num_qubits, config)
        if self._controller.current_bound:
            clone._controller.force_level(self._controller.current_bound)
        for (rank, block), entry in self._state.iter_blocks():
            clone._state.store.put(
                rank,
                block,
                CompressedBlock(
                    blob=entry.blob, compressor=entry.compressor, bound=entry.bound
                ),
            )
        return clone

    # -- gate execution -----------------------------------------------------------------

    def apply_circuit(self, circuit: QuantumCircuit | Iterable[Gate]) -> SimulationReport:
        """Apply every gate of *circuit*; returns the (running) report.

        With ``fusion_enabled`` the circuit first goes through the fusion
        pass, so consecutive same-target/same-control runs execute as single
        fused gates (``report.fusion_gates_in/out`` record the reduction).
        """

        for gate in self.prepare_gates(circuit):
            self.apply_gate(gate)
        return self.report()

    def prepare_gates(self, circuit: QuantumCircuit | Iterable[Gate]) -> list[Gate]:
        """The exact gate sequence :meth:`apply_circuit` would execute.

        Runs the configured fusion pass (recording its statistics in the
        report) and returns the resulting gates as a list.  Stepping the
        returned list through :meth:`apply_gate` one gate at a time is
        bit-identical to a single :meth:`apply_circuit` call — this is the
        entry point for drivers that need gate-granular control between
        gates (progress events, cancellation checks, suspend points), such
        as the :mod:`repro.serve` job executor.
        """

        gates: Iterable[Gate] = circuit
        if self._config.fusion_enabled:
            gates, stats = fuse_gate_sequence(
                list(circuit), max_group=self._config.fusion_max_group
            )
            self._report.fusion_gates_in += stats.gates_in
            self._report.fusion_gates_out += stats.gates_out
        return list(gates)

    def run(self, circuit: QuantumCircuit | Iterable[Gate]) -> SimulationReport:
        """Deprecated alias of :meth:`apply_circuit`.

        .. deprecated:: 1.1
            Use :meth:`apply_circuit`, or the unified entry points
            :func:`repro.run` / :meth:`repro.backends.Backend.run` which add
            shots, observables and batching on top.
        """

        warnings.warn(
            "CompressedSimulator.run() is deprecated; use apply_circuit() or "
            "the unified repro.run() / Backend.run() API",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.apply_circuit(circuit)

    def apply_gate(self, gate: Gate) -> None:
        """Apply a single gate to the compressed state.

        On the ranked tier with an active :class:`~repro.resilience.FaultPolicy`
        (``max_retries > 0`` or a checkpoint interval), a rank-worker death or
        communicator timeout is *recovered* instead of raised: the rank pool
        is torn down and rebuilt, the state reloads from the last in-run
        resilience checkpoint (or the initial state), the gates since then
        replay, and this gate retries — bit-identical to a failure-free run
        because every layer below is deterministic.
        """

        if gate.max_qubit() >= self._num_qubits:
            raise ValueError(
                f"gate {gate.name} touches qubit {gate.max_qubit()} outside the register"
            )
        if self._ranked_resilience:
            self._apply_gate_resilient(gate)
        else:
            self._apply_gate_once(gate)

    def _apply_gate_once(self, gate: Gate) -> None:
        """One attempt at a gate: plan, execute, then commit the per-gate
        bookkeeping (counters, fidelity, escalation).  The bookkeeping only
        runs after ``run_plan`` returns, so a failed attempt leaves the
        parent-side counters untouched and replay stays exact."""

        plan = plan_gate(self._partition, gate)
        compressor = self._controller.compressor()
        op_key = gate.key() + (compressor.describe(),)
        local_control_mask = self._local_control_mask(plan.local_controls)

        self._executor.run_plan(gate, plan, compressor, op_key, local_control_mask)

        self._gate_index += 1
        self._report.gates_executed = self._gate_index
        if self._fidelity is not None:
            self._fidelity.record_gate(compressor.bound)

        footprint = self._state.footprint_bytes()
        self._report.observe_footprint(footprint)
        self._report.observe_ratio(self._state.compression_ratio())
        if self._controller.maybe_escalate(footprint, self._gate_index):
            self._report.escalations += 1

        self._sync_report()

    # -- ranked-tier fault recovery -----------------------------------------------------

    @property
    def _ranked_resilience(self) -> bool:
        return self._config.comm == "process" and (
            self._policy.max_retries > 0
            or self._policy.checkpoint_interval_waves > 0
        )

    def _apply_gate_resilient(self, gate: Gate) -> None:
        """Apply one gate with the detect → contain → recover loop around it."""

        policy = self._policy
        attempt = 0
        while True:
            try:
                self._apply_gate_once(gate)
                break
            except (WorkerCrashedError, ProcessCommTimeout):
                if attempt >= policy.max_retries:
                    raise
                attempt += 1
                lost_start = time.perf_counter()
                replayed = self._recover_ranked()
                self._report.record_recovery(
                    retries=1,
                    restarts=self._partition.num_ranks,
                    gates_replayed=replayed,
                    waves_replayed=replayed,
                    time_lost_seconds=time.perf_counter() - lost_start,
                )
                backoff = policy.backoff_seconds(attempt - 1)
                if backoff > 0:
                    time.sleep(backoff)
        self._replay_log.append(gate)
        self._maybe_resilience_checkpoint()

    def _recover_ranked(self) -> int:
        """Tear down the rank pool, reload the last checkpoint, replay.

        Returns the number of gates replayed.  The sequence is:

        1. Close the (partially dead) executor with a short join timeout —
           surviving ranks may be blocked in an exchange with the dead peer
           and need the SIGTERM escalation.
        2. Rewind the parent-side bookkeeping (gate index, fidelity history,
           adaptive-controller level) to the last resilience checkpoint, or
           to the start of the run when none was written yet.
        3. Rebuild the pool and arena, restore the checkpointed blocks into
           the fresh rank workers.
        4. Replay the gates applied since the checkpoint through the normal
           per-gate path, which re-runs the same compressor bounds and
           escalation decisions (everything below is deterministic).
        """

        from .checkpoint import read_checkpoint

        self._executor.close(join_timeout=0.5)

        meta = blocks = None
        if self._resilience_ckpt is not None:
            # A torn/corrupt snapshot falls back to replay-from-start rather
            # than failing the recovery.
            try:
                meta, blocks = read_checkpoint(self._resilience_ckpt)
            # repro-lint: disable=error-taxonomy -- recovery path: a torn
            # checkpoint degrades to replay-from-start, never fails recovery
            except Exception:
                meta = blocks = None

        # Rewind bookkeeping *before* rebuilding: the initial compressor of
        # the fresh workers must match what a failure-free run would have
        # used at that point.
        self._controller = AdaptiveErrorController(self._config)
        if self._fidelity is not None:
            self._fidelity.reset()
        if meta is not None:
            self._gate_index = int(meta.get("gate_count", 0))
            if self._fidelity is not None:
                for bound in meta.get("fidelity_gate_bounds", []):
                    self._fidelity.record_gate(float(bound))
            if meta.get("current_bound"):
                self._controller.force_level(float(meta["current_bound"]))
        else:
            self._gate_index = 0
        self._report.gates_executed = self._gate_index

        # Bump the pool generation so rebuilt rank workers do not re-arm
        # injected comm faults from the environment (the replay would
        # deterministically hit the same drop/delay and never converge).
        self._ranked_generation += 1
        self._build_ranked(self._initial_basis_state)
        if blocks is not None:
            for rank, block, name, bound, blob in blocks:
                self._state.store.put(
                    rank,
                    block,
                    CompressedBlock(blob=blob, compressor=name, bound=bound),
                )

        replay = list(self._replay_log)
        for logged_gate in replay:
            self._apply_gate_once(logged_gate)
        return len(replay)

    def _resilience_checkpoint_path(self) -> Path:
        directory = self._policy.checkpoint_dir
        if directory is None:
            if self._ckpt_tempdir is None:
                self._ckpt_tempdir = tempfile.mkdtemp(prefix="repro-resilience-")
            directory = self._ckpt_tempdir
        else:
            os.makedirs(directory, exist_ok=True)
        return Path(directory) / "resilience.ckpt"

    def _maybe_resilience_checkpoint(self) -> None:
        """Write an in-run checkpoint every ``checkpoint_interval_waves``
        gates (atomically: tmp file + ``os.replace``), clearing the replay
        log — recovery then replays at most one interval's worth of gates."""

        interval = self._policy.checkpoint_interval_waves
        if interval <= 0 or not self._replay_log:
            return
        if self._gate_index % interval != 0:
            return

        from .checkpoint import save_checkpoint

        path = self._resilience_checkpoint_path()
        tmp = path.with_name(path.name + ".tmp")
        save_checkpoint(self, tmp)
        os.replace(tmp, path)
        self._resilience_ckpt = path
        self._replay_log.clear()
        self._report.record_recovery(checkpoints_written=1)

    # -- planning helpers -------------------------------------------------------------------

    def _local_control_mask(self, local_controls: tuple[int, ...]) -> np.ndarray | None:
        """Boolean mask over block offsets selecting amplitudes whose local
        control bits are all 1 (``None`` when there are no local controls)."""

        return ops.local_control_mask(
            self._partition.block_amplitudes, local_controls
        )

    # -- report plumbing ----------------------------------------------------------------------

    def _sync_report(self) -> None:
        self._report.communication_bytes = self._comm.stats.bytes_sent
        self._report.block_exchanges = self._comm.stats.exchanges
        if self._cache is not None:
            self._report.cache_hits = self._cache.stats.hits
            self._report.cache_misses = self._cache.stats.misses
        self._report.fidelity_lower_bound = (
            self._fidelity.lower_bound if self._fidelity is not None else None
        )
        self._report.final_error_bound = self._controller.current_bound
        self._report.escalations = len(self._controller.events)

    def report(self) -> SimulationReport:
        """The up-to-date :class:`SimulationReport` for this simulation."""

        self._sync_report()
        return self._report

    # -- state queries ------------------------------------------------------------------------

    def statevector(self) -> np.ndarray:
        """Materialise the dense state (small registers only)."""

        return self._state.to_statevector(self._decompressors)

    def norm_squared(self) -> float:
        """Blockwise Σ|a_i|² (should stay ≈1 up to compression error)."""

        return self._state.norm_squared(self._decompressors)

    def probability_of(self, basis_state: int) -> float:
        """Probability of one basis state, touching only its block."""

        rank, block, offset = self._partition.locate(basis_state)
        probs = self._state.probabilities_of_block(rank, block, self._decompressors)
        return float(probs[offset])

    def block_probabilities(self) -> np.ndarray:
        """Total probability mass per (rank, block), flattened in rank-major order."""

        totals = np.zeros(self._partition.total_blocks, dtype=np.float64)
        for index, (_base, probs) in enumerate(self.iter_block_probabilities()):
            totals[index] = probs.sum()
        return totals

    def iter_block_probabilities(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(global_base_index, |a|^2 per offset)`` block by block.

        This is the observable-evaluation primitive: one block is
        decompressed at a time, in rank-major order, so diagonal Pauli
        expectations can be accumulated without ever densifying the state
        (:meth:`repro.backends.PauliObservable.expectation` builds on it).
        """

        for (rank, block), _entry in self._state.iter_blocks():
            probs = self._state.probabilities_of_block(
                rank, block, self._decompressors
            )
            yield self._partition.global_index(rank, block, 0), probs

    def sample_counts(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[int, int]:
        """Sample basis states without ever materialising the full vector.

        A block is drawn from the per-block probability mass first, then an
        offset within the (decompressed) block — two-level alias-free
        sampling that only decompresses the blocks actually hit.

        Determinism contract: for a given compressed state and seeded *rng*,
        the returned counts are identical on every call.  The generator is
        consumed in a pinned order — one draw for the block choices, then one
        draw per hit block in ascending flat block index (rank-major) — and
        nothing here depends on ``num_workers``, which cannot change the
        stored state (disjoint block writes, deterministic compressors).
        ``fusion_enabled`` is different: fusing reorders the floating-point
        arithmetic, so the stored state can differ at the ULP level and
        counts are only guaranteed stable within one fusion setting.
        """

        if shots < 0:
            raise ValueError("shots must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        block_mass = self.block_probabilities()
        total = block_mass.sum()
        if total <= 0:
            raise ValueError("cannot sample from a zero state")
        block_probs = block_mass / total
        chosen_blocks = rng.choice(block_mass.size, size=shots, p=block_probs)
        counts: dict[int, int] = {}
        partition = self._partition
        # np.unique returns its values sorted; the explicit sort pins the rng
        # consumption order as a contract rather than an implementation detail.
        for block_index in np.sort(np.unique(chosen_blocks)):
            rank = int(block_index) // partition.blocks_per_rank
            block = int(block_index) % partition.blocks_per_rank
            probs = self._state.probabilities_of_block(rank, block, self._decompressors)
            mass = probs.sum()
            if mass <= 0:
                continue
            n_hits = int(np.sum(chosen_blocks == block_index))
            offsets = rng.choice(probs.size, size=n_hits, p=probs / mass)
            base = partition.global_index(rank, block, 0)
            unique_offsets, offset_counts = np.unique(offsets, return_counts=True)
            for offset, hits in zip(
                unique_offsets.tolist(), offset_counts.tolist()
            ):
                key = base + int(offset)
                counts[key] = counts.get(key, 0) + int(hits)
        return counts

    def fidelity_vs(self, reference_state: np.ndarray) -> float:
        """Exact pure-state fidelity against a dense reference (Eq. 9)."""

        state = self.statevector()
        norm = np.linalg.norm(state) * np.linalg.norm(reference_state)
        if norm == 0:
            return 0.0
        return float(abs(np.vdot(reference_state, state)) / norm)
