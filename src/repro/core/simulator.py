"""The compressed-state quantum circuit simulator (the paper's contribution).

:class:`CompressedSimulator` executes a circuit Schrödinger-style while the
state vector stays compressed.  Per gate (Figure 2):

1. The gate plan (:func:`repro.distributed.exchange.plan_gate`) lists which
   (rank, block) buffers must be staged together, which depends on the target
   qubit's index segment and the control qubits.
2. For each task the compressed block cache is consulted; on a miss the block
   (or block pair) is decompressed into the scratch pool, the 2x2 unitary is
   applied with the vectorised kernels of :mod:`repro.statevector.ops`, and
   the result is recompressed with the compressor chosen by the adaptive
   error controller.
3. Inter-rank tasks account their block exchange with the simulated
   communicator; every task updates the time-breakdown report.
4. After the gate, the memory footprint (Eq. 8) is compared against the
   budget and the error bound escalates if needed; the fidelity tracker
   records the bound that was in force.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from ..circuits import Gate, QuantumCircuit
from ..compression.interface import Compressor, get_compressor
from ..distributed.comm import SimulatedCommunicator
from ..distributed.exchange import BlockTask, GatePlan, plan_gate
from ..distributed.partition import Partition, QubitSegment
from ..statevector import ops
from .adaptive import AdaptiveErrorController
from .blocks import ScratchPool
from .cache import BlockCache
from .compressed_state import CompressedStateVector
from .config import SimulatorConfig
from .fidelity import FidelityTracker
from .report import SimulationReport

__all__ = ["CompressedSimulator"]


class CompressedSimulator:
    """Full-state simulator that keeps the state vector compressed in memory.

    Parameters
    ----------
    num_qubits:
        Register size.
    config:
        :class:`~repro.core.config.SimulatorConfig`; defaults are laptop-scale
        equivalents of the paper's setup.
    comm:
        Optional pre-built :class:`SimulatedCommunicator` (for benches that
        model interconnect bandwidth); one is created automatically otherwise.
    initial_basis_state:
        Basis state to start from (default ``|0...0>``, as in the paper's
        benchmarks).
    """

    def __init__(
        self,
        num_qubits: int,
        config: SimulatorConfig | None = None,
        comm: SimulatedCommunicator | None = None,
        initial_basis_state: int = 0,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self._config = config or SimulatorConfig()
        self._num_qubits = int(num_qubits)

        block_amplitudes = self._config.resolve_block_amplitudes(
            num_qubits, self._config.num_ranks
        )
        self._partition = Partition(
            num_qubits=num_qubits,
            num_ranks=self._config.num_ranks,
            block_amplitudes=block_amplitudes,
        )
        self._comm = comm or SimulatedCommunicator(self._config.num_ranks)
        self._controller = AdaptiveErrorController(self._config)
        self._scratch = ScratchPool(block_amplitudes, buffers=2)
        self._cache = (
            BlockCache(
                lines=self._config.cache_lines,
                miss_disable_threshold=self._config.cache_miss_disable_threshold,
            )
            if self._config.use_block_cache
            else None
        )
        self._fidelity = FidelityTracker()
        self._report = SimulationReport(
            num_qubits=num_qubits,
            num_ranks=self._config.num_ranks,
            block_amplitudes=block_amplitudes,
        )

        # Decompression needs an instance of the same compressor class that
        # produced a blob; bounds and backends are embedded in the blobs, so
        # one instance per class suffices.
        lossless = self._controller.lossless_compressor()
        lossy = get_compressor(
            self._config.lossy_compressor,
            bound=self._config.error_levels[0],
            backend=self._config.lossless_backend,
            level=self._config.lossless_level,
        )
        self._decompressors: dict[str, Compressor] = {
            lossless.name: lossless,
            lossy.name: lossy,
        }

        self._state = CompressedStateVector(
            partition=self._partition,
            compressor=lossless if self._config.start_lossless else self._controller.compressor(),
            comm=self._comm,
            initial_basis_state=initial_basis_state,
        )
        self._gate_index = 0

    # -- public accessors -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def config(self) -> SimulatorConfig:
        return self._config

    @property
    def partition(self) -> Partition:
        return self._partition

    @property
    def state(self) -> CompressedStateVector:
        return self._state

    @property
    def comm(self) -> SimulatedCommunicator:
        return self._comm

    @property
    def cache(self) -> BlockCache | None:
        return self._cache

    @property
    def controller(self) -> AdaptiveErrorController:
        return self._controller

    @property
    def fidelity_tracker(self) -> FidelityTracker:
        return self._fidelity

    @property
    def current_error_bound(self) -> float:
        return self._controller.current_bound

    @property
    def gate_count(self) -> int:
        return self._gate_index

    # -- gate execution -----------------------------------------------------------------

    def apply_circuit(self, circuit: QuantumCircuit | Iterable[Gate]) -> SimulationReport:
        """Apply every gate of *circuit*; returns the (running) report."""

        for gate in circuit:
            self.apply_gate(gate)
        return self.report()

    run = apply_circuit

    def apply_gate(self, gate: Gate) -> None:
        """Apply a single gate to the compressed state."""

        if gate.max_qubit() >= self._num_qubits:
            raise ValueError(
                f"gate {gate.name} touches qubit {gate.max_qubit()} outside the register"
            )
        plan = plan_gate(self._partition, gate)
        compressor = self._controller.compressor()
        op_key = gate.key() + (compressor.describe(),)
        local_control_mask = self._local_control_mask(plan.local_controls)

        for task in plan.tasks:
            self._execute_task(gate, plan, task, compressor, op_key, local_control_mask)

        self._gate_index += 1
        self._report.gates_executed = self._gate_index
        self._fidelity.record_gate(compressor.bound)

        footprint = self._state.footprint_bytes()
        self._report.observe_footprint(footprint)
        self._report.observe_ratio(self._state.compression_ratio())
        if self._controller.maybe_escalate(footprint, self._gate_index):
            self._report.escalations += 1

        self._sync_report()

    # -- task execution ---------------------------------------------------------------------

    def _local_control_mask(self, local_controls: tuple[int, ...]) -> np.ndarray | None:
        """Boolean mask over block offsets selecting amplitudes whose local
        control bits are all 1 (``None`` when there are no local controls)."""

        if not local_controls:
            return None
        control_bits = 0
        for control in local_controls:
            control_bits |= 1 << control
        offsets = np.arange(self._partition.block_amplitudes, dtype=np.int64)
        return (offsets & control_bits) == control_bits

    def _execute_task(
        self,
        gate: Gate,
        plan: GatePlan,
        task: BlockTask,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        rank1, block1 = task.first
        entry1 = self._state.get_block(rank1, block1)
        entry2 = None
        if task.second is not None:
            rank2, block2 = task.second
            entry2 = self._state.get_block(rank2, block2)

        if task.crosses_ranks and entry2 is not None:
            # The pair of blocks lives on two ranks: each rank ships its
            # compressed block to the other before the update (Section 3.3).
            before = self._comm.modelled_seconds
            self._comm.exchange_blocks(
                task.first[0], task.second[0], max(entry1.nbytes, entry2.nbytes)
            )
            self._report.communication_seconds += self._comm.modelled_seconds - before

        # Compressed block cache lookup (Section 3.4).
        if self._cache is not None:
            cached = self._cache.lookup(
                op_key, entry1.blob, entry2.blob if entry2 else None
            )
            if cached is not None:
                out1, out2 = cached
                self._state.put_block(rank1, block1, out1, compressor)
                if task.second is not None and out2 is not None:
                    self._state.put_block(task.second[0], task.second[1], out2, compressor)
                return

        # Decompress into the scratch pool.
        with self._report.timer("decompression"):
            buffer1 = self._scratch.load(
                0, self._decompressors[entry1.compressor].decompress(entry1.blob)
            )
            buffer2 = None
            if entry2 is not None:
                buffer2 = self._scratch.load(
                    1, self._decompressors[entry2.compressor].decompress(entry2.blob)
                )

        # Apply the unitary.
        with self._report.timer("computation"):
            if task.second is None:
                self._apply_local(gate, buffer1, plan.local_controls)
            else:
                self._apply_pairwise(gate, buffer1, buffer2, local_control_mask)

        # Recompress and store.
        with self._report.timer("compression"):
            out1 = compressor.compress(buffer1.view(np.float64))
            out2 = None
            if buffer2 is not None:
                out2 = compressor.compress(buffer2.view(np.float64))
        self._state.put_block(rank1, block1, out1, compressor)
        if task.second is not None and out2 is not None:
            self._state.put_block(task.second[0], task.second[1], out2, compressor)

        if self._cache is not None:
            self._cache.insert(
                op_key, entry1.blob, entry2.blob if entry2 else None, out1, out2
            )

    def _apply_local(
        self, gate: Gate, buffer: np.ndarray, local_controls: tuple[int, ...]
    ) -> None:
        """Target qubit lies inside the block: in-buffer pair update."""

        ops.apply_controlled_single_qubit(
            buffer, gate.matrix, gate.target, tuple(local_controls)
        )

    def _apply_pairwise(
        self,
        gate: Gate,
        buffer_x: np.ndarray,
        buffer_y: np.ndarray,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Target qubit selects the block or rank: cross-buffer pair update."""

        if local_control_mask is None:
            ops.apply_single_qubit_pairwise(buffer_x, buffer_y, gate.matrix)
            return
        u00, u01 = gate.matrix[0, 0], gate.matrix[0, 1]
        u10, u11 = gate.matrix[1, 0], gate.matrix[1, 1]
        a = buffer_x[local_control_mask]
        b = buffer_y[local_control_mask]
        buffer_x[local_control_mask] = u00 * a + u01 * b
        buffer_y[local_control_mask] = u10 * a + u11 * b

    # -- report plumbing ----------------------------------------------------------------------

    def _sync_report(self) -> None:
        self._report.communication_bytes = self._comm.stats.bytes_sent
        self._report.block_exchanges = self._comm.stats.exchanges
        if self._cache is not None:
            self._report.cache_hits = self._cache.stats.hits
            self._report.cache_misses = self._cache.stats.misses
        self._report.fidelity_lower_bound = self._fidelity.lower_bound
        self._report.final_error_bound = self._controller.current_bound
        self._report.escalations = len(self._controller.events)

    def report(self) -> SimulationReport:
        """The up-to-date :class:`SimulationReport` for this simulation."""

        self._sync_report()
        return self._report

    # -- state queries ------------------------------------------------------------------------

    def statevector(self) -> np.ndarray:
        """Materialise the dense state (small registers only)."""

        return self._state.to_statevector(self._decompressors)

    def norm_squared(self) -> float:
        """Blockwise Σ|a_i|² (should stay ≈1 up to compression error)."""

        return self._state.norm_squared(self._decompressors)

    def probability_of(self, basis_state: int) -> float:
        """Probability of one basis state, touching only its block."""

        rank, block, offset = self._partition.locate(basis_state)
        probs = self._state.probabilities_of_block(rank, block, self._decompressors)
        return float(probs[offset])

    def block_probabilities(self) -> np.ndarray:
        """Total probability mass per (rank, block), flattened in rank-major order."""

        totals = np.zeros(self._partition.total_blocks, dtype=np.float64)
        for index, ((rank, block), _entry) in enumerate(self._state.iter_blocks()):
            probs = self._state.probabilities_of_block(rank, block, self._decompressors)
            totals[index] = probs.sum()
        return totals

    def sample_counts(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[int, int]:
        """Sample basis states without ever materialising the full vector.

        A block is drawn from the per-block probability mass first, then an
        offset within the (decompressed) block — two-level alias-free
        sampling that only decompresses the blocks actually hit.
        """

        if shots < 0:
            raise ValueError("shots must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        block_mass = self.block_probabilities()
        total = block_mass.sum()
        if total <= 0:
            raise ValueError("cannot sample from a zero state")
        block_probs = block_mass / total
        chosen_blocks = rng.choice(block_mass.size, size=shots, p=block_probs)
        counts: dict[int, int] = {}
        partition = self._partition
        for block_index in np.unique(chosen_blocks):
            rank = int(block_index) // partition.blocks_per_rank
            block = int(block_index) % partition.blocks_per_rank
            probs = self._state.probabilities_of_block(rank, block, self._decompressors)
            mass = probs.sum()
            if mass <= 0:
                continue
            n_hits = int(np.sum(chosen_blocks == block_index))
            offsets = rng.choice(probs.size, size=n_hits, p=probs / mass)
            base = partition.global_index(rank, block, 0)
            for offset in offsets:
                key = base + int(offset)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def fidelity_vs(self, reference_state: np.ndarray) -> float:
        """Exact pure-state fidelity against a dense reference (Eq. 9)."""

        state = self.statevector()
        norm = np.linalg.norm(state) * np.linalg.norm(reference_state)
        if norm == 0:
            return 0.0
        return float(abs(np.vdot(reference_state, state)) / norm)
