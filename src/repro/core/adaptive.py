"""Adaptive error-bound control (Sections 3.7 and 4.2).

The simulation starts with lossless (Zstd-role) compression; as the state gets
more entangled the lossless ratio deteriorates, and whenever the total memory
footprint (compressed blocks plus the two scratch blocks per rank, Eq. 8)
exceeds the budget the controller relaxes the pointwise relative error bound
to the next level of the ladder 1e-5 → 1e-4 → 1e-3 → 1e-2 → 1e-1.

The controller also owns the compressor instances, one per level, so the
simulator simply asks for "the current compressor" before recompressing a
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compression.interface import Compressor, get_compressor
from ..compression.lossless import LosslessCompressor
from .config import SimulatorConfig

__all__ = ["EscalationEvent", "AdaptiveErrorController"]


@dataclass(frozen=True)
class EscalationEvent:
    """One escalation decision, kept for the simulation report."""

    gate_index: int
    from_bound: float
    to_bound: float
    footprint_bytes: int
    budget_bytes: int


class AdaptiveErrorController:
    """Chooses the compression level as the simulation proceeds."""

    def __init__(self, config: SimulatorConfig) -> None:
        self._config = config
        self._levels: list[float] = list(config.error_levels)
        self._lossless = LosslessCompressor(
            backend=config.lossless_backend,
            level=config.lossless_level,
            engine=config.codec_engine,
        )
        self._lossy: dict[float, Compressor] = {}
        # level_index == -1 means "still lossless"; index i >= 0 means the
        # i-th entry of the error ladder is in force.
        self._level_index = -1 if config.start_lossless else 0
        self._events: list[EscalationEvent] = []

    # -- current state -----------------------------------------------------------

    @property
    def is_lossless(self) -> bool:
        """Whether the controller still sits at the lossless level."""

        return self._level_index < 0

    @property
    def current_bound(self) -> float:
        """The error bound in force (0.0 while lossless)."""

        if self.is_lossless:
            return 0.0
        return self._levels[self._level_index]

    @property
    def exhausted(self) -> bool:
        """True when the loosest level is already in force."""

        return self._level_index >= len(self._levels) - 1

    @property
    def events(self) -> tuple[EscalationEvent, ...]:
        """Every escalation taken so far, in order."""

        return tuple(self._events)

    def compressor(self) -> Compressor:
        """The compressor matching the current level."""

        if self.is_lossless:
            return self._lossless
        bound = self._levels[self._level_index]
        if bound not in self._lossy:
            self._lossy[bound] = get_compressor(
                self._config.lossy_compressor,
                bound=bound,
                backend=self._config.lossless_backend,
                level=self._config.lossless_level,
                engine=self._config.codec_engine,
            )
        return self._lossy[bound]

    def lossless_compressor(self) -> Compressor:
        """The lossless compressor (used for checkpoints and initial blocks)."""

        return self._lossless

    # -- escalation --------------------------------------------------------------------

    def over_budget(self, footprint_bytes: int) -> bool:
        """Whether *footprint_bytes* exceeds the configured budget."""

        budget = self._config.memory_budget_bytes
        return budget is not None and footprint_bytes > budget

    def maybe_escalate(self, footprint_bytes: int, gate_index: int) -> bool:
        """Relax the bound one level if the footprint exceeds the budget.

        Returns ``True`` when an escalation happened.  Escalation is a no-op
        when no budget is configured or the loosest level is already active.
        """

        if not self.over_budget(footprint_bytes):
            return False
        if self.exhausted:
            return False
        from_bound = self.current_bound
        self._level_index += 1
        self._events.append(
            EscalationEvent(
                gate_index=gate_index,
                from_bound=from_bound,
                to_bound=self.current_bound,
                footprint_bytes=footprint_bytes,
                budget_bytes=self._config.memory_budget_bytes or 0,
            )
        )
        return True

    def force_level(self, bound: float) -> None:
        """Jump straight to a specific error level (used by tests/ablations)."""

        if bound == 0.0:
            self._level_index = -1
            return
        try:
            self._level_index = self._levels.index(bound)
        except ValueError as exc:
            raise ValueError(
                f"bound {bound} is not one of the configured levels {self._levels}"
            ) from exc
