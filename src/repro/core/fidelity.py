"""Fidelity accounting (Section 3.8).

Every lossy compression with pointwise relative bound ``δ`` can shrink each
amplitude magnitude by at most a factor ``(1 - δ)``, so the overlap with the
ideal state — the pure-state fidelity ``|<ψ_ideal|ψ_sim>|`` — drops by at most
the same factor.  Chaining the bounds over all gates gives the paper's lower
bound

    F >= Π_i (1 - δ_i)

where ``δ_i`` is the bound in force when gate ``i``'s blocks were
recompressed (0 while the simulator is still in the lossless phase).

:class:`FidelityTracker` maintains that running product; the module-level
:func:`fidelity_lower_bound` implements the same formula for the analytic
curves of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["FidelityTracker", "fidelity_lower_bound", "fidelity_curve"]


def fidelity_lower_bound(error_bounds: Iterable[float]) -> float:
    """``Π (1 - δ)`` over the per-gate error bounds (Eq. 11)."""

    bound = 1.0
    for delta in error_bounds:
        if delta < 0 or delta >= 1:
            raise ValueError(f"error bound {delta} outside [0, 1)")
        bound *= 1.0 - delta
    return bound


def fidelity_curve(num_gates: int, error_bound: float) -> np.ndarray:
    """Lower-bound fidelity after 0..num_gates gates at a fixed bound (Fig. 6)."""

    if num_gates < 0:
        raise ValueError("num_gates must be non-negative")
    if error_bound < 0 or error_bound >= 1:
        raise ValueError("error_bound must be in [0, 1)")
    gates = np.arange(num_gates + 1)
    return (1.0 - error_bound) ** gates


@dataclass
class FidelityTracker:
    """Running lower bound on the simulation fidelity."""

    _log_bound: float = 0.0
    _gate_bounds: list[float] = field(default_factory=list)

    def record_gate(self, error_bound: float) -> None:
        """Record the lossy bound used while executing one gate (0 = lossless)."""

        if error_bound < 0 or error_bound >= 1:
            raise ValueError(f"error bound {error_bound} outside [0, 1)")
        self._gate_bounds.append(error_bound)
        if error_bound > 0:
            self._log_bound += float(np.log1p(-error_bound))

    @property
    def lower_bound(self) -> float:
        """Current ``Π (1 - δ_i)``."""

        return float(np.exp(self._log_bound))

    @property
    def num_gates(self) -> int:
        """How many gates have been recorded."""

        return len(self._gate_bounds)

    @property
    def num_lossy_gates(self) -> int:
        """How many recorded gates ran with a non-zero error bound."""

        return sum(1 for bound in self._gate_bounds if bound > 0)

    @property
    def gate_bounds(self) -> tuple[float, ...]:
        """Per-gate error bounds in execution order."""

        return tuple(self._gate_bounds)

    def history(self) -> np.ndarray:
        """Lower bound after each recorded gate (length ``num_gates``)."""

        factors = 1.0 - np.asarray(self._gate_bounds, dtype=np.float64)
        if factors.size == 0:
            return np.ones(0)
        return np.cumprod(factors)

    def reset(self) -> None:
        """Forget all recorded gates (used when recovery rewinds a run)."""

        self._log_bound = 0.0
        self._gate_bounds.clear()
