"""Simulation checkpointing (Section 3.5).

Supercomputer jobs have wall-time limits (3-24 hours on Theta), so the paper
saves the compressed blocks before a job ends and resumes in the next job.
The same mechanism is reproduced here: a checkpoint is a single file holding
the partition geometry, the adaptive-controller state, the fidelity history
and every compressed blob, written with a small self-describing binary format
(no pickle, so a checkpoint cannot execute code when loaded).

Parsing is fully bounds-checked: a truncated or scribbled file raises
:class:`~repro.errors.CheckpointError` with the offending field named, never
raw ``struct``/``json`` junk — recovery code probing a possibly-torn
checkpoint (see :mod:`repro.resilience`) depends on that single exception
type to decide whether a snapshot is usable.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from ..distributed.partition import Partition  # noqa: F401 - re-export context
from ..errors import CheckpointError
from .blocks import CompressedBlock
from .config import SimulatorConfig
from .simulator import CompressedSimulator

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint",
    "CheckpointError",
]

_MAGIC = b"QCKPT001"

_BLOCK_HEADER = struct.Struct("<IIHdI")


def save_checkpoint(simulator: CompressedSimulator, path: str | Path) -> int:
    """Write *simulator*'s full compressed state to *path*.

    Returns the number of bytes written.  The simulator can keep running
    afterwards; the checkpoint is an independent snapshot.
    """

    path = Path(path)
    partition = simulator.partition
    config = simulator.config
    meta = {
        "num_qubits": partition.num_qubits,
        "num_ranks": partition.num_ranks,
        "block_amplitudes": partition.block_amplitudes,
        "gate_count": simulator.gate_count,
        "current_bound": simulator.controller.current_bound,
        "fidelity_gate_bounds": (
            list(simulator.fidelity_tracker.gate_bounds)
            if simulator.fidelity_tracker is not None
            else []
        ),
        "lossy_compressor": config.lossy_compressor,
        "lossless_backend": config.lossless_backend,
        "codec_engine": config.codec_engine,
        "error_levels": list(config.error_levels),
        "memory_budget_bytes": config.memory_budget_bytes,
        "track_fidelity_bound": config.track_fidelity_bound,
    }
    blocks = []
    for (rank, block), entry in simulator.state.iter_blocks():
        blocks.append((rank, block, entry))

    meta_blob = json.dumps(meta).encode()
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(meta_blob)))
        handle.write(meta_blob)
        handle.write(struct.pack("<I", len(blocks)))
        for rank, block, entry in blocks:
            name = entry.compressor.encode()
            handle.write(
                _BLOCK_HEADER.pack(rank, block, len(name), entry.bound, len(entry.blob))
            )
            handle.write(name)
            handle.write(entry.blob)
    return path.stat().st_size


class _Reader:
    """Bounds-checked cursor over a checkpoint's raw bytes.

    Every read names the field it is after, so truncation anywhere in the
    file raises a :class:`CheckpointError` that says which field was cut
    short instead of an :class:`IndexError`/:class:`struct.error` from the
    parsing internals.
    """

    def __init__(self, raw: bytes, path: Path) -> None:
        self._raw = raw
        self._path = path
        self._offset = 0

    def take(self, size: int, what: str) -> bytes:
        """The next *size* bytes, or a :class:`CheckpointError` naming *what*."""

        end = self._offset + size
        if end > len(self._raw):
            raise CheckpointError(
                f"checkpoint truncated inside {what}: need {size} bytes at "
                f"offset {self._offset}, file holds {len(self._raw)}",
                path=str(self._path),
            )
        chunk = self._raw[self._offset : end]
        self._offset = end
        return chunk

    def unpack(self, layout: struct.Struct, what: str) -> tuple:
        """Unpack one struct layout, bounds-checked like :meth:`take`."""

        return layout.unpack(self.take(layout.size, what))

    @property
    def exhausted(self) -> bool:
        """Whether every byte of the file has been consumed."""

        return self._offset == len(self._raw)


_U32 = struct.Struct("<I")


def read_checkpoint(path: str | Path) -> tuple[dict, list[tuple]]:
    """Parse a checkpoint file into ``(meta, blocks)`` without building a simulator.

    ``blocks`` is a list of ``(rank, block, compressor_name, bound, blob)``
    tuples.  This is the parsing half of :func:`load_checkpoint`, exposed
    separately so in-run recovery can push blocks into an *existing*
    simulator's store instead of constructing a fresh one.  Any malformed,
    truncated or undecodable content raises :class:`CheckpointError`.
    """

    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint: {exc}", path=str(path)
        ) from exc
    reader = _Reader(raw, path)
    if reader.take(len(_MAGIC), "magic") != _MAGIC:
        raise CheckpointError(
            f"{path} is not a repro checkpoint", path=str(path)
        )
    (meta_len,) = reader.unpack(_U32, "metadata length")
    meta_blob = reader.take(meta_len, "metadata")
    try:
        meta = json.loads(meta_blob.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint metadata is not valid JSON: {exc}", path=str(path)
        ) from exc
    if not isinstance(meta, dict):
        raise CheckpointError(
            "checkpoint metadata is not a JSON object", path=str(path)
        )
    (num_blocks,) = reader.unpack(_U32, "block count")
    blocks: list[tuple] = []
    for index in range(num_blocks):
        rank, block, name_len, bound, blob_len = reader.unpack(
            _BLOCK_HEADER, f"block {index} header"
        )
        try:
            name = reader.take(name_len, f"block {index} compressor name").decode()
        except UnicodeDecodeError as exc:
            raise CheckpointError(
                f"block {index} compressor name is not valid UTF-8",
                path=str(path),
            ) from exc
        blob = reader.take(blob_len, f"block {index} blob")
        blocks.append((rank, block, name, bound, blob))
    if not reader.exhausted:
        raise CheckpointError(
            "checkpoint has trailing bytes after the last block",
            path=str(path),
        )
    return meta, blocks


def _meta_field(meta: dict, key: str, path: Path):
    """A required metadata field, or a :class:`CheckpointError` naming it."""

    try:
        return meta[key]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint metadata is missing required field {key!r}",
            path=str(path),
        ) from exc


def load_checkpoint(
    path: str | Path, config: SimulatorConfig | None = None
) -> CompressedSimulator:
    """Rebuild a :class:`CompressedSimulator` from a checkpoint file.

    The returned simulator has the same partition geometry, compressed
    blocks, adaptive level and fidelity history as the one that was saved;
    applying the remainder of a circuit continues the simulation exactly
    where it stopped.
    """

    path = Path(path)
    meta, blocks = read_checkpoint(path)

    if config is None:
        config = SimulatorConfig(
            num_ranks=_meta_field(meta, "num_ranks", path),
            block_amplitudes=_meta_field(meta, "block_amplitudes", path),
            memory_budget_bytes=_meta_field(meta, "memory_budget_bytes", path),
            error_levels=tuple(_meta_field(meta, "error_levels", path)),
            lossy_compressor=_meta_field(meta, "lossy_compressor", path),
            lossless_backend=_meta_field(meta, "lossless_backend", path),
            # Absent in pre-1.1 checkpoints, which always tracked.
            track_fidelity_bound=meta.get("track_fidelity_bound", True),
            # Absent in pre-engine checkpoints; blobs are engine-agnostic, so
            # the default is safe for any checkpoint.
            codec_engine=meta.get("codec_engine", "numpy"),
        )
    else:
        if config.num_ranks != _meta_field(meta, "num_ranks", path):
            raise CheckpointError(
                "config.num_ranks does not match the checkpointed partition"
            )

    simulator = CompressedSimulator(
        _meta_field(meta, "num_qubits", path), config=config
    )

    expected = (
        simulator.partition.num_ranks * simulator.partition.blocks_per_rank
    )
    if len(blocks) != expected:
        raise CheckpointError(
            f"checkpoint holds {len(blocks)} blocks, partition expects {expected}",
            path=str(path),
        )
    for rank, block, name, bound, blob in blocks:
        simulator.state.store.put(
            rank, block, CompressedBlock(blob=blob, compressor=name, bound=bound)
        )

    # Restore progress counters.
    simulator._gate_index = int(_meta_field(meta, "gate_count", path))  # noqa: SLF001 - deliberate restore
    if simulator.fidelity_tracker is not None:
        for bound in _meta_field(meta, "fidelity_gate_bounds", path):
            simulator.fidelity_tracker.record_gate(float(bound))
    if _meta_field(meta, "current_bound", path):
        simulator.controller.force_level(float(meta["current_bound"]))
    return simulator
