"""Simulation checkpointing (Section 3.5).

Supercomputer jobs have wall-time limits (3-24 hours on Theta), so the paper
saves the compressed blocks before a job ends and resumes in the next job.
The same mechanism is reproduced here: a checkpoint is a single file holding
the partition geometry, the adaptive-controller state, the fidelity history
and every compressed blob, written with a small self-describing binary format
(no pickle, so a checkpoint cannot execute code when loaded).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..distributed.partition import Partition
from .blocks import CompressedBlock
from .config import SimulatorConfig
from .simulator import CompressedSimulator

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointError"]

_MAGIC = b"QCKPT001"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint file is malformed or inconsistent."""


def save_checkpoint(simulator: CompressedSimulator, path: str | Path) -> int:
    """Write *simulator*'s full compressed state to *path*.

    Returns the number of bytes written.  The simulator can keep running
    afterwards; the checkpoint is an independent snapshot.
    """

    path = Path(path)
    partition = simulator.partition
    config = simulator.config
    meta = {
        "num_qubits": partition.num_qubits,
        "num_ranks": partition.num_ranks,
        "block_amplitudes": partition.block_amplitudes,
        "gate_count": simulator.gate_count,
        "current_bound": simulator.controller.current_bound,
        "fidelity_gate_bounds": (
            list(simulator.fidelity_tracker.gate_bounds)
            if simulator.fidelity_tracker is not None
            else []
        ),
        "lossy_compressor": config.lossy_compressor,
        "lossless_backend": config.lossless_backend,
        "codec_engine": config.codec_engine,
        "error_levels": list(config.error_levels),
        "memory_budget_bytes": config.memory_budget_bytes,
        "track_fidelity_bound": config.track_fidelity_bound,
    }
    blocks = []
    for (rank, block), entry in simulator.state.iter_blocks():
        blocks.append((rank, block, entry))

    meta_blob = json.dumps(meta).encode()
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<I", len(meta_blob)))
        handle.write(meta_blob)
        handle.write(struct.pack("<I", len(blocks)))
        for rank, block, entry in blocks:
            name = entry.compressor.encode()
            handle.write(
                struct.pack("<IIHdI", rank, block, len(name), entry.bound, len(entry.blob))
            )
            handle.write(name)
            handle.write(entry.blob)
    return path.stat().st_size


def load_checkpoint(
    path: str | Path, config: SimulatorConfig | None = None
) -> CompressedSimulator:
    """Rebuild a :class:`CompressedSimulator` from a checkpoint file.

    The returned simulator has the same partition geometry, compressed
    blocks, adaptive level and fidelity history as the one that was saved;
    applying the remainder of a circuit continues the simulation exactly
    where it stopped.
    """

    path = Path(path)
    raw = path.read_bytes()
    if raw[: len(_MAGIC)] != _MAGIC:
        raise CheckpointError(f"{path} is not a repro checkpoint")
    offset = len(_MAGIC)
    (meta_len,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    meta = json.loads(raw[offset : offset + meta_len].decode())
    offset += meta_len

    if config is None:
        config = SimulatorConfig(
            num_ranks=meta["num_ranks"],
            block_amplitudes=meta["block_amplitudes"],
            memory_budget_bytes=meta["memory_budget_bytes"],
            error_levels=tuple(meta["error_levels"]),
            lossy_compressor=meta["lossy_compressor"],
            lossless_backend=meta["lossless_backend"],
            # Absent in pre-1.1 checkpoints, which always tracked.
            track_fidelity_bound=meta.get("track_fidelity_bound", True),
            # Absent in pre-engine checkpoints; blobs are engine-agnostic, so
            # the default is safe for any checkpoint.
            codec_engine=meta.get("codec_engine", "numpy"),
        )
    else:
        if config.num_ranks != meta["num_ranks"]:
            raise CheckpointError(
                "config.num_ranks does not match the checkpointed partition"
            )

    simulator = CompressedSimulator(meta["num_qubits"], config=config)

    (num_blocks,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    expected = (
        simulator.partition.num_ranks * simulator.partition.blocks_per_rank
    )
    if num_blocks != expected:
        raise CheckpointError(
            f"checkpoint holds {num_blocks} blocks, partition expects {expected}"
        )
    for _ in range(num_blocks):
        rank, block, name_len, bound, blob_len = struct.unpack_from("<IIHdI", raw, offset)
        offset += struct.calcsize("<IIHdI")
        name = raw[offset : offset + name_len].decode()
        offset += name_len
        blob = raw[offset : offset + blob_len]
        offset += blob_len
        simulator.state.store.put(
            rank, block, CompressedBlock(blob=blob, compressor=name, bound=bound)
        )

    # Restore progress counters.
    simulator._gate_index = int(meta["gate_count"])  # noqa: SLF001 - deliberate restore
    if simulator.fidelity_tracker is not None:
        for bound in meta["fidelity_gate_bounds"]:
            simulator.fidelity_tracker.record_gate(float(bound))
    if meta["current_bound"]:
        simulator.controller.force_level(float(meta["current_bound"]))
    return simulator
