"""Compressed block storage and decompression scratch buffers.

The state vector never exists in full: every rank's slice is held as a list
of compressed blobs (:class:`BlockStore`), and at most two blocks per rank
are ever decompressed at the same time into reusable scratch buffers
(:class:`ScratchPool`) — the role MCDRAM plays in the paper's Theta runs
(Section 3.2).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..compression.interface import Compressor
from ..distributed.partition import Partition

__all__ = ["CompressedBlock", "BlockStore", "ScratchPool"]


@dataclass
class CompressedBlock:
    """One compressed block plus the metadata needed to interpret it."""

    blob: bytes
    #: Name of the compressor that produced the blob ("lossless", "xor-bitplane", ...).
    compressor: str
    #: Error bound used (0.0 for lossless).
    bound: float

    @property
    def nbytes(self) -> int:
        """Size of the compressed payload in bytes."""

        return len(self.blob)


class BlockStore:
    """All compressed blocks of the distributed state, indexed by (rank, block)."""

    def __init__(self, partition: Partition) -> None:
        self._partition = partition
        self._blocks: list[list[CompressedBlock | None]] = [
            [None] * partition.blocks_per_rank for _ in range(partition.num_ranks)
        ]

    @property
    def partition(self) -> Partition:
        """The rank/block partition this store is laid out for."""

        return self._partition

    def get(self, rank: int, block: int) -> CompressedBlock:
        """The compressed block at (*rank*, *block*); KeyError if unset."""

        entry = self._blocks[rank][block]
        if entry is None:
            raise KeyError(f"block ({rank}, {block}) has not been initialised")
        return entry

    def put(self, rank: int, block: int, compressed: CompressedBlock) -> None:
        """Replace the compressed block at (*rank*, *block*)."""

        self._blocks[rank][block] = compressed

    def __iter__(self):
        for rank in range(self._partition.num_ranks):
            for block in range(self._partition.blocks_per_rank):
                yield (rank, block), self.get(rank, block)

    # -- memory accounting ---------------------------------------------------------

    def compressed_bytes(self) -> int:
        """Total bytes of all compressed blobs."""

        return sum(
            entry.nbytes
            for per_rank in self._blocks
            for entry in per_rank
            if entry is not None
        )

    def rank_compressed_bytes(self, rank: int) -> int:
        """Compressed footprint of one rank's initialised blocks."""

        return sum(entry.nbytes for entry in self._blocks[rank] if entry is not None)

    def total_bytes_with_scratch(self) -> int:
        """Eq. 8: compressed blocks plus two decompressed blocks per rank."""

        scratch = 2 * self._partition.block_bytes * self._partition.num_ranks
        return self.compressed_bytes() + scratch

    def compression_ratio(self) -> float:
        """Current overall ratio: uncompressed state size / compressed size."""

        compressed = self.compressed_bytes()
        if compressed == 0:
            return float("inf")
        return self._partition.uncompressed_bytes() / compressed

    def bounds_in_use(self) -> set[float]:
        """Distinct error bounds present across the stored blocks."""

        return {
            entry.bound
            for per_rank in self._blocks
            for entry in per_rank
            if entry is not None
        }


class ScratchPool:
    """Reusable decompression buffers (the MCDRAM staging area).

    At most two blocks per rank are decompressed at any time (Figure 2); in
    this single-process reproduction that means two shared ``complex128``
    buffers of one block each, reused for every gate to avoid repeated
    allocation in the hot loop.  When the simulator runs block tasks on
    worker threads the pool is enlarged to two buffers per worker, and each
    task checks its buffers out through :meth:`lease`.
    """

    def __init__(self, block_amplitudes: int, buffers: int = 2) -> None:
        if buffers < 1:
            raise ValueError("need at least one scratch buffer")
        self._block_amplitudes = int(block_amplitudes)
        self._buffers = [
            np.zeros(block_amplitudes, dtype=np.complex128) for _ in range(buffers)
        ]
        self._available = threading.Condition()
        self._free = list(range(len(self._buffers)))

    @property
    def block_amplitudes(self) -> int:
        """Amplitudes per block (the size every scratch buffer is cut to)."""

        return self._block_amplitudes

    @property
    def num_buffers(self) -> int:
        """How many scratch buffers the pool owns."""

        return len(self._buffers)

    def buffer(self, index: int) -> np.ndarray:
        """Return scratch buffer *index* (contents are stale until filled)."""

        return self._buffers[index]

    def load(self, index: int, values: np.ndarray) -> np.ndarray:
        """Copy decompressed float64 data into buffer *index* as complex128."""

        return self.fill(self._buffers[index], values)

    def fill(self, buffer: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Copy decompressed float64 data into a leased buffer as complex128."""

        view = values.view(np.complex128) if values.dtype == np.float64 else values
        if view.size != buffer.size:
            raise ValueError(
                f"decompressed block has {view.size} amplitudes, expected {buffer.size}"
            )
        np.copyto(buffer, view)
        return buffer

    @contextmanager
    def lease(self, count: int = 1) -> Iterator[tuple[np.ndarray, ...]]:
        """Check out *count* scratch buffers; blocks until enough are free.

        All buffers of a task are acquired atomically (no incremental
        hold-and-wait), so concurrent tasks can never deadlock as long as the
        pool holds at least one task's worth of buffers.
        """

        if not 1 <= count <= len(self._buffers):
            raise ValueError(
                f"cannot lease {count} of {len(self._buffers)} scratch buffers"
            )
        with self._available:
            while len(self._free) < count:
                self._available.wait()
            indices = [self._free.pop() for _ in range(count)]
        try:
            yield tuple(self._buffers[index] for index in indices)
        finally:
            with self._available:
                self._free.extend(indices)
                self._available.notify_all()
