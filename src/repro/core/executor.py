"""Block-task execution engine.

The simulator used to run every :class:`~repro.distributed.exchange.BlockTask`
of a gate plan inline and strictly sequentially.  :class:`TaskExecutor`
factors that hot path out and adds an optional thread pool: the tasks of one
gate plan touch pairwise-disjoint (rank, block) sets
(:meth:`GatePlan.independent_groups`), so they can run concurrently — each
task leases its own scratch buffers from the shared
:class:`~repro.core.blocks.ScratchPool`, and the block cache and report use
internal locks.  The NumPy kernels and the zlib/lzma/bz2 backends release the
GIL on block-sized payloads, which is where the wall-clock win comes from.

With ``num_workers=1`` (the default) execution is exactly the seed's
sequential loop.  Results are bit-identical either way: tasks write disjoint
blocks, the compressors are deterministic pure functions of their input, and
a cache hit returns the same bytes recomputation would produce.

Communication accounting stays in the calling thread: the simulated
communicator's modelled-time delta is order-dependent, so the executor
accounts every cross-rank exchange of the plan up front, before dispatch.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..circuits import Gate
from ..compression.interface import Compressor
from ..distributed.comm import SimulatedCommunicator
from ..distributed.exchange import BlockTask, GatePlan
from ..statevector import ops
from .blocks import ScratchPool
from .cache import BlockCache
from .compressed_state import CompressedStateVector
from .report import SimulationReport

__all__ = ["TaskExecutor"]


class TaskExecutor:
    """Runs the block tasks of one (possibly fused) gate plan.

    Parameters
    ----------
    state:
        The compressed state whose blocks the tasks read and write.
    scratch:
        Shared scratch pool; must hold at least two buffers per worker so a
        block-pair task can always lease both of its buffers atomically.
    cache:
        Optional compressed block cache (Section 3.4); must be thread-safe.
    decompressors:
        Compressor-name → instance map used to decode stored blobs.
    report:
        Time/counter accumulator; must be thread-safe.
    comm:
        Simulated communicator for cross-rank exchanges (main thread only).
    num_workers:
        Thread-pool width; ``1`` executes sequentially with no pool at all.
    """

    def __init__(
        self,
        *,
        state: CompressedStateVector,
        scratch: ScratchPool,
        cache: BlockCache | None,
        decompressors: dict[str, Compressor],
        report: SimulationReport,
        comm: SimulatedCommunicator,
        num_workers: int = 1,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_workers > 1 and scratch.num_buffers < 2 * num_workers:
            raise ValueError(
                f"scratch pool has {scratch.num_buffers} buffers; "
                f"{num_workers} workers need {2 * num_workers}"
            )
        self._state = state
        self._scratch = scratch
        self._cache = cache
        self._decompressors = decompressors
        self._report = report
        self._comm = comm
        self._num_workers = int(num_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_guard = threading.Lock()

    @property
    def num_workers(self) -> int:
        return self._num_workers

    def rebind_report(self, report: SimulationReport) -> None:
        """Point the executor at a fresh report accumulator.

        Called by :meth:`CompressedSimulator.reset` between batched circuits
        so each circuit gets its own report while the executor (and its
        worker pool) stays warm.
        """

        self._report = report

    def close(self) -> None:
        """Shut down the worker pool (idempotent; sequential mode is a no-op)."""

        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._num_workers,
                    thread_name_prefix="repro-block-task",
                )
            return self._pool

    # -- plan execution ---------------------------------------------------------------

    def run_plan(
        self,
        gate: Gate,
        plan: GatePlan,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Execute every task of *plan*, applying *gate*'s matrix."""

        self._account_exchanges(plan)
        if self._num_workers == 1 or len(plan.tasks) < 2:
            for task in plan.tasks:
                self._run_task(gate, plan, task, compressor, op_key, local_control_mask)
            return
        pool = self._ensure_pool()
        for wave in plan.independent_groups():
            # Dedupe tasks whose input blobs are byte-identical (the Section
            # 3.4 redundancy the block cache exploits).  Running them
            # concurrently would make every copy miss the cache and pay a
            # full round trip; instead one representative computes and the
            # output blobs fan out to the duplicates — the same total
            # compressor work the sequential path achieves via cache hits.
            groups: dict[tuple[bytes, bytes | None], list[BlockTask]] = {}
            for task in wave:
                blob1 = self._state.get_block(*task.first).blob
                blob2 = (
                    self._state.get_block(*task.second).blob
                    if task.second is not None
                    else None
                )
                groups.setdefault((blob1, blob2), []).append(task)
            futures = [
                (
                    pool.submit(
                        self._run_task,
                        gate,
                        plan,
                        tasks[0],
                        compressor,
                        op_key,
                        local_control_mask,
                    ),
                    tasks,
                )
                for tasks in groups.values()
            ]
            for future, tasks in futures:
                out1, out2 = future.result()
                for duplicate in tasks[1:]:
                    self._report.add_count("tasks_executed")
                    self._state.put_block(
                        duplicate.first[0], duplicate.first[1], out1, compressor
                    )
                    if duplicate.second is not None and out2 is not None:
                        self._state.put_block(
                            duplicate.second[0], duplicate.second[1], out2, compressor
                        )

    def _account_exchanges(self, plan: GatePlan) -> None:
        """Record the plan's inter-rank block exchanges (Section 3.3).

        Each rank ships its compressed block to the other before the update;
        the modelled-seconds delta must be observed serially, so this runs in
        the calling thread before any task is dispatched.
        """

        for task in plan.tasks:
            if not task.crosses_ranks or task.second is None:
                continue
            entry1 = self._state.get_block(*task.first)
            entry2 = self._state.get_block(*task.second)
            before = self._comm.modelled_seconds
            self._comm.exchange_blocks(
                task.first[0], task.second[0], max(entry1.nbytes, entry2.nbytes)
            )
            self._report.add_time("communication", self._comm.modelled_seconds - before)

    # -- single-task execution ---------------------------------------------------------

    def _run_task(
        self,
        gate: Gate,
        plan: GatePlan,
        task: BlockTask,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> tuple[bytes, bytes | None]:
        """Execute one task and return its output blobs (for wave fan-out)."""

        rank1, block1 = task.first
        entry1 = self._state.get_block(rank1, block1)
        entry2 = None
        if task.second is not None:
            entry2 = self._state.get_block(*task.second)
        self._report.add_count("tasks_executed")

        # Compressed block cache lookup (Section 3.4): a hit skips the whole
        # decompress/apply/recompress round trip.
        if self._cache is not None:
            cached = self._cache.lookup(
                op_key, entry1.blob, entry2.blob if entry2 else None
            )
            if cached is not None:
                out1, out2 = cached
                self._state.put_block(rank1, block1, out1, compressor)
                if task.second is not None and out2 is not None:
                    self._state.put_block(task.second[0], task.second[1], out2, compressor)
                return out1, out2

        buffer_count = 1 if task.second is None else 2
        with self._scratch.lease(buffer_count) as buffers:
            with self._report.timer("decompression"):
                buffer1 = self._scratch.fill(
                    buffers[0],
                    self._decompressors[entry1.compressor].decompress(entry1.blob),
                )
                buffer2 = None
                if entry2 is not None:
                    buffer2 = self._scratch.fill(
                        buffers[1],
                        self._decompressors[entry2.compressor].decompress(entry2.blob),
                    )
            self._report.add_count("decompress_calls", buffer_count)

            with self._report.timer("computation"):
                if buffer2 is None:
                    ops.apply_controlled_single_qubit(
                        buffer1, gate.matrix, gate.target, tuple(plan.local_controls)
                    )
                else:
                    self._apply_pairwise(gate, buffer1, buffer2, local_control_mask)

            with self._report.timer("compression"):
                out1 = compressor.compress(buffer1.view(np.float64))
                out2 = None
                if buffer2 is not None:
                    out2 = compressor.compress(buffer2.view(np.float64))
            self._report.add_count("compress_calls", buffer_count)

        self._state.put_block(rank1, block1, out1, compressor)
        if task.second is not None and out2 is not None:
            self._state.put_block(task.second[0], task.second[1], out2, compressor)

        if self._cache is not None:
            self._cache.insert(
                op_key, entry1.blob, entry2.blob if entry2 else None, out1, out2
            )
        return out1, out2

    @staticmethod
    def _apply_pairwise(
        gate: Gate,
        buffer_x: np.ndarray,
        buffer_y: np.ndarray,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Target qubit selects the block or rank: cross-buffer pair update."""

        if local_control_mask is None:
            ops.apply_single_qubit_pairwise(buffer_x, buffer_y, gate.matrix)
            return
        u00, u01 = gate.matrix[0, 0], gate.matrix[0, 1]
        u10, u11 = gate.matrix[1, 0], gate.matrix[1, 1]
        a = buffer_x[local_control_mask]
        b = buffer_y[local_control_mask]
        buffer_x[local_control_mask] = u00 * a + u01 * b
        buffer_y[local_control_mask] = u10 * a + u11 * b
