"""Block-task execution engine.

The simulator used to run every :class:`~repro.distributed.exchange.BlockTask`
of a gate plan inline and strictly sequentially.  :class:`TaskExecutor`
factors that hot path out and adds an optional thread pool: the tasks of one
gate plan touch pairwise-disjoint (rank, block) sets
(:meth:`GatePlan.independent_groups`), so they can run concurrently — each
task leases its own scratch buffers from the shared
:class:`~repro.core.blocks.ScratchPool`, and the block cache and report use
internal locks.  The NumPy kernels and the zlib/lzma/bz2 backends release the
GIL on block-sized payloads, which is where the wall-clock win comes from.

With ``num_workers=1`` (the default) execution is exactly the seed's
sequential loop.  Results are bit-identical either way: tasks write disjoint
blocks, the compressors are deterministic pure functions of their input, and
a cache hit returns the same bytes recomputation would produce.

Communication accounting stays in the calling thread: the simulated
communicator's modelled-time delta is order-dependent, so the executor
accounts every cross-rank exchange of the plan up front, before dispatch.

:class:`ProcessTaskExecutor` is the second tier (``SimulatorConfig.executor
= "process"``): the same plan semantics, but the tasks ship to a persistent
pool of worker *processes* (:mod:`repro.core.procpool`), each holding a warm
decompressor map, scratch buffers and a block-cache shard.  Blobs move
through shared-memory slots rather than pickle, and the codec work — which
the thread tier cannot parallelise because NumPy fancy-index gathers hold
the GIL — runs truly concurrently.  Results are bit-identical across both
tiers and the sequential path: tasks write disjoint blocks and every worker
runs the exact same kernels and codecs on the exact same bytes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..circuits import Gate
from ..compression.interface import Compressor
from ..distributed.comm import SimulatedCommunicator
from ..distributed.exchange import BlockTask, GatePlan
from ..errors import BlockCorruptionError, WorkerCrashedError
from ..resilience import FaultPolicy, resolve_fault_policy
from ..statevector import ops
from .blocks import ScratchPool
from .cache import BlockCache
from .compressed_state import CompressedStateVector
from .procpool import (
    SLOTS_PER_WORKER,
    BlockTaskWorker,
    ProcessPool,
    block_slot_bytes,
    raise_worker_error,
)
from .report import SimulationReport

__all__ = ["TaskExecutor", "ProcessTaskExecutor"]


class TaskExecutor:
    """Runs the block tasks of one (possibly fused) gate plan.

    Parameters
    ----------
    state:
        The compressed state whose blocks the tasks read and write.
    scratch:
        Shared scratch pool; must hold at least two buffers per worker so a
        block-pair task can always lease both of its buffers atomically.
    cache:
        Optional compressed block cache (Section 3.4); must be thread-safe.
    decompressors:
        Compressor-name → instance map used to decode stored blobs.
    report:
        Time/counter accumulator; must be thread-safe.
    comm:
        Simulated communicator for cross-rank exchanges (main thread only).
    num_workers:
        Thread-pool width; ``1`` executes sequentially with no pool at all.
    """

    def __init__(
        self,
        *,
        state: CompressedStateVector,
        scratch: ScratchPool,
        cache: BlockCache | None,
        decompressors: dict[str, Compressor],
        report: SimulationReport,
        comm: SimulatedCommunicator,
        num_workers: int = 1,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._validate_scratch(scratch, num_workers)
        self._state = state
        self._scratch = scratch
        self._cache = cache
        self._decompressors = decompressors
        self._report = report
        self._comm = comm
        self._num_workers = int(num_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_guard = threading.Lock()

    @staticmethod
    def _validate_scratch(scratch: ScratchPool, num_workers: int) -> None:
        if num_workers > 1 and scratch.num_buffers < 2 * num_workers:
            raise ValueError(
                f"scratch pool has {scratch.num_buffers} buffers; "
                f"{num_workers} workers need {2 * num_workers}"
            )

    @property
    def num_workers(self) -> int:
        """How many workers execute block tasks (1 for the thread tier)."""

        return self._num_workers

    def reset_workers(self) -> None:
        """Restore fresh-simulator worker state between batched circuits.

        The thread tier keeps no per-worker state beyond the pool itself, so
        this is a no-op; the process tier overrides it to clear every
        worker's block-cache shard and warm-compressor map.
        """

    def rebind_report(self, report: SimulationReport) -> None:
        """Point the executor at a fresh report accumulator.

        Called by :meth:`CompressedSimulator.reset` between batched circuits
        so each circuit gets its own report while the executor (and its
        worker pool) stays warm.
        """

        self._report = report

    def close(self) -> None:
        """Shut down the worker pool (idempotent; sequential mode is a no-op)."""

        with self._pool_guard:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._num_workers,
                    thread_name_prefix="repro-block-task",
                )
            return self._pool

    # -- plan execution ---------------------------------------------------------------

    def run_plan(
        self,
        gate: Gate,
        plan: GatePlan,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Execute every task of *plan*, applying *gate*'s matrix."""

        self._account_exchanges(plan)
        if self._num_workers == 1 or len(plan.tasks) < 2:
            for task in plan.tasks:
                self._run_task(gate, plan, task, compressor, op_key, local_control_mask)
            return
        pool = self._ensure_pool()
        for wave in plan.independent_groups():
            groups = self._dedupe_wave(wave)
            futures = [
                (
                    pool.submit(
                        self._run_task,
                        gate,
                        plan,
                        tasks[0],
                        compressor,
                        op_key,
                        local_control_mask,
                    ),
                    tasks,
                )
                for tasks in groups
            ]
            for future, tasks in futures:
                out1, out2 = future.result()
                self._fan_out_duplicates(tasks, out1, out2, compressor)

    def _dedupe_wave(self, wave: tuple[BlockTask, ...]) -> list[list[BlockTask]]:
        """Group a wave's tasks by byte-identical input blobs.

        This is the Section 3.4 redundancy the block cache exploits.  Running
        duplicates concurrently would make every copy miss the cache and pay
        a full round trip; instead one representative computes and the output
        blobs fan out to the duplicates — the same total compressor work the
        sequential path achieves via cache hits.
        """

        groups: dict[tuple[bytes, bytes | None], list[BlockTask]] = {}
        for task in wave:
            blob1 = self._state.get_block(*task.first).blob
            blob2 = (
                self._state.get_block(*task.second).blob
                if task.second is not None
                else None
            )
            groups.setdefault((blob1, blob2), []).append(task)
        return list(groups.values())

    def _fan_out_duplicates(
        self,
        tasks: list[BlockTask],
        out1: bytes,
        out2: bytes | None,
        compressor: Compressor,
    ) -> None:
        """Copy a representative task's output blobs onto its duplicates."""

        for duplicate in tasks[1:]:
            self._report.add_count("tasks_executed")
            self._state.put_block(
                duplicate.first[0], duplicate.first[1], out1, compressor
            )
            if duplicate.second is not None and out2 is not None:
                self._state.put_block(
                    duplicate.second[0], duplicate.second[1], out2, compressor
                )

    def _account_exchanges(self, plan: GatePlan) -> None:
        """Record the plan's inter-rank block exchanges (Section 3.3).

        Each rank ships its compressed block to the other before the update;
        the modelled-seconds delta must be observed serially, so this runs in
        the calling thread before any task is dispatched.
        """

        for task in plan.tasks:
            if not task.crosses_ranks or task.second is None:
                continue
            entry1 = self._state.get_block(*task.first)
            entry2 = self._state.get_block(*task.second)
            before = self._comm.modelled_seconds
            self._comm.exchange_blocks(
                task.first[0], task.second[0], max(entry1.nbytes, entry2.nbytes)
            )
            self._report.add_time("communication", self._comm.modelled_seconds - before)

    # -- single-task execution ---------------------------------------------------------

    def _run_task(
        self,
        gate: Gate,
        plan: GatePlan,
        task: BlockTask,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> tuple[bytes, bytes | None]:
        """Execute one task and return its output blobs (for wave fan-out)."""

        rank1, block1 = task.first
        entry1 = self._state.get_block(rank1, block1)
        entry2 = None
        if task.second is not None:
            entry2 = self._state.get_block(*task.second)
        self._report.add_count("tasks_executed")

        # Compressed block cache lookup (Section 3.4): a hit skips the whole
        # decompress/apply/recompress round trip.
        if self._cache is not None:
            cached = self._cache.lookup(
                op_key, entry1.blob, entry2.blob if entry2 else None
            )
            if cached is not None:
                out1, out2 = cached
                self._state.put_block(rank1, block1, out1, compressor)
                if task.second is not None and out2 is not None:
                    self._state.put_block(task.second[0], task.second[1], out2, compressor)
                return out1, out2

        buffer_count = 1 if task.second is None else 2
        with self._scratch.lease(buffer_count) as buffers:
            with self._report.timer("decompression"):
                buffer1 = self._scratch.fill(
                    buffers[0],
                    self._decompressors[entry1.compressor].decompress(entry1.blob),
                )
                buffer2 = None
                if entry2 is not None:
                    buffer2 = self._scratch.fill(
                        buffers[1],
                        self._decompressors[entry2.compressor].decompress(entry2.blob),
                    )
            self._report.add_count("decompress_calls", buffer_count)

            with self._report.timer("computation"):
                if buffer2 is None:
                    ops.apply_controlled_single_qubit(
                        buffer1, gate.matrix, gate.target, tuple(plan.local_controls)
                    )
                else:
                    self._apply_pairwise(gate, buffer1, buffer2, local_control_mask)

            with self._report.timer("compression"):
                out1 = compressor.compress(buffer1.view(np.float64))
                out2 = None
                if buffer2 is not None:
                    out2 = compressor.compress(buffer2.view(np.float64))
            self._report.add_count("compress_calls", buffer_count)

        self._state.put_block(rank1, block1, out1, compressor)
        if task.second is not None and out2 is not None:
            self._state.put_block(task.second[0], task.second[1], out2, compressor)

        if self._cache is not None:
            self._cache.insert(
                op_key, entry1.blob, entry2.blob if entry2 else None, out1, out2
            )
        return out1, out2

    @staticmethod
    def _apply_pairwise(
        gate: Gate,
        buffer_x: np.ndarray,
        buffer_y: np.ndarray,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Target qubit selects the block or rank: cross-buffer pair update."""

        ops.apply_single_qubit_pairwise_masked(
            buffer_x, buffer_y, gate.matrix, local_control_mask
        )


class ProcessTaskExecutor(TaskExecutor):
    """Runs block tasks on a persistent pool of worker *processes*.

    Same contract as :class:`TaskExecutor` — bit-identical results, disjoint
    block writes, exchange accounting up front — but the decompress → apply
    → recompress round trip happens in worker processes, so the codec path
    scales past the GIL.  Compressed blobs travel through per-worker
    shared-memory slots (:mod:`repro.core.procpool`); the control pipe only
    carries the 2x2 matrix, control metadata and frame references.

    Tasks route to workers by block affinity (flat index of the task's first
    block modulo the pool width), so each worker's block-cache shard sees
    every recurrence of its blocks' patterns and the assignment — hence the
    result — is deterministic.  Wave dedupe runs in the parent exactly as in
    the thread tier, so byte-identical duplicate tasks are computed once.

    Parameters beyond :class:`TaskExecutor`'s: *cache_lines*,
    *cache_miss_disable_threshold* and *cache_enabled* configure the
    per-worker cache shards (the parent's :class:`BlockCache` object is kept
    only as the stats sink the simulator reports from), *start_method*
    picks the ``multiprocessing`` start method (``None`` = platform
    default; ``"fork"`` and ``"spawn"`` are both supported and produce
    bit-identical states), and *fault_policy* opts into recovery.

    Failure handling (:mod:`repro.resilience`): the parent holds the
    authoritative block blobs until a wave commits, so when a worker dies or
    a shared-memory payload fails its checksum, the already-collected
    results of the wave stay committed, the dead workers are respawned in
    place and only the still-uncommitted task groups are re-dispatched —
    idempotent, bit-identical replay.  When ``max_retries`` is exhausted the
    ``degrade_to`` ladder (if any) finishes the wave inline and moves the
    executor down a tier (thread or sequential) for the rest of the run.
    """

    def __init__(
        self,
        *,
        state: CompressedStateVector,
        scratch: ScratchPool,
        cache: BlockCache | None,
        decompressors: dict[str, Compressor],
        report: SimulationReport,
        comm: SimulatedCommunicator,
        num_workers: int = 1,
        cache_lines: int = 64,
        cache_miss_disable_threshold: int | None = 256,
        start_method: str | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        super().__init__(
            state=state,
            scratch=scratch,
            cache=cache,
            decompressors=decompressors,
            report=report,
            comm=comm,
            num_workers=num_workers,
        )
        self._cache_lines = int(cache_lines)
        self._cache_threshold = cache_miss_disable_threshold
        self._start_method = start_method
        self._proc_pool: ProcessPool | None = None
        self._policy = resolve_fault_policy(fault_policy)
        #: Tier the executor degraded to after exhausting retries, or None
        #: while the process tier is healthy.
        self._degraded: str | None = None

    @staticmethod
    def _validate_scratch(scratch: ScratchPool, num_workers: int) -> None:
        # Workers hold their own scratch pools; the parent pool only serves
        # sequential fallbacks and needs no per-worker sizing.
        if scratch.num_buffers < 2:
            raise ValueError("process executor needs >= 2 parent scratch buffers")

    # -- pool lifecycle ----------------------------------------------------------------

    def _ensure_proc_pool(self) -> ProcessPool:
        if self._proc_pool is None:
            self._proc_pool = ProcessPool(
                self._num_workers,
                BlockTaskWorker,
                init_args=(
                    self._scratch.block_amplitudes,
                    self._decompressors,
                    self._cache_lines,
                    self._cache_threshold,
                    self._cache is not None,
                ),
                slot_bytes=block_slot_bytes(self._scratch.block_amplitudes),
                start_method=self._start_method,
                fault_policy=self._policy,
            )
        return self._proc_pool

    @property
    def pool(self) -> ProcessPool | None:
        """The live worker pool, or ``None`` before the first plan runs."""

        return self._proc_pool

    def reset_workers(self) -> None:
        """Clear every worker's cache shard and warm-compressor map.

        Called by :meth:`CompressedSimulator.reset` so a batched circuit sees
        the same cache behaviour as a fresh simulator while the processes
        themselves (and their decompressor maps and scratch pools) stay warm.
        """

        if self._proc_pool is not None:
            self._proc_pool.broadcast(("reset",))

    def close(self) -> None:
        """Shut down the worker processes and any degrade-tier thread pool."""

        pool, self._proc_pool = self._proc_pool, None
        if pool is not None:
            pool.close()
        super().close()

    @property
    def degraded_tier(self) -> str | None:
        """Tier the executor fell back to ("thread"/"sequential"), or None."""

        return self._degraded

    # -- plan execution ----------------------------------------------------------------

    def run_plan(
        self,
        gate: Gate,
        plan: GatePlan,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Execute one gate plan across the pool (degraded path when on)."""

        if self._degraded is not None:
            self._run_plan_degraded(
                gate, plan, compressor, op_key, local_control_mask
            )
            return
        if self._num_workers == 1:
            # The documented num_workers=1 contract is the seed's sequential
            # execution; a one-process pool would pay IPC per task for zero
            # parallelism.  The base class runs the plan inline.
            super().run_plan(gate, plan, compressor, op_key, local_control_mask)
            return
        self._account_exchanges(plan)
        pool = self._ensure_proc_pool()
        base_message = (
            "task",
            gate.matrix,
            gate.target,
            tuple(plan.local_controls),
            compressor,
            op_key,
        )
        for wave_index, wave in enumerate(plan.independent_groups()):
            groups = self._dedupe_wave(wave)
            if self._degraded is not None:
                # A mid-plan degrade finishes the remaining waves inline;
                # subsequent plans route through _run_plan_degraded.
                self._run_groups_inline(
                    gate, plan, groups, compressor, op_key, local_control_mask
                )
                continue
            self._execute_wave(
                pool,
                gate,
                plan,
                wave_index,
                groups,
                base_message,
                compressor,
                op_key,
                local_control_mask,
            )

    def _execute_wave(
        self,
        pool: ProcessPool,
        gate: Gate,
        plan: GatePlan,
        wave_index: int,
        groups: list[list[BlockTask]],
        base_message: tuple,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Run one wave's task groups on the pool, recovering per the policy.

        Committed groups stay committed across retries — the parent's block
        store is authoritative, every group commits atomically at collect
        time, and only still-pending groups are re-dispatched — so replay
        after a worker death or a corrupted frame is bit-identical to an
        undisturbed run.
        """

        blocks_per_rank = self._state.partition.blocks_per_rank
        pending = list(groups)
        attempt = 0
        while True:
            queues: dict[int, list[list[BlockTask]]] = {}
            for tasks in pending:
                rank, block = tasks[0].first
                worker_id = (rank * blocks_per_rank + block) % pool.num_workers
                queues.setdefault(worker_id, []).append(tasks)
            in_flight: dict[tuple[int, int], list[BlockTask]] = {}
            try:
                while queues or in_flight:
                    for worker_id in list(queues):
                        queue = queues[worker_id]
                        while queue and self._can_submit(pool, worker_id):
                            # Pop only after the submit succeeds: a crash
                            # detected at dispatch leaves the group queued
                            # for the retry pass.
                            tasks = queue[0]
                            ticket = self._dispatch(
                                pool, worker_id, base_message, tasks
                            )
                            queue.pop(0)
                            in_flight[(worker_id, ticket)] = tasks
                        if not queue:
                            del queues[worker_id]
                    if in_flight:
                        self._collect_one(pool, in_flight, compressor)
                return
            except (WorkerCrashedError, BlockCorruptionError) as exc:
                lost_start = time.perf_counter()
                self._drain_survivors(pool, in_flight, compressor)
                pending = [tasks for queue in queues.values() for tasks in queue]
                pending.extend(in_flight.values())
                if not pending:  # pragma: no cover - defensive
                    return
                if attempt < self._policy.max_retries:
                    attempt += 1
                    restarted = pool.heal()
                    self._report.record_recovery(
                        retries=1,
                        waves_replayed=1,
                        restarts=len(restarted),
                        time_lost_seconds=time.perf_counter() - lost_start,
                    )
                    delay = self._policy.backoff_seconds(attempt - 1)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if self._policy.degrade_to:
                    tier = self._policy.degrade_to[0]
                    self._enter_degraded(tier)
                    self._report.record_recovery(
                        degraded_to=tier,
                        time_lost_seconds=time.perf_counter() - lost_start,
                    )
                    self._run_groups_inline(
                        gate, plan, pending, compressor, op_key, local_control_mask
                    )
                    return
                exc.wave_index = wave_index
                exc.gate = gate.name
                raise

    def _drain_survivors(
        self,
        pool: ProcessPool,
        in_flight: dict[tuple[int, int], list[BlockTask]],
        compressor: Compressor,
    ) -> None:
        """Collect every still-valid reply after a failure surfaced.

        Healthy workers' results commit normally (and leave ``in_flight``);
        further corrupted frames stay pending for replay; dead workers'
        outstanding tickets are abandoned (their replies can never arrive).
        On return the pool owes nothing, and ``in_flight`` holds exactly the
        groups that must be re-dispatched.
        """

        while pool.has_outstanding():
            try:
                self._collect_one(pool, in_flight, compressor)
            except BlockCorruptionError:
                continue
            except WorkerCrashedError as exc:
                if exc.worker_id is not None:
                    pool.abandon_outstanding(exc.worker_id)
                    continue
                dead = pool.dead_workers()
                if not dead:
                    raise  # not a corpse: a stuck pool cannot be drained
                for worker_id in dead:
                    pool.abandon_outstanding(worker_id)

    def _enter_degraded(self, tier: str) -> None:
        """Tear down the process pool and move to a lower executor tier.

        The thread tier leases two scratch buffers per concurrent task from
        the *parent* pool (workers held their own), so the scratch pool is
        regrown before the first threaded wave runs.
        """

        self._degraded = tier
        pool, self._proc_pool = self._proc_pool, None
        if pool is not None:
            pool.close(join_timeout=0.5)
        if tier == "thread" and self._scratch.num_buffers < 2 * self._num_workers:
            self._scratch = ScratchPool(
                self._scratch.block_amplitudes, buffers=2 * self._num_workers
            )

    def _run_groups_inline(
        self,
        gate: Gate,
        plan: GatePlan,
        groups: list[list[BlockTask]],
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Finish a wave's task groups in the parent process (degrade path)."""

        for tasks in groups:
            out1, out2 = self._run_task(
                gate, plan, tasks[0], compressor, op_key, local_control_mask
            )
            self._fan_out_duplicates(tasks, out1, out2, compressor)

    def _run_plan_degraded(
        self,
        gate: Gate,
        plan: GatePlan,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Run a whole plan on the degraded tier (thread pool or inline)."""

        if self._degraded == "thread":
            TaskExecutor.run_plan(
                self, gate, plan, compressor, op_key, local_control_mask
            )
            return
        self._account_exchanges(plan)
        for task in plan.tasks:
            self._run_task(gate, plan, task, compressor, op_key, local_control_mask)

    @staticmethod
    def _can_submit(pool: ProcessPool, worker_id: int) -> bool:
        return pool.can_submit(worker_id)

    def _dispatch(
        self,
        pool: ProcessPool,
        worker_id: int,
        base_message: tuple,
        tasks: list[BlockTask],
    ) -> int:
        task = tasks[0]
        entry1 = self._state.get_block(*task.first)
        payloads = [entry1.blob]
        decoder_names: tuple[str, str | None] = (entry1.compressor, None)
        if task.second is not None:
            entry2 = self._state.get_block(*task.second)
            payloads.append(entry2.blob)
            decoder_names = (entry1.compressor, entry2.compressor)
        return pool.submit(
            worker_id, base_message + (decoder_names,), payloads
        )

    def _collect_one(
        self,
        pool: ProcessPool,
        in_flight: dict[tuple[int, int], list[BlockTask]],
        compressor: Compressor,
    ) -> None:
        worker_id, reply = pool.recv_any()
        if reply[0] == "err":
            raise_worker_error(reply, f"block task failed in pool worker {worker_id}")
        _, ticket, out_refs, stats = reply
        tasks = in_flight[(worker_id, ticket)]
        task = tasks[0]
        # Read both frames before committing anything: a corrupted frame
        # must leave the group fully uncommitted (still in in_flight) so the
        # recovery pass replays it from the parent's authoritative blobs.
        try:
            out1 = pool.read_frame(worker_id, out_refs[0])
            out2 = (
                pool.read_frame(worker_id, out_refs[1])
                if out_refs[1] is not None
                else None
            )
        except BlockCorruptionError as exc:
            exc.ticket = ticket
            raise
        del in_flight[(worker_id, ticket)]

        self._report.add_count("tasks_executed")
        self._state.put_block(task.first[0], task.first[1], out1, compressor)
        if task.second is not None and out2 is not None:
            self._state.put_block(task.second[0], task.second[1], out2, compressor)
        self._fan_out_duplicates(tasks, out1, out2, compressor)

        outcome, codec_calls, timings = stats
        if codec_calls:
            self._report.add_count("decompress_calls", codec_calls)
            self._report.add_count("compress_calls", codec_calls)
        for bucket, seconds in timings.items():
            self._report.add_time(bucket, seconds)
        if self._cache is not None and outcome != "off":
            # Shard lookups happen worker-side; fold their outcome into the
            # parent cache object so reports see one aggregate hit/miss
            # view.  "off" means the shard skipped the lookup (disabled by
            # its own miss rule), which — as in the sequential tier — costs
            # nothing and counts nothing.
            self._cache.record_shard_lookup(outcome == "hit")
