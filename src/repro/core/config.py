"""Configuration of the compressed-state simulator.

The defaults are laptop-scale versions of the paper's Theta configuration
(128 ranks per node, 1,048,576 amplitudes = 16 MB per block, five relative
error levels escalating from lossless to 1e-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..compression.interface import PAPER_ERROR_LEVELS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config ← resilience)
    from ..resilience import FaultPolicy

__all__ = ["SimulatorConfig", "PAPER_BLOCK_AMPLITUDES"]

#: The paper's block size: 1,048,576 complex amplitudes = 16 MB per block.
PAPER_BLOCK_AMPLITUDES = 1 << 20


@dataclass
class SimulatorConfig:
    """Tunables of :class:`repro.core.simulator.CompressedSimulator`.

    Parameters
    ----------
    num_ranks:
        Simulated MPI ranks the state is partitioned over (power of two).
    block_amplitudes:
        Amplitudes per compressed block (power of two).  ``None`` picks a
        sensible laptop-scale size: the paper's 2^20 when it fits, otherwise
        enough blocks per rank to exercise the blocked code path.
    memory_budget_bytes:
        Total budget for all compressed blocks plus the two decompressed
        scratch buffers per rank (Eq. 8).  ``None`` disables the adaptive
        escalation (the simulator still compresses, it just never has to give
        up accuracy).
    error_levels:
        The ladder of pointwise relative error bounds the adaptive controller
        escalates through once lossless compression stops fitting.
    lossy_compressor:
        Registry name of the lossy compressor ("xor-bitplane" = Solution C,
        the paper's choice; "sz", "sz-complex", "reshuffle" also work).
    lossless_backend:
        Backend for the lossless stage(s): "zlib", "lzma" or "bz2".
    lossless_level:
        Compression level passed to the lossless backend.
    codec_engine:
        Kernel engine for the codec hot loops: ``"numpy"`` (the default,
        always available) or ``"numba"`` (JIT-compiled; falls back to numpy
        with a one-time warning when numba is not installed).  Every engine
        is blob-for-blob bit-identical, so this knob changes throughput only
        — never results, checkpoints or blobs.
    use_block_cache:
        Enable the 64-line compressed block cache of Section 3.4.
    cache_lines:
        Number of cache lines when the cache is enabled.
    cache_miss_disable_threshold:
        Disable the cache after this many consecutive misses with zero hits
        (the paper disables it when the hit rate is "always zero").
    start_lossless:
        Begin with lossless compression and only escalate to lossy when the
        memory budget forces it (Section 3.7).  When ``False`` the simulator
        starts directly at the first lossy level (used by the ablation bench).
    track_fidelity_bound:
        Maintain the Π(1 - δ_i) lower bound on simulation fidelity.
    fusion_enabled:
        Run the gate-fusion pass (:mod:`repro.circuits.fusion`) before
        execution: consecutive same-target/same-control gates collapse into
        one 2x2 unitary, paying a single decompress/recompress round trip per
        block for the whole run.  **On by default** — the pass is
        semantics-preserving by construction and strictly reduces compressor
        round trips; set ``fusion_enabled=False`` to opt out (the seed
        behaviour, still exercised by the differential tests).
    fusion_max_group:
        Optional cap on gates per fused group (``None`` = unlimited).
    num_workers:
        Workers for independent block tasks of a gate plan.  ``1`` (the
        default) keeps the seed's sequential execution; larger values run
        disjoint-block tasks concurrently on the tier chosen by
        ``executor``.  Results are bit-identical regardless of the setting.
    executor:
        Parallel tier for block tasks when ``num_workers > 1``: ``"thread"``
        (the default; scales only where the codecs drop the GIL — zlib does,
        NumPy fancy-index gathers do not) or ``"process"`` (a persistent
        pool of worker processes with warm per-worker decompressors, scratch
        and block-cache shards; compressed blobs move through shared-memory
        slots, and codec-bound workloads scale with physical cores).
    mp_start_method:
        ``multiprocessing`` start method for the process tier: ``"fork"``,
        ``"spawn"``, ``"forkserver"`` or ``None`` for the platform default.
        Both fork and spawn produce bit-identical states.
    comm:
        Communication tier for the ``num_ranks`` partition.  ``"simulated"``
        (the default) keeps every rank's blocks in one process and only
        *accounts* the traffic a distributed run would generate
        (:class:`~repro.distributed.comm.SimulatedCommunicator`);
        ``"process"`` makes each rank a persistent worker process owning its
        partition slice, with entangling gates moving real compressed blobs
        between ranks through shared-memory channels
        (:mod:`repro.distributed.ranked`).  Results are bit-identical across
        both tiers.  ``comm="process"`` supplies its own parallelism (one
        process per rank), so it requires the default ``executor="thread"``
        with ``num_workers=1``.
    fault_policy:
        Recovery policy (:class:`repro.resilience.FaultPolicy`) of the run:
        retries, backoff, in-run checkpoint interval and the executor
        degrade ladder.  ``None`` resolves through
        :func:`repro.resilience.resolve_fault_policy` — the
        ``REPRO_FAULT_POLICY`` environment variable if set, a
        recovery-enabled default when a fault plan is active (the CI chaos
        job), and otherwise an inert policy that keeps the historical
        fail-fast behaviour.
    """

    num_ranks: int = 1
    block_amplitudes: int | None = None
    memory_budget_bytes: int | None = None
    error_levels: tuple[float, ...] = PAPER_ERROR_LEVELS
    lossy_compressor: str = "xor-bitplane"
    lossless_backend: str = "zlib"
    lossless_level: int = 6
    codec_engine: str = "numpy"
    use_block_cache: bool = True
    cache_lines: int = 64
    cache_miss_disable_threshold: int = 256
    start_lossless: bool = True
    track_fidelity_bound: bool = True
    fusion_enabled: bool = True
    fusion_max_group: int | None = None
    num_workers: int = 1
    executor: str = "thread"
    mp_start_method: str | None = None
    comm: str = "simulated"
    fault_policy: "FaultPolicy | None" = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1 or self.num_ranks & (self.num_ranks - 1):
            raise ValueError("num_ranks must be a positive power of two")
        if self.block_amplitudes is not None:
            if self.block_amplitudes < 2 or self.block_amplitudes & (
                self.block_amplitudes - 1
            ):
                raise ValueError("block_amplitudes must be a power of two >= 2")
        if not self.error_levels:
            raise ValueError("error_levels must contain at least one level")
        levels = tuple(float(level) for level in self.error_levels)
        if any(level <= 0 for level in levels):
            raise ValueError("error levels must be positive")
        if list(levels) != sorted(levels):
            raise ValueError("error_levels must be sorted from tightest to loosest")
        self.error_levels = levels
        from ..compression.engines import KNOWN_ENGINES

        if self.codec_engine not in KNOWN_ENGINES:
            raise ValueError(
                f"codec_engine must be one of {KNOWN_ENGINES}, "
                f"got {self.codec_engine!r}"
            )
        if self.cache_lines < 1:
            raise ValueError("cache_lines must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.mp_start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "mp_start_method must be None, 'fork', 'spawn' or 'forkserver'"
            )
        if self.comm not in ("simulated", "process"):
            raise ValueError(
                f"comm must be 'simulated' or 'process', got {self.comm!r}"
            )
        if self.comm == "process" and (
            self.executor != "thread" or self.num_workers != 1
        ):
            raise ValueError(
                "comm='process' runs one worker process per rank and is "
                "incompatible with executor='process' or num_workers > 1; "
                "scale it with num_ranks instead"
            )
        if self.fusion_max_group is not None and self.fusion_max_group < 1:
            raise ValueError("fusion_max_group must be >= 1 (or None)")
        if self.fault_policy is not None:
            from ..resilience import FaultPolicy

            if not isinstance(self.fault_policy, FaultPolicy):
                raise ValueError(
                    "fault_policy must be a repro.resilience.FaultPolicy "
                    "instance or None"
                )

    def resolve_block_amplitudes(self, num_qubits: int, num_ranks: int) -> int:
        """Pick the block size for a given problem when not set explicitly.

        Prefers 4 or more blocks per rank (so the block-segment code path is
        exercised) while keeping blocks no larger than the paper's 2^20
        amplitudes.
        """

        per_rank = (1 << num_qubits) // num_ranks
        if per_rank < 2:
            raise ValueError("each rank must hold at least 2 amplitudes")
        if self.block_amplitudes is not None:
            if self.block_amplitudes > per_rank:
                raise ValueError(
                    f"block_amplitudes={self.block_amplitudes} exceeds the "
                    f"{per_rank} amplitudes per rank"
                )
            return self.block_amplitudes
        target = per_rank // 4
        target = max(2, min(target, PAPER_BLOCK_AMPLITUDES))
        # Round down to a power of two.
        return 1 << (target.bit_length() - 1)
