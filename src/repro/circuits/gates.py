"""Quantum gate definitions.

This module is the gate-level substrate for the whole reproduction.  It
provides

* the standard single-qubit and two-qubit unitary matrices used by the
  paper's benchmark circuits (Grover, random circuit sampling, QAOA, QFT),
* the :class:`Gate` record, which is the unit of work consumed by both the
  dense reference simulator (``repro.statevector``) and the compressed
  simulator (``repro.core``), and
* helpers to validate unitarity and to build controlled/parameterised gates.

The simulators never build the full ``2^n x 2^n`` operator.  A gate carries
only its small ``2x2`` (or ``4x4`` / ``8x8``) matrix plus the qubit indices
it acts on; the simulators apply the matrix to amplitude pairs selected by
bit arithmetic exactly as described in Section 3.1 (Eq. 6 and Eq. 7) of the
paper.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Gate",
    "GateError",
    "is_unitary",
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "rx",
    "ry",
    "rz",
    "u1",
    "u2",
    "u3",
    "phase",
    "cnot_matrix",
    "cz_matrix",
    "swap_matrix",
    "toffoli_matrix",
    "controlled",
    "GATE_ALIASES",
    "standard_gate",
]

# Numerical tolerance used when checking unitarity and normalisation.
_ATOL = 1e-10


class GateError(ValueError):
    """Raised when a gate is constructed with inconsistent data."""


def is_unitary(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Return ``True`` when *matrix* is unitary within *atol*."""

    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0], dtype=np.complex128)
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


# ---------------------------------------------------------------------------
# Fixed single-qubit matrices
# ---------------------------------------------------------------------------

I = np.eye(2, dtype=np.complex128)

X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.complex128)

Y = np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=np.complex128)

Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=np.complex128)

H = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=np.complex128) / math.sqrt(2.0)

S = np.array([[1.0, 0.0], [0.0, 1.0j]], dtype=np.complex128)

SDG = S.conj().T

T = np.array([[1.0, 0.0], [0.0, cmath.exp(1j * math.pi / 4.0)]], dtype=np.complex128)

TDG = T.conj().T

SX = 0.5 * np.array(
    [[1.0 + 1.0j, 1.0 - 1.0j], [1.0 - 1.0j, 1.0 + 1.0j]], dtype=np.complex128
)


# ---------------------------------------------------------------------------
# Parameterised single-qubit matrices
# ---------------------------------------------------------------------------


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by angle *theta*."""

    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by angle *theta*."""

    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by angle *theta*."""

    return np.array(
        [[cmath.exp(-0.5j * theta), 0.0], [0.0, cmath.exp(0.5j * theta)]],
        dtype=np.complex128,
    )


def phase(lam: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{i lambda})``."""

    return np.array([[1.0, 0.0], [0.0, cmath.exp(1j * lam)]], dtype=np.complex128)


def u1(lam: float) -> np.ndarray:
    """IBM-style ``u1`` gate (alias of :func:`phase`)."""

    return phase(lam)


def u2(phi: float, lam: float) -> np.ndarray:
    """IBM-style ``u2`` gate: a pi/2 rotation with two phases."""

    inv_sqrt2 = 1.0 / math.sqrt(2.0)
    return np.array(
        [
            [inv_sqrt2, -cmath.exp(1j * lam) * inv_sqrt2],
            [cmath.exp(1j * phi) * inv_sqrt2, cmath.exp(1j * (phi + lam)) * inv_sqrt2],
        ],
        dtype=np.complex128,
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary parameterised by three Euler angles."""

    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


# ---------------------------------------------------------------------------
# Multi-qubit matrices (used by the dense reference simulator and tests;
# the blocked simulators decompose controlled gates into conditional 2x2
# applications instead, per Eq. 7)
# ---------------------------------------------------------------------------


def cnot_matrix() -> np.ndarray:
    """4x4 CNOT matrix with qubit ordering (control, target)."""

    m = np.eye(4, dtype=np.complex128)
    m[2:, 2:] = X
    return m


def cz_matrix() -> np.ndarray:
    """4x4 controlled-Z matrix."""

    m = np.eye(4, dtype=np.complex128)
    m[3, 3] = -1.0
    return m


def swap_matrix() -> np.ndarray:
    """4x4 SWAP matrix."""

    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = 1.0
    m[1, 2] = 1.0
    m[2, 1] = 1.0
    m[3, 3] = 1.0
    return m


def toffoli_matrix() -> np.ndarray:
    """8x8 Toffoli (CCX) matrix with ordering (control, control, target)."""

    m = np.eye(8, dtype=np.complex128)
    m[6, 6] = 0.0
    m[7, 7] = 0.0
    m[6, 7] = 1.0
    m[7, 6] = 1.0
    return m


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Return the controlled version of a single-qubit *unitary* (4x4)."""

    unitary = np.asarray(unitary, dtype=np.complex128)
    if unitary.shape != (2, 2):
        raise GateError("controlled() expects a 2x2 unitary")
    m = np.eye(4, dtype=np.complex128)
    m[2:, 2:] = unitary
    return m


# ---------------------------------------------------------------------------
# Gate record
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """A single gate application in a circuit.

    Parameters
    ----------
    name:
        Mnemonic used for pretty printing, caching and statistics
        (``"h"``, ``"cx"``, ``"ccx"``, ...).
    matrix:
        The 2x2 unitary applied to the *target* qubit.  Controlled gates
        store only the target-qubit unitary; the control condition is
        expressed through :attr:`controls` as in Eq. 7 of the paper.
    targets:
        Target qubit indices.  All standard gates have exactly one target.
    controls:
        Control qubit indices (empty for uncontrolled gates).  The matrix is
        applied to the target amplitudes only when every control bit is 1.
    params:
        Optional gate parameters (rotation angles), retained for reporting.
    """

    name: str
    matrix: np.ndarray
    targets: tuple[int, ...]
    controls: tuple[int, ...] = ()
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.complex128)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "targets", tuple(int(q) for q in self.targets))
        object.__setattr__(self, "controls", tuple(int(q) for q in self.controls))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        if matrix.shape != (2, 2):
            raise GateError(
                f"gate '{self.name}' must carry a 2x2 target unitary, got {matrix.shape}"
            )
        if not is_unitary(matrix):
            raise GateError(f"gate '{self.name}' matrix is not unitary")
        if len(self.targets) != 1:
            raise GateError(f"gate '{self.name}' must have exactly one target qubit")
        touched = set(self.targets) | set(self.controls)
        if len(touched) != len(self.targets) + len(self.controls):
            raise GateError(
                f"gate '{self.name}' has overlapping target/control qubits"
            )
        if any(q < 0 for q in touched):
            raise GateError(f"gate '{self.name}' references a negative qubit index")

    # -- convenience accessors -------------------------------------------------

    @property
    def target(self) -> int:
        """The single target qubit index."""

        return self.targets[0]

    @property
    def num_qubits(self) -> int:
        """Number of distinct qubits this gate touches."""

        return len(self.targets) + len(self.controls)

    @property
    def qubits(self) -> tuple[int, ...]:
        """All touched qubit indices, controls first then targets."""

        return self.controls + self.targets

    def max_qubit(self) -> int:
        """Largest qubit index referenced by the gate."""

        return max(self.qubits)

    def key(self) -> tuple:
        """A hashable identity usable as a cache key component.

        The matrix bytes participate so that parameterised gates with
        different angles hash differently; this is what the compressed block
        cache (Section 3.4) uses as its ``OP`` field.
        """

        return (self.name, self.targets, self.controls, self.matrix.tobytes())

    def dagger(self) -> "Gate":
        """Return the inverse gate."""

        return Gate(
            name=f"{self.name}dg",
            matrix=self.matrix.conj().T,
            targets=self.targets,
            controls=self.controls,
            params=tuple(-p for p in self.params),
        )

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy of the gate with qubit indices remapped."""

        return Gate(
            name=self.name,
            matrix=self.matrix,
            targets=tuple(mapping.get(q, q) for q in self.targets),
            controls=tuple(mapping.get(q, q) for q in self.controls),
            params=self.params,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ctrl = f", controls={list(self.controls)}" if self.controls else ""
        par = f", params={list(self.params)}" if self.params else ""
        return f"Gate({self.name!r}, targets={list(self.targets)}{ctrl}{par})"


# ---------------------------------------------------------------------------
# Named-gate factory
# ---------------------------------------------------------------------------

#: Mapping of gate mnemonics to fixed 2x2 matrices (uncontrolled form).
GATE_ALIASES: dict[str, np.ndarray] = {
    "i": I,
    "id": I,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
}

#: Parameterised gate factories keyed by mnemonic and arity of parameters.
_PARAM_GATES = {
    "rx": (rx, 1),
    "ry": (ry, 1),
    "rz": (rz, 1),
    "p": (phase, 1),
    "u1": (u1, 1),
    "u2": (u2, 2),
    "u3": (u3, 3),
}


def standard_gate(
    name: str,
    targets: Sequence[int] | int,
    controls: Sequence[int] | int = (),
    params: Iterable[float] = (),
) -> Gate:
    """Construct a :class:`Gate` from a mnemonic.

    ``standard_gate("h", 3)`` builds a Hadamard on qubit 3;
    ``standard_gate("x", 0, controls=[2, 5])`` builds a Toffoli with target 0.
    """

    if isinstance(targets, int):
        targets = (targets,)
    if isinstance(controls, int):
        controls = (controls,)
    params = tuple(params)
    lname = name.lower()
    if lname in GATE_ALIASES:
        if params:
            raise GateError(f"gate '{name}' takes no parameters")
        matrix = GATE_ALIASES[lname]
    elif lname in _PARAM_GATES:
        factory, arity = _PARAM_GATES[lname]
        if len(params) != arity:
            raise GateError(
                f"gate '{name}' expects {arity} parameter(s), got {len(params)}"
            )
        matrix = factory(*params)
    else:
        raise GateError(f"unknown gate mnemonic '{name}'")
    return Gate(
        name=lname,
        matrix=matrix,
        targets=tuple(targets),
        controls=tuple(controls),
        params=params,
    )
