"""Quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
applications on ``n`` qubits.  It is deliberately simulator-agnostic: both the
dense reference simulator and the compressed-block simulator iterate over the
same circuit object, which is what lets the test suite compare them gate for
gate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .gates import Gate, GateError, standard_gate

__all__ = ["QuantumCircuit", "CircuitStats"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a circuit, used by reports and benchmarks."""

    num_qubits: int
    num_gates: int
    num_single_qubit_gates: int
    num_controlled_gates: int
    depth: int
    gate_histogram: dict[str, int]

    def as_dict(self) -> dict:
        """JSON-ready mapping of every statistic (histogram copied)."""

        return {
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "num_single_qubit_gates": self.num_single_qubit_gates,
            "num_controlled_gates": self.num_controlled_gates,
            "depth": self.depth,
            "gate_histogram": dict(self.gate_histogram),
        }


class QuantumCircuit:
    """An ordered sequence of gates acting on ``num_qubits`` qubits.

    The builder methods (``h``, ``x``, ``cx``, ``ccx``, ...) mirror the gate
    set used by the paper's benchmarks.  Each returns ``self`` so circuits can
    be built fluently::

        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        self.name = name

    # -- basic protocol --------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits the circuit acts on."""

        return self._num_qubits

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""

        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        if self._num_qubits != other._num_qubits or len(self) != len(other):
            return False
        return all(
            a.name == b.name
            and a.targets == b.targets
            and a.controls == b.controls
            and np.allclose(a.matrix, b.matrix)
            for a, b in zip(self._gates, other._gates)
        )

    # -- gate appending --------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append an already-constructed :class:`Gate`."""

        if gate.max_qubit() >= self._num_qubits:
            raise GateError(
                f"gate {gate.name} touches qubit {gate.max_qubit()} but the "
                f"circuit has only {self._num_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append every gate from *gates*."""

        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, targets, controls=(), params=()) -> "QuantumCircuit":
        """Append a gate by mnemonic (see :func:`standard_gate`)."""

        return self.append(standard_gate(name, targets, controls, params))

    # -- named builders (single-qubit) -----------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        """Append an identity gate on *qubit* (a no-op placeholder)."""

        return self.add("i", qubit)

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X (NOT) gate on *qubit*."""

        return self.add("x", qubit)

    def y(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Y gate on *qubit*."""

        return self.add("y", qubit)

    def z(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Z gate on *qubit*."""

        return self.add("z", qubit)

    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard gate on *qubit*."""

        return self.add("h", qubit)

    def s(self, qubit: int) -> "QuantumCircuit":
        """Append an S (sqrt-Z) phase gate on *qubit*."""

        return self.add("s", qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Append an S-dagger gate on *qubit*."""

        return self.add("sdg", qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        """Append a T (pi/8) phase gate on *qubit*."""

        return self.add("t", qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Append a T-dagger gate on *qubit*."""

        return self.add("tdg", qubit)

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Append a sqrt-X gate on *qubit*."""

        return self.add("sx", qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an X-axis rotation by *theta* radians on *qubit*."""

        return self.add("rx", qubit, params=(theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Y-axis rotation by *theta* radians on *qubit*."""

        return self.add("ry", qubit, params=(theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Z-axis rotation by *theta* radians on *qubit*."""

        return self.add("rz", qubit, params=(theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Append a phase gate with angle *lam* on *qubit*."""

        return self.add("p", qubit, params=(lam,))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Append the generic single-qubit unitary U3(theta, phi, lam)."""

        return self.add("u3", qubit, params=(theta, phi, lam))

    # -- named builders (controlled) -------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CNOT: X on *target* controlled by *control*."""

        return self.add("x", target, controls=(control,))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-Z between *control* and *target*."""

        return self.add("z", target, controls=(control,))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-Y on *target*."""

        return self.add("y", target, controls=(control,))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-Hadamard on *target*."""

        return self.add("h", target, controls=(control,))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled phase gate with angle *lam*."""

        return self.add("p", target, controls=(control,), params=(lam,))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled Z-rotation by *theta* radians."""

        return self.add("rz", target, controls=(control,), params=(theta,))

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        """Toffoli gate (used heavily by the Grover oracle)."""

        return self.add("x", target, controls=(control1, control2))

    def ccz(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        """Append a doubly-controlled Z (the QAOA/Grover phase primitive)."""

        return self.add("z", target, controls=(control1, control2))

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X with an arbitrary number of controls."""

        return self.add("x", target, controls=tuple(controls))

    def mcz(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled Z with an arbitrary number of controls."""

        return self.add("z", target, controls=tuple(controls))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP decomposed into three CNOTs (keeps the gate set 1q+controls)."""

        return self.cx(qubit_a, qubit_b).cx(qubit_b, qubit_a).cx(qubit_a, qubit_b)

    # -- whole-circuit operations ----------------------------------------------

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all gates of *other* (must not exceed our qubit count)."""

        if other.num_qubits > self._num_qubits:
            raise GateError(
                "cannot compose a circuit with more qubits than the target"
            )
        return self.extend(other.gates)

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (gates reversed and daggered)."""

        inv = QuantumCircuit(self._num_qubits, name=f"{self.name}_inv")
        for gate in reversed(self._gates):
            inv.append(gate.dagger())
        return inv

    def remapped(self, mapping: dict[int, int]) -> "QuantumCircuit":
        """Return a copy with qubit indices translated through *mapping*."""

        new = QuantumCircuit(self._num_qubits, name=self.name)
        for gate in self._gates:
            new.append(gate.remapped(mapping))
        return new

    def copy(self) -> "QuantumCircuit":
        """Return a shallow copy (shares Gate objects; they are immutable)."""

        new = QuantumCircuit(self._num_qubits, name=self.name)
        new._gates = list(self._gates)
        return new

    # -- analysis ---------------------------------------------------------------

    def depth(self) -> int:
        """Circuit depth: the longest chain of gates over any qubit timeline."""

        frontier = [0] * self._num_qubits
        for gate in self._gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def stats(self) -> CircuitStats:
        """Return :class:`CircuitStats` for reporting."""

        histogram: Counter[str] = Counter()
        controlled = 0
        for gate in self._gates:
            label = gate.name if not gate.controls else f"c{len(gate.controls)}{gate.name}"
            histogram[label] += 1
            if gate.controls:
                controlled += 1
        return CircuitStats(
            num_qubits=self._num_qubits,
            num_gates=len(self._gates),
            num_single_qubit_gates=len(self._gates) - controlled,
            num_controlled_gates=controlled,
            depth=self.depth(),
            gate_histogram=dict(histogram),
        )

    def qasm_like(self) -> str:
        """Render a human-readable OPENQASM-flavoured dump of the circuit."""

        lines = [f"// circuit {self.name}: {self._num_qubits} qubits, {len(self)} gates"]
        lines.append(f"qreg q[{self._num_qubits}];")
        for gate in self._gates:
            args = ", ".join(f"{p:.6g}" for p in gate.params)
            head = f"{gate.name}({args})" if args else gate.name
            operands = ", ".join(
                f"q[{q}]" for q in (gate.controls + gate.targets)
            )
            prefix = "c" * len(gate.controls)
            lines.append(f"{prefix}{head} {operands};")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self._num_qubits}, "
            f"gates={len(self._gates)})"
        )
