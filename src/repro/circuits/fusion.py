"""Gate fusion: coalesce runs of consecutive gates into one block round trip.

The compressed simulator pays a decompress → apply → recompress round trip
over every touched block *per gate* (Figure 2), and the paper's own time
breakdown shows the compression stages dwarfing the arithmetic.  Two
consecutive gates that act on the same target qubit under the same control
set update exactly the same amplitude pairs, so their 2x2 matrices multiply
into a single unitary — one round trip instead of two.  Diagonal gates
(``z``, ``s``, ``t``, ``rz``, ``p``) merge this way for free, but the rule is
fully general: any same-target, same-control run fuses.

The pass is purely syntactic (no commutation analysis), which makes it
semantics-preserving by construction: the fused circuit applies the exact
same operator as the original, gate group by gate group.  A fused group is an
ordinary :class:`~repro.circuits.gates.Gate`, so the planner
(:func:`repro.distributed.exchange.plan_gate`), the executor and the block
cache consume it unchanged — and because :meth:`Gate.key` hashes the matrix
bytes, a fused group can never alias its constituent gates in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .circuit import QuantumCircuit
from .gates import Gate, GateError

__all__ = [
    "FusionStats",
    "fusible",
    "fuse_run",
    "fuse_gate_sequence",
    "fuse_circuit",
]


@dataclass(frozen=True)
class FusionStats:
    """Outcome of one fusion pass, used by reports and benchmarks."""

    #: Gates in the original sequence.
    gates_in: int
    #: Gates after fusion (fused groups count as one).
    gates_out: int
    #: Number of fused groups with at least two constituents.
    fused_groups: int
    #: Size of the largest fused group.
    max_group: int

    @property
    def gates_eliminated(self) -> int:
        """How many gate applications fusion removed from the schedule."""

        return self.gates_in - self.gates_out

    @property
    def round_trip_reduction(self) -> float:
        """Per-block round trips before / after (>= 1.0; 1.0 means no fusion)."""

        if self.gates_out == 0:
            return 1.0
        return self.gates_in / self.gates_out

    def as_dict(self) -> dict:
        """JSON-ready mapping of the fusion statistics."""

        return {
            "gates_in": self.gates_in,
            "gates_out": self.gates_out,
            "fused_groups": self.fused_groups,
            "max_group": self.max_group,
            "round_trip_reduction": self.round_trip_reduction,
        }


def fusible(first: Gate, second: Gate) -> bool:
    """True when the two gates update the same amplitude pairs.

    That requires the same target qubit and the same control *set* (control
    order is irrelevant: the condition is "all control bits are 1").
    """

    return first.targets == second.targets and set(first.controls) == set(
        second.controls
    )


def fuse_run(gates: Sequence[Gate]) -> Gate:
    """Fuse a run of mutually fusible gates into one :class:`Gate`.

    The fused matrix is the product of the constituent matrices in
    application order (later gates multiply from the left).  A single-gate
    run is returned unchanged, so fusing is the identity when there is
    nothing to fuse.
    """

    if not gates:
        raise GateError("cannot fuse an empty gate run")
    first = gates[0]
    if len(gates) == 1:
        return first
    for gate in gates[1:]:
        if not fusible(first, gate):
            raise GateError(
                f"gate {gate.name} (target {gate.target}, controls "
                f"{gate.controls}) is not fusible with {first.name} "
                f"(target {first.target}, controls {first.controls})"
            )
    matrix = np.eye(2, dtype=np.complex128)
    for gate in gates:
        matrix = gate.matrix @ matrix
    return Gate(
        name="fused(" + "+".join(gate.name for gate in gates) + ")",
        matrix=matrix,
        targets=first.targets,
        controls=first.controls,
    )


def fuse_gate_sequence(
    gates: Sequence[Gate], max_group: int | None = None
) -> tuple[list[Gate], FusionStats]:
    """Greedily fuse maximal runs of consecutive fusible gates.

    Parameters
    ----------
    gates:
        The gate sequence in application order.
    max_group:
        Optional cap on the number of gates per fused group (``None`` =
        unlimited).  Long products of unitaries stay unitary to well below
        the simulator's tolerance, so the cap exists mainly for experiments.
    """

    if max_group is not None and max_group < 1:
        raise ValueError("max_group must be >= 1 (or None)")
    fused: list[Gate] = []
    groups = 0
    largest = 1 if gates else 0
    run: list[Gate] = []

    def flush() -> None:
        nonlocal groups, largest
        if not run:
            return
        fused.append(fuse_run(run))
        if len(run) > 1:
            groups += 1
            largest = max(largest, len(run))
        run.clear()

    for gate in gates:
        if run and fusible(run[0], gate) and (
            max_group is None or len(run) < max_group
        ):
            run.append(gate)
        else:
            flush()
            run.append(gate)
    flush()

    stats = FusionStats(
        gates_in=len(gates),
        gates_out=len(fused),
        fused_groups=groups,
        max_group=largest,
    )
    return fused, stats


def fuse_circuit(
    circuit: QuantumCircuit, max_group: int | None = None
) -> tuple[QuantumCircuit, FusionStats]:
    """Return a fused copy of *circuit* plus the :class:`FusionStats`."""

    gates, stats = fuse_gate_sequence(circuit.gates, max_group=max_group)
    fused = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_fused")
    fused.extend(gates)
    return fused, stats
