"""Reusable circuit fragments shared by the application benchmarks.

These helpers build common sub-circuits (uniform superposition, basis-state
preparation, multi-controlled phase flips, diffusion operators) that the
paper's workloads — Grover's search, QAOA, QFT and the supremacy-style random
circuits — are assembled from in :mod:`repro.applications`.
"""

from __future__ import annotations

import math
from typing import Sequence

from .circuit import QuantumCircuit

__all__ = [
    "uniform_superposition",
    "prepare_basis_state",
    "phase_oracle",
    "grover_diffusion",
    "qft_circuit",
    "ghz_circuit",
]


def uniform_superposition(num_qubits: int) -> QuantumCircuit:
    """Hadamard on every qubit: ``|0..0> -> H^{\\otimes n}|0..0>``.

    This is also the workload the paper uses for the scaling studies
    (Figures 15 and 16).
    """

    circuit = QuantumCircuit(num_qubits, name=f"hadamard_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def prepare_basis_state(num_qubits: int, bitstring: str | int) -> QuantumCircuit:
    """Prepare the computational basis state given by *bitstring*.

    *bitstring* may be an integer or a string such as ``"0101"`` whose
    leftmost character is the most-significant qubit (qubit ``n-1``).
    """

    if isinstance(bitstring, str):
        if len(bitstring) != num_qubits or set(bitstring) - {"0", "1"}:
            raise ValueError(
                f"bitstring {bitstring!r} is not a {num_qubits}-bit binary string"
            )
        value = int(bitstring, 2)
    else:
        value = int(bitstring)
        if value < 0 or value >= 1 << num_qubits:
            raise ValueError(f"basis state {value} out of range for {num_qubits} qubits")
    circuit = QuantumCircuit(num_qubits, name=f"basis_{value}")
    for qubit in range(num_qubits):
        if (value >> qubit) & 1:
            circuit.x(qubit)
    return circuit


def phase_oracle(num_qubits: int, marked: Sequence[int]) -> QuantumCircuit:
    """Phase-flip oracle: multiplies each state in *marked* by -1.

    Implemented with X conjugation plus a multi-controlled Z, i.e. the
    X/Toffoli-style oracle construction the paper attributes to its Grover
    benchmark (ScaffCC square-root oracle).
    """

    circuit = QuantumCircuit(num_qubits, name="phase_oracle")
    for value in marked:
        if value < 0 or value >= 1 << num_qubits:
            raise ValueError(f"marked state {value} out of range")
        zero_bits = [q for q in range(num_qubits) if not (value >> q) & 1]
        for qubit in zero_bits:
            circuit.x(qubit)
        if num_qubits == 1:
            circuit.z(0)
        else:
            circuit.mcz(tuple(range(num_qubits - 1)), num_qubits - 1)
        for qubit in zero_bits:
            circuit.x(qubit)
    return circuit


def grover_diffusion(num_qubits: int) -> QuantumCircuit:
    """The Grover diffusion (inversion about the mean) operator."""

    circuit = QuantumCircuit(num_qubits, name="diffusion")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.x(qubit)
    if num_qubits == 1:
        circuit.z(0)
    else:
        circuit.mcz(tuple(range(num_qubits - 1)), num_qubits - 1)
    for qubit in range(num_qubits):
        circuit.x(qubit)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def qft_circuit(num_qubits: int, *, include_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform on *num_qubits* qubits.

    Uses the textbook H + controlled-phase ladder; the optional terminal
    swaps restore the conventional output ordering.  This is the deep-circuit
    workload of Table 2 (QFT column).
    """

    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for k, control in enumerate(reversed(range(target)), start=2):
            circuit.cp(2.0 * math.pi / (1 << k), control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation, used as a highly-compressible test workload."""

    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit
