"""Fault-tolerant execution: policy, recovery and fault injection.

This package turns the engine's detection-only failure story (a dead worker
or a stuck communicator raises and the run dies) into detect → contain →
recover:

* :class:`FaultPolicy` — the user-facing knob set, carried on
  :class:`repro.core.config.SimulatorConfig`: how many times to retry, how
  to back off between attempts, how often to write in-run checkpoints, and
  which executor tiers to degrade through when respawning keeps failing.
* Self-healing pools — :class:`repro.core.procpool.ProcessPool` can respawn
  a dead worker in place and the executors re-dispatch only the in-flight
  wave; the parent holds the authoritative block blobs until a wave commits,
  so replay is idempotent and bit-identical.
* Ranked-tier recovery — the simulator tears down a failed rank pool,
  reloads the last in-run checkpoint and deterministically replays the
  gates since, instead of raising.
* :mod:`repro.resilience.faults` — a deterministic, seedable fault-injection
  harness (kill worker N after K submissions, drop/delay a comm channel,
  corrupt a shared-memory blob) so all of the above is testable on every
  commit.

The default policy is inert (no retries, no checkpoints, no degradation), so
runs without an explicit opt-in behave exactly as before.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

__all__ = [
    "FaultPolicy",
    "resolve_fault_policy",
    "suspend_to_checkpoint",
    "resume_from_checkpoint",
]

#: Executor tiers a degrade ladder may name, in decreasing parallelism.
DEGRADE_TIERS = ("thread", "sequential")

#: Environment variable holding a ``key=value,key=value`` fault policy spec
#: (see :func:`resolve_fault_policy`).
POLICY_ENV_VAR = "REPRO_FAULT_POLICY"


@dataclass(frozen=True)
class FaultPolicy:
    """Recovery policy of one simulation run.

    The policy is inert by default: ``max_retries=0`` keeps the historical
    fail-fast behaviour (first crash raises), an empty ``degrade_to`` ladder
    disables executor fallback and ``checkpoint_interval_waves=0`` disables
    in-run checkpoints.  Attach a non-trivial policy to
    :class:`repro.core.config.SimulatorConfig` via its ``fault_policy``
    field to opt into recovery.

    Attributes
    ----------
    max_retries:
        How many times a failed gate wave (process tier) or gate (ranked
        tier) is retried after healing the pool.  ``0`` means fail fast.
    backoff_base_seconds / backoff_multiplier / backoff_max_seconds:
        Exponential backoff between retry attempts: attempt ``n`` sleeps
        ``base * multiplier**n`` seconds, capped at the max.
    backoff_jitter:
        Fraction of the computed backoff added as deterministic jitter
        (seeded by ``seed`` and the attempt index), de-synchronising
        concurrent retriers without sacrificing reproducibility.
    checkpoint_interval_waves:
        Ranked tier: write an in-run checkpoint every N applied gate waves
        so recovery replays at most N gates.  ``0`` disables checkpoints
        (recovery then replays from the initial state).
    checkpoint_dir:
        Directory for in-run checkpoints; ``None`` uses a per-run temporary
        directory that is removed when the simulator closes.
    degrade_to:
        Executor tiers (subset of ``("thread", "sequential")``, tried in
        order) to fall back to when ``max_retries`` is exhausted.  Empty
        disables the ladder: the failure is raised instead.
    seed:
        Seed of the jitter stream (and of any policy-owned randomness);
        fixed seed ⇒ bit-identical retry timing decisions.
    """

    max_retries: int = 0
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    backoff_max_seconds: float = 2.0
    checkpoint_interval_waves: int = 0
    checkpoint_dir: str | None = None
    degrade_to: tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the knob ranges and normalise ``degrade_to`` to a tuple."""

        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.backoff_max_seconds < 0:
            raise ValueError("backoff_max_seconds must be >= 0")
        if self.checkpoint_interval_waves < 0:
            raise ValueError("checkpoint_interval_waves must be >= 0")
        ladder = tuple(self.degrade_to)
        object.__setattr__(self, "degrade_to", ladder)
        for tier in ladder:
            if tier not in DEGRADE_TIERS:
                raise ValueError(
                    f"degrade_to tier {tier!r} not in {DEGRADE_TIERS}"
                )

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (0-based).

        The jitter component is drawn from a stream seeded by
        ``(self.seed, attempt)``, so the same policy produces the same
        sleep sequence on every run.
        """

        base = self.backoff_base_seconds * (self.backoff_multiplier ** attempt)
        base = min(base, self.backoff_max_seconds)
        if self.backoff_jitter <= 0.0 or base <= 0.0:
            return base
        rng = random.Random(f"{self.seed}:{attempt}")
        return min(
            base * (1.0 + self.backoff_jitter * rng.random()),
            self.backoff_max_seconds,
        )

    @property
    def active(self) -> bool:
        """Whether this policy enables any recovery behaviour at all."""

        return (
            self.max_retries > 0
            or bool(self.degrade_to)
            or self.checkpoint_interval_waves > 0
        )


def _parse_policy_spec(spec: str) -> FaultPolicy:
    """Parse a ``key=value,key=value`` policy spec (the env-var syntax).

    Example: ``max_retries=2,degrade_to=thread+sequential,seed=7``.
    ``degrade_to`` entries are joined with ``+`` because ``,`` separates
    keys.  Unknown keys raise :class:`ValueError` so typos fail loudly.
    """

    kwargs: dict[str, object] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(f"bad fault-policy entry {chunk!r} (want key=value)")
        key, _, value = chunk.partition("=")
        key = key.strip()
        value = value.strip()
        if key in ("max_retries", "checkpoint_interval_waves", "seed"):
            kwargs[key] = int(value)
        elif key in (
            "backoff_base_seconds",
            "backoff_multiplier",
            "backoff_jitter",
            "backoff_max_seconds",
        ):
            kwargs[key] = float(value)
        elif key == "checkpoint_dir":
            kwargs[key] = value
        elif key == "degrade_to":
            kwargs[key] = tuple(t for t in value.split("+") if t)
        else:
            raise ValueError(f"unknown fault-policy key {key!r}")
    return FaultPolicy(**kwargs)


def resolve_fault_policy(policy: "FaultPolicy | None") -> FaultPolicy:
    """Resolve the effective policy of a run.

    Precedence: an explicit ``policy`` wins; otherwise the
    ``REPRO_FAULT_POLICY`` environment variable (``key=value,...`` spec) is
    parsed; otherwise, when a fault plan is active (installed or via
    ``REPRO_FAULT_PLAN`` — e.g. the CI chaos job), a recovery-enabled
    default (``max_retries=2`` with a full degrade ladder) applies so
    injected faults are survived rather than fatal; otherwise the inert
    default policy.
    """

    if policy is not None:
        return policy
    spec = os.environ.get(POLICY_ENV_VAR)
    if spec:
        return _parse_policy_spec(spec)
    from . import faults

    if faults.get_active_plan() is not None:
        return FaultPolicy(max_retries=2, degrade_to=DEGRADE_TIERS)
    return FaultPolicy()


# Imported last: suspend.py reaches (lazily) into repro.core.checkpoint,
# which imports repro.core.simulator, which imports this package — every
# name above must already be bound when that cycle re-enters here.
from .suspend import resume_from_checkpoint, suspend_to_checkpoint  # noqa: E402
