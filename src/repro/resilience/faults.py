"""Deterministic, seedable fault injection.

A :class:`FaultPlan` describes faults to inject into a run: kill worker N
after its K-th submission, drop or delay a rank↔peer comm exchange, corrupt
a shared-memory payload.  Plans are installed process-wide (via
:func:`install_plan` / the :func:`installed_plan` context manager) or through
the ``REPRO_FAULT_PLAN`` environment variable, which is how the CI chaos job
subjects the whole tier-1 suite to a low-probability seeded kill plan.

Determinism contract: given the same plan (including ``chaos_seed``) and the
same sequence of pool creations / submissions / comm exchanges, the same
faults fire at the same points.  There is no wall-clock or OS randomness in
the trigger logic, so a failing chaos run can be replayed exactly by pinning
the plan spec.

The hooks are pulled by the machinery, not pushed: :class:`ProcessPool
<repro.core.procpool.ProcessPool>` arms a :class:`PoolFaultState` per pool
and consults it on every submit / frame read, and
:class:`ProcessCommunicator <repro.distributed.process_comm.ProcessCommunicator>`
arms a :class:`CommFaultState` per endpoint.  With no active plan every hook
is ``None`` and the fast paths pay a single attribute check.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import random
import threading
from dataclasses import dataclass

__all__ = [
    "KillWorker",
    "CorruptFrame",
    "DropComm",
    "DelayComm",
    "FaultPlan",
    "parse_plan",
    "install_plan",
    "clear_plan",
    "installed_plan",
    "get_active_plan",
    "arm_for_pool",
    "arm_for_comm",
    "PoolFaultState",
    "CommFaultState",
]

#: Environment variable holding a fault-plan spec (see :func:`parse_plan`).
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Pool-worker kinds chaos mode may kill.  Targeted :class:`KillWorker`
#: injections can name any kind; the probabilistic chaos mode stays away
#: from rank workers ("gate"/"init"/...) because a rank kill tears down the
#: whole ranked pool — a heavier recovery that dedicated tests cover
#: deterministically instead.
CHAOS_KILL_KINDS = ("task", "circuit")


@dataclass(frozen=True)
class KillWorker:
    """Kill one pool worker after its N-th matching submission.

    Attributes
    ----------
    worker:
        Target worker id within the pool; ``-1`` targets whichever worker
        receives the triggering submission.
    after:
        Fire on the N-th (1-based) submission matching this injection.
    kinds:
        Optional filter of message kinds (e.g. ``("task",)``) the counter
        matches; ``None`` counts every submission to the target.
    """

    worker: int
    after: int
    kinds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        """Reject counters that could never fire (``after`` is 1-based)."""

        if self.after < 1:
            raise ValueError("KillWorker.after must be >= 1")


@dataclass(frozen=True)
class CorruptFrame:
    """Corrupt the shared-memory payload of a worker's N-th reply read.

    Flips one byte of the slot-arena region backing the reply, so the
    reader's checksum verification must surface a typed
    :class:`repro.errors.BlockCorruptionError` instead of a garbage decode.

    Attributes
    ----------
    worker:
        Worker whose reply payload is scribbled; ``-1`` matches any worker.
    after:
        Fire on the N-th (1-based) matching frame read.
    """

    worker: int
    after: int

    def __post_init__(self) -> None:
        """Reject counters that could never fire (``after`` is 1-based)."""

        if self.after < 1:
            raise ValueError("CorruptFrame.after must be >= 1")


@dataclass(frozen=True)
class DropComm:
    """Make one rank's N-th exchange with a peer hang until its deadline.

    The injected endpoint behaves exactly like a dead peer: the exchange
    makes no progress and the communicator's deadline machinery raises
    :class:`repro.errors.ProcessCommTimeout`.

    Attributes
    ----------
    rank / peer:
        The (rank, peer) channel to break; ``peer=-1`` matches any peer.
    after:
        Fire on the N-th (1-based) matching exchange at that endpoint.
    """

    rank: int
    peer: int
    after: int = 1

    def __post_init__(self) -> None:
        """Reject counters that could never fire (``after`` is 1-based)."""

        if self.after < 1:
            raise ValueError("DropComm.after must be >= 1")


@dataclass(frozen=True)
class DelayComm:
    """Delay one rank's N-th exchange with a peer by a fixed interval.

    Models a slow link rather than a dead one: the exchange completes after
    sleeping ``seconds``, exercising the timeout headroom without failing.

    Attributes
    ----------
    rank / peer:
        The (rank, peer) channel to slow down; ``peer=-1`` matches any peer.
    seconds:
        Sleep applied before the exchange proceeds.
    after:
        Fire on the N-th (1-based) matching exchange at that endpoint.
    """

    rank: int
    peer: int
    seconds: float
    after: int = 1

    def __post_init__(self) -> None:
        """Reject counters/delays that make no sense (``after`` is 1-based)."""

        if self.after < 1:
            raise ValueError("DelayComm.after must be >= 1")
        if self.seconds < 0:
            raise ValueError("DelayComm.seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into a run.

    A plan combines *targeted* injections (:class:`KillWorker`,
    :class:`CorruptFrame`, :class:`DropComm`, :class:`DelayComm`) with an
    optional probabilistic *chaos* mode: with ``chaos_kill_probability`` per
    pool (seeded by ``chaos_seed`` and a process-wide pool counter, so
    decisions are reproducible), one worker of a task/circuit pool is killed
    after a pseudorandomly chosen number of submissions.  Chaos kills are
    only armed for pools whose fault policy enables retries, so opted-out
    runs are never sabotaged.

    Attributes
    ----------
    injections:
        Targeted injection records, each firing at most once.
    chaos_seed:
        Seed of the chaos decision stream (``None`` disables chaos mode).
    chaos_kill_probability:
        Per-pool probability of scheduling one worker kill.
    """

    injections: tuple = ()
    chaos_seed: int | None = None
    chaos_kill_probability: float = 0.0


_lock = threading.Lock()
_installed_plan: FaultPlan | None = None
#: Process-wide counter of pools armed so far; feeds the chaos decision
#: stream so each pool in a run gets an independent but reproducible draw.
_pool_counter = itertools.count()
#: Targeted injections that already fired in this process (injection →
#: fire count).  A pool rebuilt during recovery re-arms from the same plan;
#: without this registry the same KillWorker would fire again on every
#: respawned pool and a single planned fault would repeat forever.  Keyed by
#: the (frozen, hashable) injection record itself so plans re-parsed from
#: the environment variable count against the same entry.
_fired: dict = {}


def _mark_fired(injection) -> None:
    with _lock:
        _fired[injection] = _fired.get(injection, 0) + 1


def _unfired(injections: list) -> list:
    """Filter out plan injections whose fire budget is already spent."""

    seen: dict = {}
    out = []
    with _lock:
        for inj in injections:
            seen[inj] = seen.get(inj, 0) + 1
            if seen[inj] > _fired.get(inj, 0):
                out.append(inj)
    return out


def _parse_kv(body: str) -> dict[str, str]:
    """Split ``k=v,k=v`` into a dict, rejecting malformed chunks."""

    out: dict[str, str] = {}
    for chunk in body.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(f"bad fault-plan entry {chunk!r} (want key=value)")
        key, _, value = chunk.partition("=")
        out[key.strip()] = value.strip()
    return out


def parse_plan(spec: str) -> FaultPlan:
    """Parse a fault-plan spec string (the ``REPRO_FAULT_PLAN`` syntax).

    The spec is a ``;``-separated list of entries, each ``type:k=v,k=v``:

    - ``kill:worker=1,after=5`` (optional ``kinds=task+circuit``)
    - ``corrupt:worker=0,after=2``
    - ``drop:rank=0,peer=1,after=2``
    - ``delay:rank=1,peer=0,seconds=0.2,after=1``
    - ``chaos:prob=0.05,seed=11``

    Example: ``REPRO_FAULT_PLAN="chaos:prob=0.04,seed=11"`` runs the suite
    under a 4%-per-pool seeded worker-kill plan.
    """

    injections: list = []
    chaos_seed: int | None = None
    chaos_prob = 0.0
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, body = entry.partition(":")
        kind = kind.strip()
        kv = _parse_kv(body)
        if kind == "kill":
            kinds = kv.get("kinds")
            injections.append(
                KillWorker(
                    worker=int(kv.get("worker", -1)),
                    after=int(kv.get("after", 1)),
                    kinds=tuple(kinds.split("+")) if kinds else None,
                )
            )
        elif kind == "corrupt":
            injections.append(
                CorruptFrame(
                    worker=int(kv.get("worker", -1)),
                    after=int(kv.get("after", 1)),
                )
            )
        elif kind == "drop":
            injections.append(
                DropComm(
                    rank=int(kv["rank"]),
                    peer=int(kv.get("peer", -1)),
                    after=int(kv.get("after", 1)),
                )
            )
        elif kind == "delay":
            injections.append(
                DelayComm(
                    rank=int(kv["rank"]),
                    peer=int(kv.get("peer", -1)),
                    seconds=float(kv.get("seconds", 0.1)),
                    after=int(kv.get("after", 1)),
                )
            )
        elif kind == "chaos":
            chaos_seed = int(kv.get("seed", 0))
            chaos_prob = float(kv.get("prob", 0.01))
        else:
            raise ValueError(f"unknown fault-plan entry type {kind!r}")
    return FaultPlan(
        injections=tuple(injections),
        chaos_seed=chaos_seed,
        chaos_kill_probability=chaos_prob,
    )


def install_plan(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (overrides the environment variable).

    Installing also clears the fired-injection registry, so a freshly
    installed plan always starts with its full fire budget.
    """

    global _installed_plan
    with _lock:
        _installed_plan = plan
        _fired.clear()


def clear_plan() -> None:
    """Remove any installed plan (the environment variable applies again)."""

    global _installed_plan
    with _lock:
        _installed_plan = None
        _fired.clear()


@contextlib.contextmanager
def installed_plan(plan: FaultPlan):
    """Context manager installing ``plan`` for the duration of the block."""

    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


def get_active_plan() -> FaultPlan | None:
    """The currently active plan: installed first, else parsed from the env.

    The environment variable is re-read on every call so a plan exported
    before interpreter start (the CI chaos job) and plans toggled by tests
    both take effect without import-order coupling.
    """

    with _lock:
        if _installed_plan is not None:
            return _installed_plan
    spec = os.environ.get(PLAN_ENV_VAR)
    if spec:
        return parse_plan(spec)
    return None


class PoolFaultState:
    """Per-pool fault triggers, consulted by ``ProcessPool`` hot paths.

    One instance is armed per pool by :func:`arm_for_pool`; its counters are
    pool-local, so two pools in one run trigger independently.  All methods
    are cheap counter checks — no syscalls, no randomness at fire time.
    """

    def __init__(
        self,
        kills: list[KillWorker],
        corruptions: list[CorruptFrame],
        tracked: frozenset = frozenset(),
    ) -> None:
        """Arm the given targeted injections for one pool.

        ``tracked`` names the injections that came from the plan (as opposed
        to per-pool chaos draws): when one of those fires it is recorded in
        the process-wide fired registry so pools rebuilt during recovery do
        not re-arm it.
        """

        self._kill_counters = [[inj, inj.after] for inj in kills]
        self._corrupt_counters = [[inj, inj.after] for inj in corruptions]
        self._tracked = tracked

    def _fire(self, injection) -> None:
        if injection in self._tracked:
            _mark_fired(injection)

    def on_submit(self, worker_id: int, kind: str) -> int | None:
        """Called before each submission; returns a worker id to kill, or None.

        Counts the submission against every armed :class:`KillWorker` whose
        worker/kinds filters match; the first counter reaching zero fires
        (once) and names its victim — the targeted worker, or the submitting
        worker for ``worker=-1`` entries.
        """

        for entry in self._kill_counters:
            inj, remaining = entry
            if remaining <= 0:
                continue
            if inj.worker not in (-1, worker_id):
                continue
            if inj.kinds is not None and kind not in inj.kinds:
                continue
            entry[1] = remaining - 1
            if entry[1] == 0:
                self._fire(inj)
                return inj.worker if inj.worker >= 0 else worker_id
        return None

    def on_read_frame(self, worker_id: int) -> bool:
        """Called before each reply-frame read; True ⇒ corrupt this payload."""

        for entry in self._corrupt_counters:
            inj, remaining = entry
            if remaining <= 0:
                continue
            if inj.worker not in (-1, worker_id):
                continue
            entry[1] = remaining - 1
            if entry[1] == 0:
                self._fire(inj)
                return True
        return False


class CommFaultState:
    """Per-endpoint comm fault triggers, consulted on every exchange."""

    def __init__(self, drops: list[DropComm], delays: list[DelayComm]) -> None:
        """Arm the drop/delay injections owned by one rank endpoint."""

        self._drop_counters = [[inj, inj.after] for inj in drops]
        self._delay_counters = [[inj, inj.after] for inj in delays]

    def on_exchange(self, rank: int, peer: int) -> tuple[str, float] | None:
        """Called at the top of an exchange with ``peer``.

        Returns ``("drop", 0.0)`` to make the exchange hang to its deadline,
        ``("delay", seconds)`` to slow it down, or ``None`` to proceed.
        """

        for entry in self._drop_counters:
            inj, remaining = entry
            if remaining <= 0 or inj.rank != rank:
                continue
            if inj.peer not in (-1, peer):
                continue
            entry[1] = remaining - 1
            if entry[1] == 0:
                return ("drop", 0.0)
        for entry in self._delay_counters:
            inj, remaining = entry
            if remaining <= 0 or inj.rank != rank:
                continue
            if inj.peer not in (-1, peer):
                continue
            entry[1] = remaining - 1
            if entry[1] == 0:
                return ("delay", inj.seconds)
        return None


def arm_for_pool(
    kind: str, num_workers: int, chaos_allowed: bool
) -> PoolFaultState | None:
    """Build the fault state of a new pool, or ``None`` with no active plan.

    ``kind`` is the dominant message kind of the pool's workers ("task" for
    block-task pools, "circuit" for batch runners, "gate" for rank pools) —
    it gates chaos mode to :data:`CHAOS_KILL_KINDS`.  ``chaos_allowed``
    reflects the pool's fault policy: chaos kills are only scheduled when
    the policy can actually recover from them (``max_retries > 0``), while
    targeted injections are always armed (deterministic tests opt in
    explicitly and assert the failure mode they want).
    """

    plan = get_active_plan()
    # The counter advances for every pool created while a plan is active,
    # plan-armed or not, so adding pools elsewhere in a run does not shift
    # which pool a given chaos draw lands on.
    draw_index = next(_pool_counter)
    if plan is None:
        return None
    kills = _unfired(
        [inj for inj in plan.injections if isinstance(inj, KillWorker)]
    )
    corruptions = _unfired(
        [inj for inj in plan.injections if isinstance(inj, CorruptFrame)]
    )
    tracked = frozenset(kills) | frozenset(corruptions)
    if (
        chaos_allowed
        and plan.chaos_seed is not None
        and plan.chaos_kill_probability > 0.0
        and kind in CHAOS_KILL_KINDS
        and num_workers > 0
    ):
        rng = random.Random(f"{plan.chaos_seed}:{draw_index}")
        if rng.random() < plan.chaos_kill_probability:
            kills.append(
                KillWorker(
                    worker=rng.randrange(num_workers),
                    after=1 + rng.randrange(24),
                    kinds=CHAOS_KILL_KINDS,
                )
            )
    if not kills and not corruptions:
        return None
    return PoolFaultState(kills, corruptions, tracked=tracked)


def arm_for_comm(rank: int, pool_generation: int = 0) -> CommFaultState | None:
    """Build the comm fault state of one rank endpoint (or ``None``).

    ``pool_generation`` counts pool rebuilds during recovery.  Comm
    injections only arm in generation 0: rank workers re-arm from the
    environment in their own (fresh) processes, so without this gate a
    rebuilt pool would deterministically replay straight into the same
    drop/delay and recovery could never converge.  Rebuilt pools run clean.
    """

    plan = get_active_plan()
    if plan is None or pool_generation > 0:
        return None
    drops = [
        inj
        for inj in plan.injections
        if isinstance(inj, DropComm) and inj.rank == rank
    ]
    delays = [
        inj
        for inj in plan.injections
        if isinstance(inj, DelayComm) and inj.rank == rank
    ]
    if not drops and not delays:
        return None
    return CommFaultState(drops, delays)
