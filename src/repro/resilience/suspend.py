"""Suspend/resume of in-flight simulations over QCKPT001 checkpoints.

The service layer (:mod:`repro.serve`) pauses long jobs at gate boundaries
and later continues them, possibly on a *different* warm simulator of the
same geometry.  Both halves build on the checkpoint format of
:mod:`repro.core.checkpoint`:

* :func:`suspend_to_checkpoint` snapshots a simulator's compressed state
  atomically (tmp file + ``os.replace``, the same torn-write discipline as
  the in-run resilience checkpoints);
* :func:`resume_from_checkpoint` restores a snapshot *into an existing warm
  simulator* instead of constructing a fresh one — the serve-layer lease
  pools keep executors, scratch pools and decompressors alive across the
  suspension, so resuming pays only the block-table rebuild.

Determinism contract: a run suspended after gate *k* and resumed elsewhere
applies gates ``k+1..n`` to bit-identical compressed blocks, with the gate
index, fidelity history and adaptive-controller level all restored — so its
final counts, expectations and statevector equal an uninterrupted run's
(only measured timings and report *counters*, which restart at the resume
point, differ).
"""

from __future__ import annotations

import os
from pathlib import Path

from ..errors import CheckpointError

__all__ = ["suspend_to_checkpoint", "resume_from_checkpoint"]


def suspend_to_checkpoint(simulator, path: str | Path) -> int:
    """Atomically snapshot *simulator* to *path*; returns bytes written.

    The snapshot lands via a temporary sibling file and ``os.replace``, so a
    crash mid-write can never leave a torn checkpoint under the final name.
    The simulator keeps running (or can be released) afterwards — the
    snapshot is independent.
    """

    from ..core.checkpoint import save_checkpoint

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    written = save_checkpoint(simulator, tmp)
    os.replace(tmp, path)
    return written


def resume_from_checkpoint(simulator, path: str | Path) -> int:
    """Restore the checkpoint at *path* into an existing warm *simulator*.

    The simulator must have the same geometry (qubits, ranks, block size)
    the checkpoint was taken with; a mismatch raises
    :class:`~repro.errors.CheckpointError` before any state is touched.  On
    success the simulator holds the checkpointed compressed blocks with its
    gate index, fidelity history and adaptive error level rewound to the
    suspension point; applying the remaining gates continues the run
    bit-identically.  Returns the restored gate index.
    """

    from ..core.blocks import CompressedBlock
    from ..core.checkpoint import read_checkpoint

    path = Path(path)
    meta, blocks = read_checkpoint(path)
    partition = simulator.partition
    for field, expected in (
        ("num_qubits", partition.num_qubits),
        ("num_ranks", partition.num_ranks),
        ("block_amplitudes", partition.block_amplitudes),
    ):
        value = meta.get(field)
        if value != expected:
            raise CheckpointError(
                f"checkpoint {field}={value} does not match the resuming "
                f"simulator's {field}={expected}",
                path=str(path),
            )
    expected_blocks = partition.num_ranks * partition.blocks_per_rank
    if len(blocks) != expected_blocks:
        raise CheckpointError(
            f"checkpoint holds {len(blocks)} blocks, partition expects "
            f"{expected_blocks}",
            path=str(path),
        )

    simulator.reset()
    for rank, block, name, bound, blob in blocks:
        simulator.state.store.put(
            rank, block, CompressedBlock(blob=blob, compressor=name, bound=bound)
        )
    gate_index = int(meta.get("gate_count", 0))
    # Rewind the parent-side bookkeeping exactly as load_checkpoint does on
    # a freshly built simulator.
    simulator._gate_index = gate_index  # noqa: SLF001 - deliberate restore
    simulator._report.gates_executed = gate_index  # noqa: SLF001 - deliberate restore
    if simulator.fidelity_tracker is not None:
        for bound in meta.get("fidelity_gate_bounds", []):
            simulator.fidelity_tracker.record_gate(float(bound))
    if meta.get("current_bound"):
        simulator.controller.force_level(float(meta["current_bound"]))
    return gate_index
