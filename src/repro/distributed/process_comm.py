"""Shared-memory rank-to-rank communication (the real inter-rank transport).

This module reproduces, at single-node scale, the communication layer the
paper runs over MPI (Sections 3.3 and 4): compressed blocks really do leave
the address space of the rank that owns them.  Each rank of the
:mod:`repro.distributed.ranked` execution tier holds one
:class:`ProcessCommunicator` endpoint attached to a single
:class:`RankCommArena` — a shared-memory segment the parent creates before
the rank workers start — and moves payloads through lock-free chunked
channels inside it:

* **Point-to-point block exchange** (``sendrecv_bytes``): one directed
  channel per hypercube neighbour pair ``(rank, rank ^ 2**k)`` — the only
  pairs a gate plan can generate, since a rank-segment target qubit flips
  exactly one rank bit (:meth:`repro.distributed.partition.Partition.rank_pairs`).
  A channel is a sequence/acknowledge counter pair plus a payload area;
  payloads larger than the area stream through it in chunks, so correctness
  never depends on the channel capacity.
* **Allreduce / barrier**: per-rank arrive/depart generation counters plus a
  value slot per rank, a sense-reversing two-phase barrier that makes the
  value slots stable while any rank is still reading them.

Synchronisation is by polling with exponential backoff (hot spin, then
micro-sleeps): the critical sections are block-compression sized, so a
condition-variable handshake would cost more than it saves.  Every blocking
wait carries a deadline (:class:`ProcessCommTimeout`), so a dead peer turns
into a prompt error instead of a hang — the parent's pool additionally
detects dead worker processes on its own (see
:meth:`repro.core.procpool.ProcessPool.recv_any`).

**Memory-ordering assumption.**  The publish/consume counters are plain
stores with no explicit fences (pure Python has none to offer), so the
"payload before counter" ordering the protocol relies on is guaranteed by
x86's total store order — the architecture of the reference container and
of CI.  A weakly-ordered CPU (aarch64) could in principle make a counter
increment visible before the payload bytes it publishes; deploying the
ranked tier there should swap in a fence-bearing transport — most naturally
the mpi4py implementation of the same
:class:`~repro.distributed.comm.RankCommunicator` interface, which is the
portable path to multi-node scale anyway.

The accounting convention mirrors :class:`~repro.distributed.comm.SimulatedCommunicator`
so the two are comparable field by field after
:func:`~repro.distributed.comm.aggregate_rank_stats`: each endpoint counts
what it sent, and collectives use the same recursive-doubling cost model the
simulated communicator charges (the physical shared-memory writes are
cheaper, but the modelled volume is what a network implementation would
move).
"""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np

from ..errors import ProcessCommTimeout
from ..resilience import faults as _faults
from .comm import CommunicationStats, RankCommunicator

__all__ = ["RankCommArena", "ProcessCommunicator", "ProcessCommTimeout"]

#: Bytes of the per-channel header: seq, ack, message-total, chunk-length.
_CHANNEL_HEADER_BYTES = 32

#: Default per-channel payload capacity when none is derived from the block
#: size (conformance tests exercise far smaller capacities to force chunking).
DEFAULT_CHANNEL_CAPACITY = 1 << 16

#: Default deadline for any single blocking communicator operation.
DEFAULT_TIMEOUT_SECONDS = 120.0


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _layout(num_ranks: int, channel_capacity: int) -> tuple[int, int, int]:
    """Return ``(collective_bytes, channel_bytes, total_bytes)`` of a segment.

    The collective region holds three per-rank arrays (arrive counters,
    depart counters, float64 value slots); the channel region holds one
    directed channel per (rank, rank-bit) pair.
    """

    rank_bits = num_ranks.bit_length() - 1
    collective = 3 * 8 * num_ranks
    channel = _CHANNEL_HEADER_BYTES + channel_capacity
    total = collective + num_ranks * rank_bits * channel
    return collective, channel, max(1, total)


class RankCommArena:
    """Parent-owned shared-memory segment backing one rank communicator group.

    Created once by the ranked executor before its worker processes start;
    the workers attach endpoints by :attr:`name`.  Only this owner unlinks
    the segment (in :meth:`close`), mirroring the single-unlink discipline of
    :class:`repro.core.procpool.SlotArena`.

    Parameters
    ----------
    num_ranks:
        Number of ranks (power of two).
    channel_capacity:
        Payload bytes per directed channel.  Sized to one compressed block in
        the ranked tier; larger payloads stream through in chunks, so this is
        a throughput knob, not a correctness bound.
    """

    def __init__(
        self, num_ranks: int, channel_capacity: int = DEFAULT_CHANNEL_CAPACITY
    ) -> None:
        if not _is_power_of_two(num_ranks):
            raise ValueError(f"num_ranks ({num_ranks}) must be a power of two")
        if channel_capacity < 1:
            raise ValueError("channel_capacity must be >= 1")
        self._num_ranks = int(num_ranks)
        self._channel_capacity = int(channel_capacity)
        _, _, total = _layout(self._num_ranks, self._channel_capacity)
        self._shm = shared_memory.SharedMemory(create=True, size=total)
        # Counters must start at zero; SharedMemory zero-fills on most
        # platforms but the contract does not guarantee it.
        self._shm.buf[:total] = b"\x00" * total

    @property
    def name(self) -> str:
        """Segment name rank workers attach to."""

        return self._shm.name

    @property
    def num_ranks(self) -> int:
        """Number of ranks the arena is laid out for."""

        return self._num_ranks

    @property
    def channel_capacity(self) -> int:
        """Payload bytes per directed channel."""

        return self._channel_capacity

    def endpoint(
        self, rank: int, timeout: float = DEFAULT_TIMEOUT_SECONDS
    ) -> "ProcessCommunicator":
        """Attach an in-process endpoint for *rank* (tests and tools).

        Rank workers in other processes construct
        :class:`ProcessCommunicator` directly from :attr:`name` instead.
        """

        return ProcessCommunicator(
            self.name,
            rank,
            self._num_ranks,
            self._channel_capacity,
            timeout=timeout,
        )

    def close(self) -> None:
        """Detach and unlink the segment (idempotent)."""

        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


class _Channel:
    """One directed chunked channel inside the arena.

    ``seq`` counts chunks published by the writer, ``ack`` chunks consumed by
    the reader; the writer may only rewrite the payload area when
    ``seq == ack``.  ``msg_total`` carries the full message length (written
    with the first chunk), ``chunk_len`` the bytes of the current chunk.
    """

    def __init__(self, header: np.ndarray, payload: memoryview) -> None:
        self._header = header
        self._payload = payload
        self._capacity = len(payload)

    # -- writer side ---------------------------------------------------------------

    def can_write(self) -> bool:
        return int(self._header[0]) == int(self._header[1])

    def write_chunk(self, chunk: bytes, message_total: int, first: bool) -> None:
        self._payload[: len(chunk)] = chunk
        self._header[3] = len(chunk)
        if first:
            self._header[2] = message_total
        # Publishing the sequence number last makes the chunk visible only
        # after its bytes and lengths are in place.
        self._header[0] = int(self._header[0]) + 1

    # -- reader side ---------------------------------------------------------------

    def can_read(self) -> bool:
        return int(self._header[0]) != int(self._header[1])

    def read_chunk(self) -> tuple[bytes, int]:
        chunk_len = int(self._header[3])
        total = int(self._header[2])
        chunk = bytes(self._payload[:chunk_len])
        self._header[1] = int(self._header[1]) + 1
        return chunk, total

    @property
    def capacity(self) -> int:
        return self._capacity


class _ChunkSender:
    """Progress-based state machine streaming one payload into a channel."""

    def __init__(self, channel: _Channel, payload: bytes) -> None:
        self._channel = channel
        self._payload = payload
        self._cursor = 0
        self._sent_any = False
        self.done = False

    def step(self) -> bool:
        """Write the next chunk if the channel is free; True on progress."""

        if self.done or not self._channel.can_write():
            return False
        end = min(self._cursor + self._channel.capacity, len(self._payload))
        self._channel.write_chunk(
            self._payload[self._cursor : end],
            len(self._payload),
            first=not self._sent_any,
        )
        self._sent_any = True
        self._cursor = end
        if self._cursor >= len(self._payload):
            self.done = True
        return True


class _ChunkReceiver:
    """Progress-based state machine draining one payload from a channel."""

    def __init__(self, channel: _Channel) -> None:
        self._channel = channel
        self._parts: list[bytes] = []
        self._received = 0
        self._total: int | None = None
        self.done = False

    def step(self) -> bool:
        """Consume the next chunk if one is published; True on progress."""

        if self.done or not self._channel.can_read():
            return False
        chunk, total = self._channel.read_chunk()
        if self._total is None:
            self._total = total
        self._parts.append(chunk)
        self._received += len(chunk)
        if self._total is not None and self._received >= self._total:
            self.done = True
        return True

    def result(self) -> bytes:
        return b"".join(self._parts)


class ProcessCommunicator(RankCommunicator):
    """One rank's endpoint of a shared-memory communicator group.

    Implements :class:`~repro.distributed.comm.RankCommunicator` over a
    :class:`RankCommArena`: real payload bytes cross process boundaries
    through the arena's channels, and collectives synchronise through its
    generation counters.  Exchanges are restricted to hypercube neighbours
    (``peer == rank ^ 2**k``) — the only pairs the gate planner produces.

    Parameters
    ----------
    arena_name:
        Shared-memory segment name of the parent's :class:`RankCommArena`.
    rank:
        This endpoint's rank index.
    num_ranks:
        Total ranks (must match the arena's layout).
    channel_capacity:
        Payload bytes per channel (must match the arena's layout).
    timeout:
        Deadline in seconds for any single blocking operation; exceeding it
        raises :class:`ProcessCommTimeout` (a dead peer, not a slow one —
        block compression is bounded work).
    pool_generation:
        Rebuild count of the owning rank pool; forwarded to the fault
        harness so injected comm faults only arm in generation 0 (see
        :func:`repro.resilience.faults.arm_for_comm`).
    """

    def __init__(
        self,
        arena_name: str,
        rank: int,
        num_ranks: int,
        channel_capacity: int = DEFAULT_CHANNEL_CAPACITY,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
        pool_generation: int = 0,
    ) -> None:
        if not _is_power_of_two(num_ranks):
            raise ValueError(f"num_ranks ({num_ranks}) must be a power of two")
        if not 0 <= rank < num_ranks:
            raise ValueError(f"rank {rank} out of range (0..{num_ranks - 1})")
        self._rank = int(rank)
        self._num_ranks = int(num_ranks)
        self._channel_capacity = int(channel_capacity)
        self._timeout = float(timeout)
        self._rank_bits = num_ranks.bit_length() - 1
        self._shm = shared_memory.SharedMemory(name=arena_name)
        collective, channel_bytes, _ = _layout(num_ranks, channel_capacity)
        buf = self._shm.buf
        self._arrive = np.frombuffer(buf, dtype=np.uint64, count=num_ranks, offset=0)
        self._depart = np.frombuffer(
            buf, dtype=np.uint64, count=num_ranks, offset=8 * num_ranks
        )
        self._values = np.frombuffer(
            buf, dtype=np.float64, count=num_ranks, offset=16 * num_ranks
        )
        self._channels: dict[tuple[int, int], _Channel] = {}
        for src in range(num_ranks):
            for bit in range(self._rank_bits):
                index = src * self._rank_bits + bit
                base = collective + index * channel_bytes
                header = np.frombuffer(buf, dtype=np.uint64, count=4, offset=base)
                payload = buf[
                    base + _CHANNEL_HEADER_BYTES : base + channel_bytes
                ]
                self._channels[(src, src ^ (1 << bit))] = _Channel(header, payload)
        self._generation = 0
        self._stats = CommunicationStats()
        self._op_seconds = {"exchange": 0.0, "allreduce": 0.0, "barrier": 0.0}
        self._closed = False
        self._fault_state = _faults.arm_for_comm(self._rank, pool_generation)

    # -- RankCommunicator surface ---------------------------------------------------

    @property
    def rank(self) -> int:
        """This endpoint's rank index."""

        return self._rank

    @property
    def num_ranks(self) -> int:
        """Total ranks in the communicator group."""

        return self._num_ranks

    @property
    def stats(self) -> CommunicationStats:
        """Traffic this endpoint initiated (endpoint convention; see
        :func:`~repro.distributed.comm.aggregate_rank_stats`)."""

        return self._stats

    @property
    def op_seconds(self) -> dict:
        """Measured seconds spent blocked, per operation kind."""

        return dict(self._op_seconds)

    def sendrecv_bytes(self, peer: int, payload: bytes) -> bytes:
        """Exchange *payload* with *peer*; returns the peer's payload.

        Both endpoints drive their sender and receiver state machines in one
        loop, so the exchange cannot deadlock even when both payloads exceed
        the channel capacity and stream through in chunks.

        Raises
        ------
        ValueError
            If *peer* is out of range, equals this rank, or is not a
            hypercube neighbour (no channel exists — gate plans never
            produce such pairs).
        ProcessCommTimeout
            If the peer stops making progress before the deadline.
        """

        if not 0 <= peer < self._num_ranks:
            raise ValueError(f"peer {peer} out of range (0..{self._num_ranks - 1})")
        if peer == self._rank:
            raise ValueError("cannot exchange with self")
        if (self._rank, peer) not in self._channels:
            raise ValueError(
                f"ranks {self._rank} and {peer} are not hypercube neighbours; "
                "gate plans only exchange blocks between ranks differing in "
                "one rank bit"
            )
        started = time.perf_counter()
        if self._fault_state is not None:
            injected = self._fault_state.on_exchange(self._rank, peer)
            if injected is not None:
                action, seconds = injected
                if action == "drop":
                    # A dropped channel behaves exactly like a dead peer —
                    # the deadline error — without spending the wall-clock
                    # wait (injection is for tests, determinism matters,
                    # latency does not).
                    raise ProcessCommTimeout(
                        f"rank {self._rank}: block exchange with rank "
                        f"{peer} dropped by injected fault plan",
                        rank=self._rank,
                        peer=peer,
                        op="sendrecv",
                        elapsed_seconds=self._timeout,
                        timeout_seconds=self._timeout,
                    )
                time.sleep(seconds)
        sender = _ChunkSender(self._channels[(self._rank, peer)], payload)
        receiver = _ChunkReceiver(self._channels[(peer, self._rank)])
        deadline = time.monotonic() + self._timeout
        spins = 0
        while not (sender.done and receiver.done):
            progressed = sender.step()
            progressed = receiver.step() or progressed
            if progressed:
                spins = 0
                continue
            spins += 1
            if spins > 200:
                time.sleep(5e-5 if spins < 4000 else 1e-3)
                if time.monotonic() > deadline:
                    raise ProcessCommTimeout(
                        f"rank {self._rank}: block exchange with rank {peer} "
                        f"made no progress for {self._timeout:.0f}s "
                        "(peer process dead?)",
                        rank=self._rank,
                        peer=peer,
                        op="sendrecv",
                        elapsed_seconds=time.perf_counter() - started,
                        timeout_seconds=self._timeout,
                    )
        self._stats.exchanges += 1
        self._stats.messages += 1
        self._stats.bytes_sent += len(payload)
        self._op_seconds["exchange"] += time.perf_counter() - started
        return receiver.result()

    def allreduce_sum(self, value: float) -> float:
        """Global sum of one float contribution per rank.

        All ranks read the same value-slot array in ascending rank order, so
        every endpoint returns the bit-identical float.  Accounting uses the
        same recursive-doubling volume model as
        :meth:`~repro.distributed.comm.SimulatedCommunicator.allreduce_sum`
        (per endpoint: ``log2(r)`` messages of 8 bytes), so aggregated real
        stats match the simulated ones field by field.
        """

        started = time.perf_counter()
        self._generation += 1
        self._values[self._rank] = float(value)
        self._arrive[self._rank] = self._generation
        self._wait_counters(self._arrive, "allreduce(arrive)")
        total = float(self._values.sum())
        self._depart[self._rank] = self._generation
        self._wait_counters(self._depart, "allreduce(depart)")
        rounds = max(1, self._num_ranks.bit_length() - 1)
        self._stats.allreduces += 1
        self._stats.messages += rounds
        self._stats.bytes_sent += 8 * rounds
        self._op_seconds["allreduce"] += time.perf_counter() - started
        return total

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

        started = time.perf_counter()
        self._generation += 1
        self._arrive[self._rank] = self._generation
        self._wait_counters(self._arrive, "barrier(arrive)")
        self._depart[self._rank] = self._generation
        self._wait_counters(self._depart, "barrier(depart)")
        self._stats.barriers += 1
        self._op_seconds["barrier"] += time.perf_counter() - started

    # -- internals -------------------------------------------------------------------

    def _wait_counters(self, counters: np.ndarray, what: str) -> None:
        """Poll until every rank's counter reaches the current generation."""

        target = self._generation
        started = time.perf_counter()
        deadline = time.monotonic() + self._timeout
        spins = 0
        while not bool((counters >= target).all()):
            spins += 1
            if spins > 200:
                time.sleep(5e-5 if spins < 4000 else 1e-3)
                if time.monotonic() > deadline:
                    laggards = [
                        rank
                        for rank in range(self._num_ranks)
                        if int(counters[rank]) < target
                    ]
                    raise ProcessCommTimeout(
                        f"rank {self._rank}: {what} stuck waiting on ranks "
                        f"{laggards} for {self._timeout:.0f}s",
                        rank=self._rank,
                        peer=tuple(laggards),
                        op=what,
                        elapsed_seconds=time.perf_counter() - started,
                        timeout_seconds=self._timeout,
                    )

    def reset_stats(self) -> None:
        """Zero this endpoint's counters and measured seconds."""

        self._stats.reset()
        for key in self._op_seconds:
            self._op_seconds[key] = 0.0

    def close(self) -> None:
        """Detach from the arena (idempotent; never unlinks — the parent's
        :class:`RankCommArena` owns the segment)."""

        if self._closed:
            return
        self._closed = True
        # Drop every numpy/memoryview export before closing the mapping, or
        # SharedMemory.close() raises BufferError.
        self._arrive = self._depart = self._values = None
        self._channels = {}
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass
