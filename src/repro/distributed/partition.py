"""Rank / block partitioning of the state vector (Figure 3 of the paper).

For an ``n``-qubit simulation distributed over ``r`` MPI ranks, each rank owns
``2^n / r`` consecutive amplitudes, further divided into blocks of ``b``
amplitudes that are stored compressed.  The global amplitude index therefore
splits into three segments::

    | rank bits (log2 r) | block bits (log2 nb) | offset bits (log2 b) |
      most significant                             least significant

and the paper classifies a gate's target qubit ``q`` by the segment it falls
into:

* ``q < log2 b``             — both amplitudes of every pair live in the same
  block ("local" qubit);
* ``log2 b <= q < n - log2 r`` — the pair lives in the same rank but in two
  different blocks ("block" qubit);
* ``q >= n - log2 r``        — the pair spans two ranks and blocks must be
  exchanged ("rank" qubit).

The same classification decides how a *control* qubit gates the update: a
local control masks individual amplitudes, a block control skips whole
blocks, and a rank control skips whole ranks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["QubitSegment", "Partition"]


class QubitSegment(enum.Enum):
    """Which index segment a qubit position falls into (Figure 3)."""

    LOCAL = "local"  # inside a block
    BLOCK = "block"  # selects the block within a rank
    RANK = "rank"  # selects the rank


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class Partition:
    """Static decomposition of a ``2^n`` state vector into ranks and blocks.

    Parameters
    ----------
    num_qubits:
        Total number of qubits ``n``.
    num_ranks:
        Number of (simulated) MPI ranks ``r``; must be a power of two no
        larger than ``2^n``.
    block_amplitudes:
        Amplitudes per block ``b``; must be a power of two and small enough
        that every rank holds at least one block.  The paper uses
        ``b = 1,048,576`` (16 MB of complex doubles); the laptop-scale default
        used elsewhere in this repo is much smaller.
    """

    num_qubits: int
    num_ranks: int
    block_amplitudes: int

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        if not _is_power_of_two(self.num_ranks):
            raise ValueError(f"num_ranks ({self.num_ranks}) must be a power of two")
        if not _is_power_of_two(self.block_amplitudes):
            raise ValueError(
                f"block_amplitudes ({self.block_amplitudes}) must be a power of two"
            )
        if self.num_ranks > self.total_amplitudes:
            raise ValueError("more ranks than amplitudes")
        if self.block_amplitudes > self.amplitudes_per_rank:
            raise ValueError(
                "block_amplitudes exceeds the amplitudes held by one rank: "
                f"{self.block_amplitudes} > {self.amplitudes_per_rank}"
            )

    # -- sizes -------------------------------------------------------------------

    @property
    def total_amplitudes(self) -> int:
        """``2^n`` amplitudes in the full state."""

        return 1 << self.num_qubits

    @property
    def amplitudes_per_rank(self) -> int:
        """Amplitudes owned by each rank."""

        return self.total_amplitudes // self.num_ranks

    @property
    def blocks_per_rank(self) -> int:
        """Number of blocks each rank's slice is divided into (``nb``)."""

        return self.amplitudes_per_rank // self.block_amplitudes

    @property
    def total_blocks(self) -> int:
        """Blocks across all ranks (``nb * r``)."""

        return self.blocks_per_rank * self.num_ranks

    @property
    def offset_bits(self) -> int:
        """``log2 b`` — bits addressing an amplitude within a block."""

        return self.block_amplitudes.bit_length() - 1

    @property
    def block_bits(self) -> int:
        """``log2 nb`` — bits addressing a block within a rank."""

        return self.blocks_per_rank.bit_length() - 1

    @property
    def rank_bits(self) -> int:
        """``log2 r`` — bits addressing the rank."""

        return self.num_ranks.bit_length() - 1

    @property
    def block_bytes(self) -> int:
        """Uncompressed size of one block of complex128 amplitudes."""

        return self.block_amplitudes * 16

    def uncompressed_bytes(self) -> int:
        """Memory required without compression: ``2^{n+4}`` bytes."""

        return self.total_amplitudes * 16

    # -- qubit classification ------------------------------------------------------

    def segment_of(self, qubit: int) -> QubitSegment:
        """Classify *qubit* per Figure 3."""

        self._check_qubit(qubit)
        if qubit < self.offset_bits:
            return QubitSegment.LOCAL
        if qubit < self.num_qubits - self.rank_bits:
            return QubitSegment.BLOCK
        return QubitSegment.RANK

    def local_bit(self, qubit: int) -> int:
        """Bit position of a LOCAL qubit within the block offset."""

        if self.segment_of(qubit) is not QubitSegment.LOCAL:
            raise ValueError(f"qubit {qubit} is not a local qubit")
        return qubit

    def block_bit(self, qubit: int) -> int:
        """Bit position of a BLOCK qubit within the block index."""

        if self.segment_of(qubit) is not QubitSegment.BLOCK:
            raise ValueError(f"qubit {qubit} is not a block qubit")
        return qubit - self.offset_bits

    def rank_bit(self, qubit: int) -> int:
        """Bit position of a RANK qubit within the rank index."""

        if self.segment_of(qubit) is not QubitSegment.RANK:
            raise ValueError(f"qubit {qubit} is not a rank qubit")
        return qubit - (self.num_qubits - self.rank_bits)

    # -- index arithmetic --------------------------------------------------------------

    def global_index(self, rank: int, block: int, offset: int) -> int:
        """Compose a global amplitude index from its three segments."""

        self._check_rank(rank)
        self._check_block(block)
        if not 0 <= offset < self.block_amplitudes:
            raise ValueError(f"offset {offset} out of range")
        return (
            (rank << (self.num_qubits - self.rank_bits))
            | (block << self.offset_bits)
            | offset
        )

    def locate(self, global_index: int) -> tuple[int, int, int]:
        """Split a global amplitude index into ``(rank, block, offset)``."""

        if not 0 <= global_index < self.total_amplitudes:
            raise ValueError(f"global index {global_index} out of range")
        offset = global_index & (self.block_amplitudes - 1)
        block = (global_index >> self.offset_bits) & (self.blocks_per_rank - 1)
        rank = global_index >> (self.num_qubits - self.rank_bits)
        return rank, block, offset

    def rank_of(self, global_index: int) -> int:
        """The rank owning a global amplitude index."""

        return self.locate(global_index)[0]

    # -- pair enumeration ---------------------------------------------------------------

    def block_pairs(self, qubit: int) -> list[tuple[int, int]]:
        """For a BLOCK qubit, all (block0, block1) pairs within a rank.

        ``block0`` has the qubit's block bit equal to 0, ``block1`` equal to 1.
        """

        bit = 1 << self.block_bit(qubit)
        return [
            (block, block | bit)
            for block in range(self.blocks_per_rank)
            if not block & bit
        ]

    def rank_pairs(self, qubit: int) -> list[tuple[int, int]]:
        """For a RANK qubit, all (rank0, rank1) pairs that must exchange blocks."""

        bit = 1 << self.rank_bit(qubit)
        return [
            (rank, rank | bit) for rank in range(self.num_ranks) if not rank & bit
        ]

    # -- validation helpers -----------------------------------------------------------

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit partition"
            )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.blocks_per_rank:
            raise ValueError(f"block {block} out of range")

    def describe(self) -> str:
        """One-line human-readable description for logs and reports."""

        return (
            f"{self.num_qubits} qubits over {self.num_ranks} rank(s), "
            f"{self.blocks_per_rank} block(s)/rank x {self.block_amplitudes} amplitudes "
            f"({self.block_bytes / 2**20:.2f} MiB/block uncompressed)"
        )
