"""The communicator hierarchy: simulated, process-backed, future MPI.

The paper runs Intel-QS over MPI on up to 4,096 Theta nodes (Section 4).
This reproduction models that layer as a small hierarchy, all sharing the
subset of MPI the simulator needs — point-to-point block exchange, allreduce
for norms, a barrier:

* :class:`SimulatedCommunicator` — every rank's compressed blocks live in one
  process and the communicator only *records* the traffic (messages and
  bytes) a real MPI execution would have generated: the quantity behind the
  "Communication Time" rows of Table 2 and the Figure 16 bandwidth model.
* :class:`~repro.distributed.process_comm.ProcessCommunicator` — the real
  thing at single-node scale: each rank is a worker process owning its
  partition slice (:mod:`repro.distributed.ranked`), and compressed blobs
  actually cross process boundaries through shared-memory channels.  It
  implements :class:`RankCommunicator`, the payload-carrying interface below.
* an MPI communicator (future work) — a thin ``mpi4py`` wrapper implementing
  the same :class:`RankCommunicator` interface (``sendrecv_bytes`` →
  ``MPI.Comm.sendrecv``, ``allreduce_sum`` → ``MPI.Comm.allreduce``) would
  let the ranked tier span nodes without touching the executor.

Both real and simulated communicators account their traffic in the same
:class:`CommunicationStats` counters;
:func:`aggregate_rank_stats` normalises per-endpoint counters of a real
communicator onto the conventions of the shared simulated object so reports
and tests can compare them field by field.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "CommunicationStats",
    "SimulatedCommunicator",
    "RankCommunicator",
    "aggregate_rank_stats",
]


@dataclass
class CommunicationStats:
    """Aggregate counters of simulated inter-rank traffic."""

    messages: int = 0
    bytes_sent: int = 0
    exchanges: int = 0
    allreduces: int = 0
    barriers: int = 0

    def reset(self) -> None:
        """Zero every counter."""

        self.messages = 0
        self.bytes_sent = 0
        self.exchanges = 0
        self.allreduces = 0
        self.barriers = 0

    def as_dict(self) -> dict:
        """Counters as a plain JSON-serialisable mapping."""

        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "exchanges": self.exchanges,
            "allreduces": self.allreduces,
            "barriers": self.barriers,
        }


class SimulatedCommunicator:
    """In-process stand-in for an MPI communicator over *num_ranks* ranks.

    Simulation is one tier of the hierarchy, not the only option: it is the
    default (``SimulatorConfig(comm="simulated")``), while
    ``comm="process"`` swaps in real inter-rank data movement through
    :class:`~repro.distributed.process_comm.ProcessCommunicator`, and an
    ``mpi4py``-backed :class:`RankCommunicator` would span nodes the same
    way.  This class also doubles as the parent-side aggregate *stats sink*
    of a ranked run (the executor folds real per-endpoint counters into
    :attr:`stats` via :func:`aggregate_rank_stats`).

    Parameters
    ----------
    num_ranks:
        Number of simulated ranks.
    bandwidth_bytes_per_s:
        Optional modelled interconnect bandwidth.  When set, the communicator
        accumulates a *modelled* communication time
        (``bytes / bandwidth + messages * latency``) which the reports can
        show alongside measured wall-clock time.
    latency_s:
        Optional modelled per-message latency.
    """

    def __init__(
        self,
        num_ranks: int,
        bandwidth_bytes_per_s: float | None = None,
        latency_s: float = 0.0,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self._num_ranks = int(num_ranks)
        self._bandwidth = bandwidth_bytes_per_s
        self._latency = float(latency_s)
        self.stats = CommunicationStats()
        self._modelled_seconds = 0.0

    @property
    def num_ranks(self) -> int:
        """Number of simulated ranks the traffic model spans."""

        return self._num_ranks

    @property
    def modelled_seconds(self) -> float:
        """Modelled communication time (0 when no bandwidth model is set)."""

        return self._modelled_seconds

    # -- traffic accounting -------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._num_ranks:
            raise ValueError(f"rank {rank} out of range (0..{self._num_ranks - 1})")

    def _account(self, num_bytes: int, messages: int) -> None:
        self.stats.messages += messages
        self.stats.bytes_sent += num_bytes
        if self._bandwidth:
            self._modelled_seconds += num_bytes / self._bandwidth
        self._modelled_seconds += messages * self._latency

    def send(self, source: int, dest: int, num_bytes: int) -> None:
        """Record a point-to-point message of *num_bytes* from source to dest."""

        self._check_rank(source)
        self._check_rank(dest)
        if source == dest:
            return
        self._account(num_bytes, 1)

    def exchange_blocks(self, rank_a: int, rank_b: int, num_bytes: int) -> None:
        """Record a symmetric block exchange between two ranks.

        This is the operation triggered by gates whose target qubit lies in
        the rank segment (Section 3.3, third bullet): each rank sends one
        compressed block to the other.
        """

        self._check_rank(rank_a)
        self._check_rank(rank_b)
        if rank_a == rank_b:
            return
        self.stats.exchanges += 1
        self._account(2 * num_bytes, 2)

    # -- collectives ------------------------------------------------------------------

    def allreduce_sum(self, per_rank_values: np.ndarray | list[float]) -> float:
        """Sum a per-rank scalar, recording the collective."""

        values = np.asarray(per_rank_values, dtype=np.float64)
        if values.size != self._num_ranks:
            raise ValueError(
                f"expected one value per rank ({self._num_ranks}), got {values.size}"
            )
        self.stats.allreduces += 1
        # A recursive-doubling allreduce moves log2(r) messages of 8 bytes per
        # rank; account for it so communication volume scales with rank count.
        rounds = max(1, self._num_ranks.bit_length() - 1)
        self._account(8 * self._num_ranks * rounds, self._num_ranks * rounds)
        return float(values.sum())

    def barrier(self) -> None:
        """Record a barrier (no data volume)."""

        self.stats.barriers += 1

    def reset(self) -> None:
        """Clear all counters."""

        self.stats.reset()
        self._modelled_seconds = 0.0


class RankCommunicator(abc.ABC):
    """Payload-carrying communicator interface of one rank (MPI subset).

    One instance is *one endpoint*: it knows its own ``rank``, the total
    ``num_ranks``, and moves real bytes.  This is the surface a future
    ``mpi4py`` communicator implements unchanged
    (``sendrecv_bytes`` → ``MPI.Comm.sendrecv``, ``allreduce_sum`` →
    ``MPI.Comm.allreduce``, ``barrier`` → ``MPI.Comm.Barrier``); the
    shared-memory implementation for single-node multi-process runs is
    :class:`~repro.distributed.process_comm.ProcessCommunicator`.

    Every endpoint accounts its own traffic in :attr:`stats` (what *this*
    rank sent) and its blocking time in :attr:`op_seconds`;
    :func:`aggregate_rank_stats` folds the per-endpoint counters onto the
    :class:`SimulatedCommunicator` conventions.
    """

    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This endpoint's rank index in ``[0, num_ranks)``."""

    @property
    @abc.abstractmethod
    def num_ranks(self) -> int:
        """Total number of ranks in the communicator."""

    @property
    @abc.abstractmethod
    def stats(self) -> CommunicationStats:
        """Traffic counters for operations initiated by this endpoint."""

    @property
    @abc.abstractmethod
    def op_seconds(self) -> dict:
        """Measured wall-clock seconds this endpoint spent blocked per
        operation kind (``"exchange"``, ``"allreduce"``, ``"barrier"``)."""

    @abc.abstractmethod
    def sendrecv_bytes(self, peer: int, payload: bytes) -> bytes:
        """Simultaneously send *payload* to *peer* and receive its payload.

        This is the symmetric block exchange of Section 3.3 (third bullet):
        both ranks of a pair call it with matching *peer* arguments and each
        returns the bytes the other sent.  Blocking; deadlock-free as long as
        both sides of the pair participate.

        Parameters
        ----------
        peer:
            The partner rank.
        payload:
            Bytes to ship (a compressed block, plus any framing the caller
            adds).

        Returns
        -------
        bytes
            The partner's payload.
        """

    @abc.abstractmethod
    def allreduce_sum(self, value: float) -> float:
        """Sum one scalar contribution per rank across all ranks.

        Every rank passes its local partial (e.g. its slice's Σ|a|²) and
        every rank returns the identical global sum, exactly like
        ``MPI_Allreduce(MPI_SUM)``.  The summation order is deterministic
        (ascending rank), so all endpoints return bit-identical floats.
        """

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""


def aggregate_rank_stats(
    per_rank: Iterable[Mapping[str, int] | CommunicationStats],
) -> CommunicationStats:
    """Fold per-endpoint :class:`RankCommunicator` counters into one view.

    A real communicator counts at each endpoint: a symmetric exchange of
    ``n`` bytes is *one* ``exchanges`` tick, *one* message and ``n`` bytes on
    **each** of the two endpoints, and every rank of a collective counts it
    once.  The shared :class:`SimulatedCommunicator` instead counts each
    pairwise exchange once (2 messages, ``2n`` bytes) and each collective
    once.  This helper maps the first convention onto the second — messages
    and bytes are summed (each endpoint counted what it physically sent),
    ``exchanges`` is halved (two endpoints per pairwise exchange), and
    collective counts take the maximum across ranks (every rank participated
    in the same collectives) — so reports and conformance tests can compare a
    real run against a simulated one field by field.

    Parameters
    ----------
    per_rank:
        One :class:`CommunicationStats` (or its ``as_dict()`` mapping) per
        rank.

    Returns
    -------
    CommunicationStats
        The aggregate, in :class:`SimulatedCommunicator` conventions.
    """

    total = CommunicationStats()
    endpoint_exchanges = 0
    for entry in per_rank:
        data = entry.as_dict() if isinstance(entry, CommunicationStats) else entry
        total.messages += int(data["messages"])
        total.bytes_sent += int(data["bytes_sent"])
        endpoint_exchanges += int(data["exchanges"])
        total.allreduces = max(total.allreduces, int(data["allreduces"]))
        total.barriers = max(total.barriers, int(data["barriers"]))
    total.exchanges = endpoint_exchanges // 2
    return total
