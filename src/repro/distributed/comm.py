"""Simulated MPI communicator.

The paper runs Intel-QS over MPI on up to 4,096 Theta nodes.  mpi4py is not
available in this environment, so the reproduction models the communication
layer explicitly instead: every rank's compressed blocks live in one process,
and :class:`SimulatedCommunicator` records the traffic (messages and bytes)
that a real MPI execution would have generated — the quantity behind the
"Communication Time" rows of Table 2.

The interface intentionally mirrors the small subset of MPI that the
simulator needs (point-to-point block exchange, allreduce for norms, a
barrier), so a real ``mpi4py``-backed communicator could be swapped in
without touching the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommunicationStats", "SimulatedCommunicator"]


@dataclass
class CommunicationStats:
    """Aggregate counters of simulated inter-rank traffic."""

    messages: int = 0
    bytes_sent: int = 0
    exchanges: int = 0
    allreduces: int = 0
    barriers: int = 0

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.exchanges = 0
        self.allreduces = 0
        self.barriers = 0

    def as_dict(self) -> dict:
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "exchanges": self.exchanges,
            "allreduces": self.allreduces,
            "barriers": self.barriers,
        }


class SimulatedCommunicator:
    """In-process stand-in for an MPI communicator over *num_ranks* ranks.

    Parameters
    ----------
    num_ranks:
        Number of simulated ranks.
    bandwidth_bytes_per_s:
        Optional modelled interconnect bandwidth.  When set, the communicator
        accumulates a *modelled* communication time
        (``bytes / bandwidth + messages * latency``) which the reports can
        show alongside measured wall-clock time.
    latency_s:
        Optional modelled per-message latency.
    """

    def __init__(
        self,
        num_ranks: int,
        bandwidth_bytes_per_s: float | None = None,
        latency_s: float = 0.0,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self._num_ranks = int(num_ranks)
        self._bandwidth = bandwidth_bytes_per_s
        self._latency = float(latency_s)
        self.stats = CommunicationStats()
        self._modelled_seconds = 0.0

    @property
    def num_ranks(self) -> int:
        return self._num_ranks

    @property
    def modelled_seconds(self) -> float:
        """Modelled communication time (0 when no bandwidth model is set)."""

        return self._modelled_seconds

    # -- traffic accounting -------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._num_ranks:
            raise ValueError(f"rank {rank} out of range (0..{self._num_ranks - 1})")

    def _account(self, num_bytes: int, messages: int) -> None:
        self.stats.messages += messages
        self.stats.bytes_sent += num_bytes
        if self._bandwidth:
            self._modelled_seconds += num_bytes / self._bandwidth
        self._modelled_seconds += messages * self._latency

    def send(self, source: int, dest: int, num_bytes: int) -> None:
        """Record a point-to-point message of *num_bytes* from source to dest."""

        self._check_rank(source)
        self._check_rank(dest)
        if source == dest:
            return
        self._account(num_bytes, 1)

    def exchange_blocks(self, rank_a: int, rank_b: int, num_bytes: int) -> None:
        """Record a symmetric block exchange between two ranks.

        This is the operation triggered by gates whose target qubit lies in
        the rank segment (Section 3.3, third bullet): each rank sends one
        compressed block to the other.
        """

        self._check_rank(rank_a)
        self._check_rank(rank_b)
        if rank_a == rank_b:
            return
        self.stats.exchanges += 1
        self._account(2 * num_bytes, 2)

    # -- collectives ------------------------------------------------------------------

    def allreduce_sum(self, per_rank_values: np.ndarray | list[float]) -> float:
        """Sum a per-rank scalar, recording the collective."""

        values = np.asarray(per_rank_values, dtype=np.float64)
        if values.size != self._num_ranks:
            raise ValueError(
                f"expected one value per rank ({self._num_ranks}), got {values.size}"
            )
        self.stats.allreduces += 1
        # A recursive-doubling allreduce moves log2(r) messages of 8 bytes per
        # rank; account for it so communication volume scales with rank count.
        rounds = max(1, self._num_ranks.bit_length() - 1)
        self._account(8 * self._num_ranks * rounds, self._num_ranks * rounds)
        return float(values.sum())

    def barrier(self) -> None:
        """Record a barrier (no data volume)."""

        self.stats.barriers += 1

    def reset(self) -> None:
        """Clear all counters."""

        self.stats.reset()
        self._modelled_seconds = 0.0
