"""The multi-rank distributed execution tier (real inter-rank block exchange).

This module reproduces the paper's distributed execution model (Sections 3.3
and 4) with *actual* data movement, not just accounting: the compressed state
is split over ``num_ranks`` persistent worker processes, each owning the
disjoint :class:`~repro.distributed.partition.Partition` slice an MPI rank
would own, and a gate whose target qubit falls in the rank index segment
moves real compressed blobs between rank processes through
:class:`~repro.distributed.process_comm.ProcessCommunicator` — the
shared-memory implementation of the MPI-shaped
:class:`~repro.distributed.comm.RankCommunicator` interface.

Selected with ``SimulatorConfig(comm="process", num_ranks=...)`` and
therefore reachable from ``repro.run(...)`` like every other execution mode.
Three classes cooperate:

* :class:`RankWorker` — the warm per-process state of one rank (its block
  slice, decompressor map, scratch buffers, block-cache shard and
  communicator endpoint), driven through the
  :class:`~repro.core.procpool.ProcessPool` message loop.
* :class:`RankedExecutor` — the parent-side driver.  Per gate it distributes
  the :class:`~repro.distributed.exchange.GatePlan`'s tasks to their owning
  ranks as **one batched message per rank** (amortising IPC over the whole
  plan, unlike the per-task dispatch of the block-task process tier), then
  folds the per-rank codec/cache/communication statistics into the
  simulator's :class:`~repro.core.report.SimulationReport`.
* :class:`RankedStateVector` / :class:`RankedBlockStore` — a
  :class:`~repro.core.compressed_state.CompressedStateVector`-compatible
  facade whose block table lives in the rank workers; parent-side state
  queries (sampling, statevector materialisation, checkpointing) fetch blobs
  on demand, while norms run as a *real* allreduce across the ranks.

Results are bit-identical to the single-process simulator: every rank runs
the exact same kernels and codecs on the exact same bytes, and the
cross-rank half-pair update
(:func:`repro.statevector.ops.apply_single_qubit_pairwise_half`) evaluates
element-for-element the same expression as the single-process pairwise
kernel.  Within one rank's batch, byte-identical non-exchange tasks are
computed once and fanned out (the same Section 3.4 redundancy the wave
dedupe of the thread/process tiers exploits); exchange tasks are never
deduplicated — as over MPI, the communication happens regardless, and only
the codec work is saved by the per-rank cache shard.
"""

from __future__ import annotations

import os
import time
from typing import Iterator

import numpy as np

from ..circuits import Gate
from ..compression.interface import Compressor
from ..core.blocks import CompressedBlock, ScratchPool
from ..core.compressed_state import CompressedStateVector, initial_rank_blocks
from ..core.cache import BlockCache
from ..core.procpool import (
    SLOTS_PER_WORKER,
    ProcessPool,
    _pack_frames,
    _read_frame,
    block_slot_bytes,
    raise_worker_error,
)
from ..core.report import SimulationReport
from ..errors import PoolProtocolError, ProcessCommTimeout
from ..statevector import ops
from .comm import CommunicationStats, SimulatedCommunicator, aggregate_rank_stats
from .exchange import GatePlan
from .partition import Partition
from .process_comm import ProcessCommunicator, RankCommArena

__all__ = ["RankWorker", "RankedExecutor", "RankedBlockStore", "RankedStateVector"]


def rank_channel_capacity(block_amplitudes: int) -> int:
    """Per-channel payload capacity for block exchange.

    One uncompressed block plus codec overhead, so a typical compressed blob
    crosses in a single chunk; pathological blobs simply stream through in
    several (see :mod:`repro.distributed.process_comm`).
    """

    return 16 * int(block_amplitudes) + 4096


def _frame_blob(name: str, blob: bytes) -> bytes:
    """Prefix *blob* with its compressor name so the peer can decode it."""

    encoded = name.encode("utf-8")
    return len(encoded).to_bytes(2, "little") + encoded + blob


def _unframe_blob(payload: bytes) -> tuple[str, bytes]:
    """Split a framed payload back into ``(compressor_name, blob)``."""

    name_len = int.from_bytes(payload[:2], "little")
    name = payload[2 : 2 + name_len].decode("utf-8")
    return name, payload[2 + name_len :]


class RankWorker:
    """Warm per-process state of one simulated-MPI rank.

    Owns the rank's slice of the compressed state (``block index →``
    :class:`~repro.core.blocks.CompressedBlock`), a decompressor map seeded
    from the parent's, two scratch buffers, a warm-compressor map keyed by
    ``describe()``, an optional :class:`~repro.core.cache.BlockCache` shard
    and the rank's :class:`~repro.distributed.process_comm.ProcessCommunicator`
    endpoint.  Constructed once per worker process by the pool; every
    control message is served by :meth:`handle`.

    Parameters
    ----------
    num_qubits, num_ranks, block_amplitudes:
        The partition geometry (every rank derives the same
        :class:`~repro.distributed.partition.Partition`).
    decompressors:
        Compressor-name → instance map for decoding stored blobs (grows as
        escalated compressors arrive with gate messages).
    cache_lines, cache_miss_disable_threshold, cache_enabled:
        Block-cache shard configuration (mirrors the parent's).
    arena_name, channel_capacity, comm_timeout:
        Attachment parameters of the shared communicator arena.
    pool_generation:
        Rebuild count of the owning pool; generation > 0 (a recovery
        rebuild) suppresses injected comm faults so replay converges.
    rank:
        This worker's rank index (appended per worker by the pool).
    """

    #: Dominant message kind, consulted by the fault harness when arming
    #: chaos injection.  "gate" keeps rank pools out of probabilistic chaos
    #: (rank death tears down the whole pool; dedicated deterministic tests
    #: cover that recovery path instead).
    POOL_KIND = "gate"

    def __init__(
        self,
        num_qubits: int,
        num_ranks: int,
        block_amplitudes: int,
        decompressors: dict[str, Compressor],
        cache_lines: int,
        cache_miss_disable_threshold: int | None,
        cache_enabled: bool,
        arena_name: str,
        channel_capacity: int,
        comm_timeout: float,
        pool_generation: int,
        rank: int,
    ) -> None:
        self._rank = int(rank)
        self._partition = Partition(
            num_qubits=num_qubits,
            num_ranks=num_ranks,
            block_amplitudes=block_amplitudes,
        )
        self._comm = ProcessCommunicator(
            arena_name,
            rank,
            num_ranks,
            channel_capacity,
            timeout=comm_timeout,
            pool_generation=pool_generation,
        )
        self._blocks: dict[int, CompressedBlock] = {}
        self._scratch = ScratchPool(block_amplitudes, buffers=2)
        self._decompressors = dict(decompressors)
        self._compressors: dict[str, Compressor] = {}
        self._masks: dict[tuple[int, ...], np.ndarray | None] = {}
        self._cache = (
            BlockCache(
                lines=cache_lines,
                miss_disable_threshold=cache_miss_disable_threshold,
            )
            if cache_enabled
            else None
        )
        self._in_arena = None
        self._out_arena = None

    def bind_arenas(self, in_arena, out_arena) -> None:
        """Receive the pool's payload slot arenas (called by the worker main)."""

        self._in_arena = in_arena
        self._out_arena = out_arena

    def close(self) -> None:
        """Detach the communicator endpoint (called at worker shutdown)."""

        self._comm.close()

    # -- warm lookups ----------------------------------------------------------------

    def _compressor_for(self, compressor: Compressor) -> Compressor:
        """Warm instance for *compressor*, registering its decoder by name."""

        warm = self._compressors.get(compressor.describe())
        if warm is None:
            warm = self._compressors[compressor.describe()] = compressor
            self._decompressors.setdefault(compressor.name, compressor)
        return warm

    def _mask_for(self, local_controls: tuple[int, ...]) -> np.ndarray | None:
        """Cached local-control mask over block offsets (``None`` = none)."""

        if local_controls not in self._masks:
            self._masks[local_controls] = ops.local_control_mask(
                self._partition.block_amplitudes, local_controls
            )
        return self._masks[local_controls]

    def _rank_bytes(self) -> int:
        """Compressed bytes currently held by this rank's slice."""

        return sum(entry.nbytes for entry in self._blocks.values())

    # -- message handling -------------------------------------------------------------

    def handle(self, message: tuple) -> tuple:
        """Serve one control message; returns the reply tuple.

        Message kinds: ``init`` (rebuild the slice to a basis state),
        ``gate`` (run this rank's batch of one gate plan's tasks), ``get`` /
        ``put`` (parent-side block access), ``norm`` (partial norm + real
        allreduce), ``barrier``, ``bounds``, ``comm-stats``, ``reset``,
        ``ping`` and the test hook ``die``.
        """

        kind = message[0]
        if kind == "gate":
            return self._run_gate(message)
        if kind == "init":
            _, compressor, basis_state, ticket, _frames = message
            self._init_state(compressor, basis_state)
            return ("init-ok", ticket, self._rank_bytes())
        if kind == "get":
            _, block, ticket, _frames = message
            entry = self._blocks[block]
            refs = _pack_frames(
                self._out_arena, ticket % SLOTS_PER_WORKER, [entry.blob]
            )
            return ("block", ticket, refs[0], entry.compressor, entry.bound)
        if kind == "put":
            _, block, name, bound, ticket, frames = message
            blob = _read_frame(self._in_arena, frames[0])
            self._blocks[block] = CompressedBlock(
                blob=blob, compressor=name, bound=bound
            )
            return ("put-ok", ticket, self._rank_bytes())
        if kind == "norm":
            ticket = message[-2]
            partial = 0.0
            for block in range(self._partition.blocks_per_rank):
                entry = self._blocks[block]
                values = self._decompressors[entry.compressor].decompress(
                    entry.blob
                )
                partial += float(
                    np.sum(np.abs(values.view(np.complex128)) ** 2)
                )
            total = self._comm.allreduce_sum(partial)
            return ("norm-ok", ticket, total, self._comm_snapshot())
        if kind == "barrier":
            ticket = message[-2]
            self._comm.barrier()
            return ("barrier-ok", ticket, self._comm_snapshot())
        if kind == "bounds":
            ticket = message[-2]
            return (
                "bounds-ok",
                ticket,
                sorted({entry.bound for entry in self._blocks.values()}),
            )
        if kind == "comm-stats":
            ticket = message[-2]
            return ("comm-stats-ok", ticket, self._comm_snapshot())
        if kind == "reset":
            ticket = message[-2]
            if self._cache is not None:
                self._cache.reset()
            self._compressors.clear()
            self._comm.reset_stats()
            return ("reset-ok", ticket)
        if kind == "ping":
            return ("pong", message[-2])
        if kind == "die":  # test hook for the rank-death path
            os._exit(19)
        raise ValueError(f"unknown rank-worker message {kind!r}")

    def _comm_snapshot(self) -> dict:
        """Cumulative communicator counters and seconds for this endpoint."""

        return {
            "stats": self._comm.stats.as_dict(),
            "seconds": self._comm.op_seconds,
        }

    # -- state initialisation ---------------------------------------------------------

    def _init_state(self, compressor: Compressor, basis_state: int) -> None:
        """(Re)build this rank's slice as its part of ``|basis_state>``.

        Delegates to the same
        :func:`~repro.core.compressed_state.initial_rank_blocks` the
        parent-side state uses, so the slices are byte-identical to a
        single-process initialisation by construction.
        """

        compressor = self._compressor_for(compressor)
        self._blocks, _ = initial_rank_blocks(
            self._partition, compressor, basis_state, self._rank
        )

    # -- gate execution ---------------------------------------------------------------

    def _run_gate(self, message: tuple) -> tuple:
        """Run this rank's batch of one gate plan's tasks.

        Task descriptors: ``("one", block)`` for a local-qubit update,
        ``("pair", block0, block1)`` for an intra-rank block pair, and
        ``("xchg", block, peer, row)`` for a cross-rank pair — the block is
        exchanged with *peer* through the communicator and only the *row*
        half this rank owns is rewritten.
        """

        (
            _,
            matrix,
            target,
            local_controls,
            compressor,
            op_key,
            tasks,
            ticket,
            _frames,
        ) = message
        compressor = self._compressor_for(compressor)
        mask = self._mask_for(local_controls)
        timings = {"decompression": 0.0, "computation": 0.0, "compression": 0.0}
        counters = {
            "tasks": 0,
            "decompress_calls": 0,
            "compress_calls": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        # Within one plan every block appears in exactly one task, so inputs
        # seen earlier in the batch cannot have been rewritten: reusing a
        # byte-identical task's outputs is safe across the whole batch.
        seen: dict[tuple[bytes, bytes | None], tuple[bytes, bytes | None]] = {}
        for task in tasks:
            counters["tasks"] += 1
            if task[0] == "one":
                self._task_one(
                    task[1], matrix, target, local_controls, compressor,
                    op_key, seen, timings, counters,
                )
            elif task[0] == "pair":
                self._task_pair(
                    task[1], task[2], matrix, mask, compressor, op_key,
                    seen, timings, counters,
                )
            else:
                self._task_exchange(
                    task[1], task[2], task[3], matrix, mask, compressor,
                    op_key, timings, counters,
                )
        stats = {
            **counters,
            "timings": timings,
            "comm": self._comm_snapshot(),
        }
        return ("gate-ok", ticket, self._rank_bytes(), stats)

    def _cache_lookup(
        self, op_key: tuple, blob1: bytes, blob2: bytes | None, counters: dict
    ) -> tuple[bytes, bytes | None] | None:
        """Shard lookup with the same self-disable accounting as every tier."""

        if self._cache is None or not self._cache.enabled:
            return None
        cached = self._cache.lookup(op_key, blob1, blob2)
        if cached is not None:
            counters["cache_hits"] += 1
        else:
            counters["cache_misses"] += 1
        return cached

    def _task_one(
        self, block, matrix, target, local_controls, compressor, op_key,
        seen, timings, counters,
    ) -> None:
        entry = self._blocks[block]
        key = (entry.blob, None)
        if key in seen:
            out1, _ = seen[key]
        else:
            cached = self._cache_lookup(op_key, entry.blob, None, counters)
            if cached is not None:
                out1 = cached[0]
            else:
                with self._scratch.lease(1) as (buffer,):
                    start = time.perf_counter()
                    buffer = self._scratch.fill(
                        buffer,
                        self._decompressors[entry.compressor].decompress(entry.blob),
                    )
                    timings["decompression"] += time.perf_counter() - start
                    start = time.perf_counter()
                    ops.apply_controlled_single_qubit(
                        buffer, matrix, target, local_controls
                    )
                    timings["computation"] += time.perf_counter() - start
                    start = time.perf_counter()
                    out1 = compressor.compress(buffer.view(np.float64))
                    timings["compression"] += time.perf_counter() - start
                counters["decompress_calls"] += 1
                counters["compress_calls"] += 1
                if self._cache is not None:
                    self._cache.insert(op_key, entry.blob, None, out1, None)
            seen[key] = (out1, None)
        self._blocks[block] = CompressedBlock(
            blob=out1, compressor=compressor.name, bound=compressor.bound
        )

    def _task_pair(
        self, block0, block1, matrix, mask, compressor, op_key,
        seen, timings, counters,
    ) -> None:
        entry0 = self._blocks[block0]
        entry1 = self._blocks[block1]
        key = (entry0.blob, entry1.blob)
        if key in seen:
            out1, out2 = seen[key]
        else:
            cached = self._cache_lookup(op_key, entry0.blob, entry1.blob, counters)
            if cached is not None:
                out1, out2 = cached
            else:
                with self._scratch.lease(2) as buffers:
                    start = time.perf_counter()
                    buffer0 = self._scratch.fill(
                        buffers[0],
                        self._decompressors[entry0.compressor].decompress(
                            entry0.blob
                        ),
                    )
                    buffer1 = self._scratch.fill(
                        buffers[1],
                        self._decompressors[entry1.compressor].decompress(
                            entry1.blob
                        ),
                    )
                    timings["decompression"] += time.perf_counter() - start
                    start = time.perf_counter()
                    ops.apply_single_qubit_pairwise_masked(
                        buffer0, buffer1, matrix, mask
                    )
                    timings["computation"] += time.perf_counter() - start
                    start = time.perf_counter()
                    out1 = compressor.compress(buffer0.view(np.float64))
                    out2 = compressor.compress(buffer1.view(np.float64))
                    timings["compression"] += time.perf_counter() - start
                counters["decompress_calls"] += 2
                counters["compress_calls"] += 2
                if self._cache is not None:
                    self._cache.insert(op_key, entry0.blob, entry1.blob, out1, out2)
            seen[key] = (out1, out2)
        self._blocks[block0] = CompressedBlock(
            blob=out1, compressor=compressor.name, bound=compressor.bound
        )
        self._blocks[block1] = CompressedBlock(
            blob=out2, compressor=compressor.name, bound=compressor.bound
        )

    def _task_exchange(
        self, block, peer, row, matrix, mask, compressor, op_key,
        timings, counters,
    ) -> None:
        """Cross-rank pair: ship my blob to *peer*, receive theirs, update
        the half I own.

        The exchange always happens (as it would over MPI); only the codec
        round trip can be skipped by a cache hit on ``(my blob, peer blob)``.
        The cache key carries *row* so the two halves of one pair never
        alias each other's entries.
        """

        entry = self._blocks[block]
        payload = self._comm.sendrecv_bytes(
            peer, _frame_blob(entry.compressor, entry.blob)
        )
        peer_name, peer_blob = _unframe_blob(payload)
        half_key = op_key + ("xchg", row)
        cached = self._cache_lookup(half_key, entry.blob, peer_blob, counters)
        if cached is not None:
            out1 = cached[0]
        else:
            with self._scratch.lease(2) as buffers:
                start = time.perf_counter()
                mine = self._scratch.fill(
                    buffers[0],
                    self._decompressors[entry.compressor].decompress(entry.blob),
                )
                theirs = self._scratch.fill(
                    buffers[1],
                    self._decompressors[peer_name].decompress(peer_blob),
                )
                timings["decompression"] += time.perf_counter() - start
                start = time.perf_counter()
                low, high = (mine, theirs) if row == 0 else (theirs, mine)
                ops.apply_single_qubit_pairwise_half(low, high, matrix, row, mask)
                timings["computation"] += time.perf_counter() - start
                start = time.perf_counter()
                out1 = compressor.compress(mine.view(np.float64))
                timings["compression"] += time.perf_counter() - start
            counters["decompress_calls"] += 2
            counters["compress_calls"] += 1
            if self._cache is not None:
                self._cache.insert(half_key, entry.blob, peer_blob, out1, None)
        self._blocks[block] = CompressedBlock(
            blob=out1, compressor=compressor.name, bound=compressor.bound
        )


class RankedExecutor:
    """Parent-side driver of the multi-rank execution tier.

    Duck-types the executor surface
    :class:`~repro.core.simulator.CompressedSimulator` relies on
    (:meth:`run_plan`, :meth:`close`, :meth:`rebind_report`,
    :meth:`reset_workers`, :attr:`num_workers`) but owns the state: one
    persistent :class:`~repro.core.procpool.ProcessPool` worker per rank,
    plus the shared :class:`~repro.distributed.process_comm.RankCommArena`
    the rank endpoints exchange blocks through.

    Per gate, the plan's tasks are grouped by owning rank and shipped as one
    batched message per rank; each reply carries the rank's codec timings,
    cache-shard outcomes, slice footprint and cumulative communicator
    counters, which are folded into the report — ``communication_seconds``
    grows by the *maximum* per-rank exchange-time delta of the gate (the
    critical path; the ranks communicate concurrently), while the codec
    buckets sum CPU-style across ranks exactly like the thread/process
    tiers.

    Parameters
    ----------
    partition:
        The rank/block decomposition (defines the pool width).
    decompressors:
        Name → instance map seeded into every rank worker.
    report:
        The simulator's report accumulator.
    comm_sink:
        The simulator's parent-side
        :class:`~repro.distributed.comm.SimulatedCommunicator`, kept as the
        aggregate stats sink reports read
        (:func:`~repro.distributed.comm.aggregate_rank_stats` conventions).
    cache:
        The parent :class:`~repro.core.cache.BlockCache` stats sink, or
        ``None`` when caching is off (shard outcomes are folded into it).
    cache_lines, cache_miss_disable_threshold:
        Per-rank cache shard configuration.
    start_method:
        ``multiprocessing`` start method for the rank workers.
    comm_timeout:
        Deadline for any single blocking communicator operation inside the
        workers.
    fault_policy:
        Resolved :class:`~repro.resilience.FaultPolicy` of the run, forwarded
        to the rank pool so targeted fault injections arm consistently.  Rank
        death itself is recovered one level up (the simulator tears the pool
        down and resumes from its last resilience checkpoint).
    pool_generation:
        Rebuild count of this executor: 0 for the initial build, incremented
        by the simulator on every recovery rebuild.  Forwarded to the rank
        workers so injected comm faults only arm in generation 0.
    """

    def __init__(
        self,
        *,
        partition: Partition,
        decompressors: dict[str, Compressor],
        report: SimulationReport,
        comm_sink: SimulatedCommunicator,
        cache: BlockCache | None,
        cache_lines: int = 64,
        cache_miss_disable_threshold: int | None = 256,
        start_method: str | None = None,
        comm_timeout: float = 120.0,
        fault_policy=None,
        pool_generation: int = 0,
    ) -> None:
        self._partition = partition
        self._report = report
        self._comm_sink = comm_sink
        self._cache = cache
        num_ranks = partition.num_ranks
        self._arena: RankCommArena | None = RankCommArena(
            num_ranks,
            channel_capacity=rank_channel_capacity(partition.block_amplitudes),
        )
        try:
            self._pool: ProcessPool | None = ProcessPool(
                num_ranks,
                RankWorker,
                init_args=(
                    partition.num_qubits,
                    num_ranks,
                    partition.block_amplitudes,
                    decompressors,
                    cache_lines,
                    cache_miss_disable_threshold,
                    cache is not None,
                    self._arena.name,
                    rank_channel_capacity(partition.block_amplitudes),
                    comm_timeout,
                    pool_generation,
                ),
                worker_args=[(rank,) for rank in range(num_ranks)],
                slot_bytes=block_slot_bytes(partition.block_amplitudes),
                start_method=start_method,
                fault_policy=fault_policy,
            )
        except BaseException:
            self._arena.close()
            self._arena = None
            raise
        self._rank_bytes = [0] * num_ranks
        self._rank_comm: list[dict] = [self._zero_comm() for _ in range(num_ranks)]
        self._publish_comm()

    @staticmethod
    def _zero_comm() -> dict:
        return {
            "stats": CommunicationStats().as_dict(),
            "seconds": {"exchange": 0.0, "allreduce": 0.0, "barrier": 0.0},
        }

    # -- executor surface -------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Pool width — one worker process per rank."""

        return self._partition.num_ranks

    @property
    def pool(self) -> ProcessPool | None:
        """The live rank-worker pool (``None`` after :meth:`close`)."""

        return self._pool

    def rebind_report(self, report: SimulationReport) -> None:
        """Point the executor at a fresh report accumulator (batched reset)."""

        self._report = report
        self._publish_comm()

    def reset_workers(self) -> None:
        """Clear every rank's cache shard, warm compressors and comm counters.

        Called between batched circuits so each circuit sees fresh-simulator
        behaviour while the rank processes (and their block slices, already
        re-initialised through :meth:`RankedStateVector.reset`) stay warm.
        """

        if self._pool is not None:
            self._pool.broadcast(("reset",))
        self._rank_comm = [self._zero_comm() for _ in self._rank_comm]
        self._publish_comm()

    def close(self, join_timeout: float = 3.0) -> None:
        """Shut down the rank workers and the communicator arena (idempotent).

        ``join_timeout`` bounds the graceful-exit wait per worker; recovery
        paths pass a short timeout because surviving ranks may be blocked in
        a communicator exchange with a dead peer and need the SIGTERM/SIGKILL
        escalation anyway.
        """

        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close(join_timeout=join_timeout)
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.close()

    def __enter__(self) -> "RankedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plan execution ---------------------------------------------------------------

    def run_plan(
        self,
        gate: Gate,
        plan: GatePlan,
        compressor: Compressor,
        op_key: tuple,
        local_control_mask: np.ndarray | None,
    ) -> None:
        """Distribute one (possibly fused) gate plan across the ranks.

        The *local_control_mask* parameter of the executor surface is
        unused — each rank derives (and caches) its own mask worker-side.
        """

        pool = self._require_pool()
        per_rank: dict[int, list[tuple]] = {}
        for task in plan.tasks:
            rank, block = task.first
            if task.second is None:
                per_rank.setdefault(rank, []).append(("one", block))
            elif not task.crosses_ranks:
                per_rank.setdefault(rank, []).append(
                    ("pair", block, task.second[1])
                )
            else:
                peer_rank = task.second[0]
                per_rank.setdefault(rank, []).append(
                    ("xchg", block, peer_rank, 0)
                )
                per_rank.setdefault(peer_rank, []).append(
                    ("xchg", block, rank, 1)
                )
        if not per_rank:
            return
        for rank, tasks in per_rank.items():
            pool.submit(
                rank,
                (
                    "gate",
                    gate.matrix,
                    gate.target,
                    tuple(plan.local_controls),
                    compressor,
                    op_key,
                    tuple(tasks),
                ),
            )
        comm_deltas = []
        for worker_id, reply in self._collect(pool, len(per_rank), "gate batch"):
            _, _ticket, rank_bytes, stats = reply
            self._rank_bytes[worker_id] = rank_bytes
            comm_deltas.append(self._fold_gate_stats(worker_id, stats))
        if comm_deltas:
            self._report.add_time("communication", max(comm_deltas))
        self._publish_comm()

    def _fold_gate_stats(self, rank: int, stats: dict) -> float:
        """Fold one rank's gate reply into the report; returns the rank's
        exchange-seconds delta for critical-path communication time."""

        self._report.add_count("tasks_executed", stats["tasks"])
        if stats["decompress_calls"]:
            self._report.add_count("decompress_calls", stats["decompress_calls"])
        if stats["compress_calls"]:
            self._report.add_count("compress_calls", stats["compress_calls"])
        for bucket, seconds in stats["timings"].items():
            self._report.add_time(bucket, seconds)
        if self._cache is not None:
            for _ in range(stats["cache_hits"]):
                self._cache.record_shard_lookup(True)
            for _ in range(stats["cache_misses"]):
                self._cache.record_shard_lookup(False)
        previous = self._rank_comm[rank]["seconds"]["exchange"]
        self._rank_comm[rank] = stats["comm"]
        return stats["comm"]["seconds"]["exchange"] - previous

    def _publish_comm(self) -> None:
        """Refresh the parent sink and report view of the per-rank counters."""

        aggregate = aggregate_rank_stats(
            entry["stats"] for entry in self._rank_comm
        )
        sink = self._comm_sink.stats
        sink.messages = aggregate.messages
        sink.bytes_sent = aggregate.bytes_sent
        sink.exchanges = aggregate.exchanges
        sink.allreduces = aggregate.allreduces
        sink.barriers = aggregate.barriers
        self._report.rank_comm = [
            {"rank": rank, **entry["stats"], **{
                f"{kind}_seconds": seconds
                for kind, seconds in entry["seconds"].items()
            }}
            for rank, entry in enumerate(self._rank_comm)
        ]

    # -- state access (used by RankedBlockStore / RankedStateVector) --------------------

    def _require_pool(self) -> ProcessPool:
        if self._pool is None:
            raise PoolProtocolError(
                "the ranked executor is closed; state now lives nowhere — "
                "rebuild the simulator"
            )
        return self._pool

    def _collect(
        self, pool: ProcessPool, expected: int, context: str
    ) -> list[tuple[int, tuple]]:
        """Collect exactly *expected* replies from a multi-rank dispatch.

        On a worker ``("err", ...)`` reply the *remaining* outstanding
        replies are still drained before the error is re-raised — otherwise
        a later request would receive a stale queued reply and silently
        mis-unpack it.  Two failures skip the drain and propagate
        immediately, because the pool must be torn down either way: a dead
        worker (:class:`WorkerCrashedError`), and a
        :class:`~repro.errors.ProcessCommTimeout` err reply — the rank's
        peers are likely still blocked in the matching exchange and would
        only answer after their *own* deadlines.
        """

        replies: list[tuple[int, tuple]] = []
        error: tuple[int, tuple] | None = None
        for _ in range(expected):
            worker_id, reply = pool.recv_any()
            if reply[0] == "err":
                if isinstance(reply[1], ProcessCommTimeout):
                    raise_worker_error(reply, f"{context} failed on rank {worker_id}")
                if error is None:
                    error = (worker_id, reply)
                continue
            replies.append((worker_id, reply))
        if error is not None:
            raise_worker_error(error[1], f"{context} failed on rank {error[0]}")
        return replies

    def _request(self, rank: int, message: tuple, payloads: list[bytes] = ()) -> tuple:
        """Synchronous single-worker RPC (no other requests outstanding)."""

        pool = self._require_pool()
        pool.submit(rank, message, payloads)
        worker_id, reply = pool.recv_any()
        if reply[0] == "err":
            raise_worker_error(reply, f"request {message[0]!r} failed on rank {rank}")
        if worker_id != rank:  # pragma: no cover - protocol invariant
            raise PoolProtocolError(
                "out-of-band reply from another rank",
                worker_id=worker_id,
                op=message[0],
            )
        return reply

    def fetch_block(self, rank: int, block: int) -> CompressedBlock:
        """Pull one compressed block out of its owning rank worker."""

        reply = self._request(rank, ("get", block))
        _, _ticket, ref, name, bound = reply
        blob = self._require_pool().read_frame(rank, ref)
        return CompressedBlock(blob=blob, compressor=name, bound=bound)

    def store_block(self, rank: int, block: int, entry: CompressedBlock) -> None:
        """Push one compressed block into its owning rank worker."""

        reply = self._request(
            rank,
            ("put", block, entry.compressor, entry.bound),
            [entry.blob],
        )
        self._rank_bytes[rank] = reply[2]

    def broadcast_init(self, compressor: Compressor, basis_state: int) -> None:
        """(Re)initialise every rank's slice to ``|basis_state>``."""

        pool = self._require_pool()
        for rank in range(self._partition.num_ranks):
            pool.submit(rank, ("init", compressor, basis_state))
        replies = self._collect(
            pool, self._partition.num_ranks, "state initialisation"
        )
        for worker_id, reply in replies:
            self._rank_bytes[worker_id] = reply[2]

    def norm_squared(self) -> float:
        """Blockwise Σ|a_i|² via a *real* allreduce across the rank workers."""

        pool = self._require_pool()
        for rank in range(self._partition.num_ranks):
            pool.submit(rank, ("norm",))
        total: float | None = None
        for worker_id, reply in self._collect(
            pool, self._partition.num_ranks, "norm"
        ):
            _, _ticket, value, comm = reply
            self._rank_comm[worker_id] = comm
            total = value if total is None else total
        self._publish_comm()
        return float(total)

    def rank_compressed_bytes(self, rank: int) -> int:
        """Cached compressed size of one rank's slice."""

        return self._rank_bytes[rank]

    def compressed_bytes(self) -> int:
        """Cached total compressed size across all ranks."""

        return sum(self._rank_bytes)

    def bounds_in_use(self) -> set[float]:
        """Union of error bounds present across every rank's blocks."""

        bounds: set[float] = set()
        for rank in range(self._partition.num_ranks):
            reply = self._request(rank, ("bounds",))
            bounds.update(reply[2])
        return bounds


class RankedBlockStore:
    """Parent-side view of the block table living inside the rank workers.

    Implements the :class:`~repro.core.blocks.BlockStore` surface
    (``get`` / ``put`` / iteration / memory accounting) by proxying to the
    owning rank worker, so every parent-side state query — sampling,
    statevector materialisation, checkpoint save/load — works unchanged on a
    ranked simulator.  ``get``/``put`` move one blob per call over the
    pool's shared-memory reply slots; the hot path (gate execution) never
    goes through here.
    """

    def __init__(self, partition: Partition, executor: RankedExecutor) -> None:
        self._partition = partition
        self._executor = executor

    @property
    def partition(self) -> Partition:
        """The rank/block decomposition this store is laid out for."""

        return self._partition

    def get(self, rank: int, block: int) -> CompressedBlock:
        """Fetch one compressed block from its owning rank worker."""

        return self._executor.fetch_block(rank, block)

    def put(self, rank: int, block: int, compressed: CompressedBlock) -> None:
        """Store one compressed block into its owning rank worker."""

        self._executor.store_block(rank, block, compressed)

    def __iter__(self) -> Iterator[tuple[tuple[int, int], CompressedBlock]]:
        for rank in range(self._partition.num_ranks):
            for block in range(self._partition.blocks_per_rank):
                yield (rank, block), self.get(rank, block)

    # -- memory accounting ---------------------------------------------------------

    def compressed_bytes(self) -> int:
        """Total compressed bytes across all rank slices (cached parent-side)."""

        return self._executor.compressed_bytes()

    def rank_compressed_bytes(self, rank: int) -> int:
        """Compressed bytes of one rank's slice (cached parent-side)."""

        return self._executor.rank_compressed_bytes(rank)

    def total_bytes_with_scratch(self) -> int:
        """Eq. 8: compressed blocks plus two decompressed blocks per rank."""

        scratch = 2 * self._partition.block_bytes * self._partition.num_ranks
        return self.compressed_bytes() + scratch

    def compression_ratio(self) -> float:
        """Current overall ratio: uncompressed state size / compressed size."""

        compressed = self.compressed_bytes()
        if compressed == 0:
            return float("inf")
        return self._partition.uncompressed_bytes() / compressed

    def bounds_in_use(self) -> set[float]:
        """Distinct error bounds present across the stored blocks."""

        return self._executor.bounds_in_use()


class RankedStateVector(CompressedStateVector):
    """A :class:`~repro.core.compressed_state.CompressedStateVector` whose
    blocks live in the rank worker processes.

    Construction broadcasts the initial basis state to the workers (each
    rank compresses its own slice — byte-identical to the parent-side path,
    the codecs being deterministic); block access and iteration proxy
    through :class:`RankedBlockStore`; :meth:`norm_squared` runs as a real
    allreduce across the ranks instead of a parent-side loop.

    Parameters
    ----------
    partition:
        The rank/block decomposition.
    executor:
        The :class:`RankedExecutor` owning the rank workers.
    comm:
        The parent-side stats sink
        (:class:`~repro.distributed.comm.SimulatedCommunicator`).
    compressor:
        Compressor for the initial blocks.
    initial_basis_state:
        Basis state to initialise to (default ``|0...0>``).
    """

    def __init__(
        self,
        partition: Partition,
        executor: RankedExecutor,
        comm: SimulatedCommunicator,
        compressor: Compressor,
        initial_basis_state: int = 0,
    ) -> None:
        # Deliberately does NOT call the base __init__: the base would build
        # a parent-side BlockStore and compress every block locally.
        self._partition = partition
        self._store = RankedBlockStore(partition, executor)
        self._comm = comm
        self._executor = executor
        if not 0 <= initial_basis_state < partition.total_amplitudes:
            raise ValueError(
                f"initial basis state {initial_basis_state} out of range"
            )
        executor.broadcast_init(compressor, initial_basis_state)

    def reset(self, compressor: Compressor, initial_basis_state: int = 0) -> None:
        """Re-initialise every rank's slice to ``|initial_basis_state>``."""

        if not 0 <= initial_basis_state < self._partition.total_amplitudes:
            raise ValueError(
                f"initial basis state {initial_basis_state} out of range"
            )
        self._executor.broadcast_init(compressor, initial_basis_state)

    def norm_squared(self, decompressors: dict[str, Compressor]) -> float:
        """Σ|a_i|² computed rank-locally and combined by a real allreduce.

        The *decompressors* argument of the base signature is unused — each
        rank decodes its own blocks with its own warm map.
        """

        return self._executor.norm_squared()
