"""Distributed decomposition substrate: partitioning, planning, communication.

Reproduces the paper's distribution model (Figure 3, Section 3.3): the state
is split over ranks and blocks (:mod:`~repro.distributed.partition`), gates
are planned into per-block tasks and inter-rank exchanges
(:mod:`~repro.distributed.exchange`), and the communication layer comes in
two interchangeable tiers — the traffic-accounting
:class:`SimulatedCommunicator` and the real shared-memory
:class:`ProcessCommunicator` behind the multi-rank execution tier of
:mod:`~repro.distributed.ranked` (``SimulatorConfig(comm="process")``).
"""

from .partition import Partition, QubitSegment
from .comm import (
    CommunicationStats,
    RankCommunicator,
    SimulatedCommunicator,
    aggregate_rank_stats,
)
from .exchange import BlockTask, GatePlan, plan_fused_group, plan_gate
from .process_comm import ProcessCommTimeout, ProcessCommunicator, RankCommArena

#: Names that live in :mod:`repro.distributed.ranked`, which imports from
#: :mod:`repro.core` and therefore cannot load eagerly here (``repro.core``
#: itself imports this package first).  PEP 562 resolves them on first use.
_RANKED_EXPORTS = ("RankedExecutor", "RankedStateVector", "RankWorker")


def __getattr__(name: str):
    if name in _RANKED_EXPORTS:
        from . import ranked

        return getattr(ranked, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Partition",
    "QubitSegment",
    "SimulatedCommunicator",
    "CommunicationStats",
    "RankCommunicator",
    "aggregate_rank_stats",
    "ProcessCommunicator",
    "ProcessCommTimeout",
    "RankCommArena",
    "RankedExecutor",
    "RankedStateVector",
    "RankWorker",
    "BlockTask",
    "GatePlan",
    "plan_gate",
    "plan_fused_group",
]
