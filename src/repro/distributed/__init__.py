"""Distributed decomposition substrate: partitioning, planning, communication."""

from .partition import Partition, QubitSegment
from .comm import CommunicationStats, SimulatedCommunicator
from .exchange import BlockTask, GatePlan, plan_fused_group, plan_gate

__all__ = [
    "Partition",
    "QubitSegment",
    "SimulatedCommunicator",
    "CommunicationStats",
    "BlockTask",
    "GatePlan",
    "plan_gate",
    "plan_fused_group",
]
