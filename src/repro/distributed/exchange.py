"""Gate-to-communication planning.

Given a :class:`~repro.distributed.partition.Partition` and a gate, this
module answers two questions the simulator (and the tests) need:

* which pairs of (rank, block) buffers have to be co-resident in scratch
  memory for the gate, and
* which of those pairs require an inter-rank exchange.

Keeping the planning separate from the execution makes the index arithmetic
(the trickiest part of Section 3.3) directly unit-testable against a dense
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..circuits import Gate
from ..circuits.fusion import fuse_run
from .partition import Partition, QubitSegment

__all__ = ["BlockTask", "GatePlan", "plan_gate", "plan_fused_group"]


@dataclass(frozen=True)
class BlockTask:
    """One unit of work: decompress the listed buffers, update, recompress.

    ``first`` is always present; ``second`` is ``None`` for local-qubit gates
    (the pair lives inside one block).  Each buffer is identified by
    ``(rank, block)``.
    """

    first: tuple[int, int]
    second: tuple[int, int] | None
    crosses_ranks: bool

    @property
    def buffers(self) -> tuple[tuple[int, int], ...]:
        """The (rank, block) buffers this task stages (one or two)."""

        if self.second is None:
            return (self.first,)
        return (self.first, self.second)


@dataclass(frozen=True)
class GatePlan:
    """Everything the executor needs to run one gate over the block store."""

    segment: QubitSegment
    tasks: tuple[BlockTask, ...]
    #: Controls that must be applied per-amplitude inside the scratch buffers.
    local_controls: tuple[int, ...]
    #: Number of inter-rank block exchanges the plan implies.
    exchange_count: int

    @property
    def touched_buffers(self) -> int:
        """Total buffer stagings the plan implies (cache misses pay these)."""

        return sum(len(task.buffers) for task in self.tasks)

    def independent_groups(self) -> tuple[tuple[BlockTask, ...], ...]:
        """Partition the tasks into waves of mutually independent tasks.

        Two tasks are independent when their (rank, block) buffer sets are
        disjoint — they read and write different compressed blocks, so the
        executor may run them concurrently.  Tasks of a single-gate plan are
        pairwise disjoint by construction (every block appears in exactly one
        pair), so such plans yield one wave.  Waves cut the task list at the
        first buffer conflict, never hoisting a later task past a conflicting
        earlier one, so executing waves in order preserves the plan's
        sequential semantics even for plans that revisit a buffer.
        """

        waves: list[list[BlockTask]] = []
        used: set[tuple[int, int]] = set()
        for task in self.tasks:
            buffers = set(task.buffers)
            if not waves or used & buffers:
                waves.append([])
                used = set()
            waves[-1].append(task)
            used |= buffers
        return tuple(tuple(wave) for wave in waves)


def _control_filters(
    partition: Partition, controls: tuple[int, ...]
) -> tuple[tuple[int, ...], list[int], list[int]]:
    """Split control qubits into (local, block-level bits, rank-level bits)."""

    local: list[int] = []
    block_bits: list[int] = []
    rank_bits: list[int] = []
    for control in controls:
        segment = partition.segment_of(control)
        if segment is QubitSegment.LOCAL:
            local.append(control)
        elif segment is QubitSegment.BLOCK:
            block_bits.append(partition.block_bit(control))
        else:
            rank_bits.append(partition.rank_bit(control))
    return tuple(local), block_bits, rank_bits


def _passes(index: int, required_bits: list[int]) -> bool:
    """True when *index* has every bit in *required_bits* set."""

    return all(index >> bit & 1 for bit in required_bits)


def plan_gate(partition: Partition, gate: Gate) -> GatePlan:
    """Build the :class:`GatePlan` for *gate* under *partition*.

    Control qubits in the block / rank segments prune whole blocks / ranks
    (Section 3.3's three control cases); local controls are left in the plan
    for the executor to apply as element masks.
    """

    if gate.max_qubit() >= partition.num_qubits:
        raise ValueError(
            f"gate {gate.name} touches qubit {gate.max_qubit()} outside the "
            f"{partition.num_qubits}-qubit partition"
        )
    target = gate.target
    segment = partition.segment_of(target)
    local_controls, block_control_bits, rank_control_bits = _control_filters(
        partition, gate.controls
    )

    tasks: list[BlockTask] = []
    exchange_count = 0

    if segment is QubitSegment.LOCAL:
        for rank in range(partition.num_ranks):
            if not _passes(rank, rank_control_bits):
                continue
            for block in range(partition.blocks_per_rank):
                if not _passes(block, block_control_bits):
                    continue
                tasks.append(BlockTask((rank, block), None, crosses_ranks=False))

    elif segment is QubitSegment.BLOCK:
        for rank in range(partition.num_ranks):
            if not _passes(rank, rank_control_bits):
                continue
            for block0, block1 in partition.block_pairs(target):
                # A block-level control must hold for the *pair*; the pair's
                # blocks only differ in the target bit, so testing block0 is
                # equivalent unless the control bit IS the target bit (which
                # cannot happen: a control never equals the target).
                if not _passes(block0, block_control_bits):
                    continue
                tasks.append(
                    BlockTask((rank, block0), (rank, block1), crosses_ranks=False)
                )

    else:  # RANK segment
        for rank0, rank1 in partition.rank_pairs(target):
            if not _passes(rank0, rank_control_bits):
                continue
            for block in range(partition.blocks_per_rank):
                if not _passes(block, block_control_bits):
                    continue
                tasks.append(
                    BlockTask((rank0, block), (rank1, block), crosses_ranks=True)
                )
                exchange_count += 1

    return GatePlan(
        segment=segment,
        tasks=tuple(tasks),
        local_controls=local_controls,
        exchange_count=exchange_count,
    )


def plan_fused_group(
    partition: Partition, gates: Sequence[Gate]
) -> tuple[Gate, GatePlan]:
    """Plan a run of fusible gates as a single unit of work.

    The run is fused into one gate (:func:`repro.circuits.fusion.fuse_run`),
    whose plan is then identical to any single gate's — every listed block
    pays ONE decompress/recompress round trip for the whole group instead of
    one per constituent gate.  Returns the fused gate together with its plan
    so the executor can apply the fused matrix.
    """

    fused = fuse_run(gates)
    return fused, plan_gate(partition, fused)
