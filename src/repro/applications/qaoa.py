"""QAOA MAXCUT benchmark (Table 2, third benchmark family).

The paper runs the Quantum Approximate Optimization Algorithm solving MAXCUT
on random 4-regular graphs [27].  A depth-``p`` QAOA circuit alternates

* the *cost* unitary ``exp(-i γ C)`` — for MAXCUT a ZZ interaction per graph
  edge, implemented as CNOT / RZ / CNOT, and
* the *mixer* unitary ``exp(-i β B)`` — an RX rotation on every qubit,

after an initial layer of Hadamards.  The circuit generator uses networkx to
draw the random regular graph, and a small classical helper evaluates cut
sizes so examples and tests can check that the sampled bitstrings are biased
toward large cuts.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx
import numpy as np

from ..backends.observables import PauliObservable
from ..circuits import QuantumCircuit

__all__ = [
    "random_regular_graph",
    "qaoa_maxcut_circuit",
    "cut_size",
    "maxcut_value",
    "maxcut_observable",
    "expected_cut_from_counts",
    "expected_cut_from_zz",
]


def random_regular_graph(num_qubits: int, degree: int = 4, seed: int | None = None) -> nx.Graph:
    """Random *degree*-regular graph on *num_qubits* nodes (paper: degree 4)."""

    if num_qubits <= degree:
        raise ValueError("need more nodes than the degree")
    if (num_qubits * degree) % 2:
        raise ValueError("num_qubits * degree must be even for a regular graph")
    return nx.random_regular_graph(degree, num_qubits, seed=seed)


def qaoa_maxcut_circuit(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> QuantumCircuit:
    """Depth-``p`` QAOA circuit for MAXCUT on *graph*.

    ``len(gammas) == len(betas) == p``.  Qubit ``i`` corresponds to node ``i``
    of the graph (nodes must be integers ``0..n-1``, as produced by
    :func:`random_regular_graph`).
    """

    gammas = [float(g) for g in gammas]
    betas = [float(b) for b in betas]
    if len(gammas) != len(betas):
        raise ValueError("gammas and betas must have the same length")
    if len(gammas) == 0:
        raise ValueError("need at least one QAOA layer")
    num_qubits = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(num_qubits)):
        raise ValueError("graph nodes must be the integers 0..n-1")

    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}_p{len(gammas)}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for gamma, beta in zip(gammas, betas):
        # Cost layer: exp(-i gamma Z_u Z_v) on every edge.
        for u, v in graph.edges:
            circuit.cx(u, v)
            circuit.rz(2.0 * gamma, v)
            circuit.cx(u, v)
        # Mixer layer: exp(-i beta X) on every qubit.
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta, qubit)
    return circuit


def cut_size(graph: nx.Graph, bitstring: int) -> int:
    """Number of edges cut by the partition encoded in *bitstring*."""

    cut = 0
    for u, v in graph.edges:
        if ((bitstring >> u) & 1) != ((bitstring >> v) & 1):
            cut += 1
    return cut


def maxcut_value(graph: nx.Graph) -> int:
    """Exact MAXCUT value by exhaustive search (small graphs only)."""

    n = graph.number_of_nodes()
    if n > 20:
        raise ValueError("exhaustive MAXCUT is limited to 20 nodes")
    best = 0
    for assignment in range(1 << (n - 1)):  # fix node n-1 to side 0 (symmetry)
        best = max(best, cut_size(graph, assignment))
    return best


def maxcut_observable(graph: nx.Graph) -> PauliObservable:
    """``Σ_{(u,v) ∈ E} Z_u Z_v`` — the MAXCUT cost observable.

    The expected cut follows as ``(|E| - <obs>) / 2``
    (:func:`expected_cut_from_zz`); evaluating it through
    :meth:`PauliObservable.expectation` on the compressed backend gives the
    exact QAOA energy directly from the compressed representation, where
    sampling (:func:`expected_cut_from_counts`) only estimates it.
    """

    num_qubits = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(num_qubits)):
        raise ValueError("graph nodes must be the integers 0..n-1")
    if graph.number_of_edges() == 0:
        raise ValueError("graph has no edges, the cost observable is empty")
    return PauliObservable.from_terms(
        [
            (1.0, "".join("Z" if q in (u, v) else "I" for q in range(num_qubits)))
            for u, v in graph.edges
        ],
        label=f"maxcut_zz[{num_qubits}q,{graph.number_of_edges()}e]",
    )


def expected_cut_from_zz(graph: nx.Graph, zz_expectation: float) -> float:
    """Expected cut from ``<Σ Z_u Z_v>``: each edge cuts with ``(1 - <ZuZv>)/2``."""

    return (graph.number_of_edges() - zz_expectation) / 2.0


def expected_cut_from_counts(graph: nx.Graph, counts: dict[int, int]) -> float:
    """Average cut size of sampled bitstrings (QAOA's objective estimate)."""

    total = sum(counts.values())
    if total == 0:
        return 0.0
    return sum(cut_size(graph, bits) * count for bits, count in counts.items()) / total
