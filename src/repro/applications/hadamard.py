"""Hadamard scaling workload (Figures 15 and 16).

The paper's scalability studies use "a basic program that applies a Hadamard
gate on each qubit": it touches every qubit exactly once, including the
high-order qubits that force inter-rank block exchanges, making it a clean
probe of how execution time scales with qubit count and rank count.
"""

from __future__ import annotations

from ..circuits import QuantumCircuit, uniform_superposition

__all__ = ["hadamard_scaling_circuit", "hadamard_layers_circuit"]


def hadamard_scaling_circuit(num_qubits: int) -> QuantumCircuit:
    """One Hadamard per qubit (the paper's scaling workload)."""

    return uniform_superposition(num_qubits)


def hadamard_layers_circuit(num_qubits: int, layers: int) -> QuantumCircuit:
    """*layers* repetitions of the Hadamard-on-every-qubit sweep.

    Useful when a single sweep is too short to time reliably at small qubit
    counts; applying the sweep an even number of times returns the state to
    ``|0...0>``, which the tests exploit as an invariant.
    """

    if layers < 1:
        raise ValueError("layers must be >= 1")
    circuit = QuantumCircuit(num_qubits, name=f"hadamard_{num_qubits}_x{layers}")
    for _ in range(layers):
        for qubit in range(num_qubits):
            circuit.h(qubit)
    return circuit
