"""Google-style random circuit sampling benchmark (Boixo et al. rules).

The paper uses the quantum-supremacy random circuits both as a compression
stress test (they entangle quickly, so the state becomes incompressible) and
as a Table 2 benchmark at depth 11 on 2-D qubit grids (5x9, 6x7, 6x6, 7x5).

The construction follows the published rules the paper cites [9]:

* layer 0 applies a Hadamard to every qubit;
* each subsequent layer applies CZ gates along one of eight alternating
  "brick" patterns over the 2-D grid, and
* every qubit not touched by a CZ in this layer receives a single-qubit gate
  drawn from {sqrt(X), sqrt(Y), T}, subject to the published constraints
  (a T after the first non-H single-qubit gate slot, no repeating the same
  gate consecutively, a gate only follows a CZ on that qubit).
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit

__all__ = ["GridSpec", "random_supremacy_circuit", "cz_pattern"]


class GridSpec:
    """A rectangular qubit grid of ``rows x cols`` qubits."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        self.rows = int(rows)
        self.cols = int(cols)

    @property
    def num_qubits(self) -> int:
        """Total qubit count of the grid (rows times cols)."""

        return self.rows * self.cols

    def index(self, row: int, col: int) -> int:
        """Flat qubit index of grid site (*row*, *col*), row-major."""

        return row * self.cols + col

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridSpec({self.rows}x{self.cols})"


def cz_pattern(grid: GridSpec, layer: int) -> list[tuple[int, int]]:
    """CZ pairs activated at *layer*, cycling through the 8 brick patterns.

    Patterns 0-3 couple horizontal neighbours (even/odd column parity,
    staggered by row), patterns 4-7 couple vertical neighbours analogously —
    the supremacy-circuit layout the paper's reference describes.
    """

    pattern = layer % 8
    pairs: list[tuple[int, int]] = []
    if pattern < 4:
        col_parity = pattern % 2
        row_stagger = pattern // 2
        for row in range(grid.rows):
            offset = (col_parity + (row + row_stagger) % 2) % 2
            for col in range(offset, grid.cols - 1, 2):
                pairs.append((grid.index(row, col), grid.index(row, col + 1)))
    else:
        local = pattern - 4
        row_parity = local % 2
        col_stagger = local // 2
        for col in range(grid.cols):
            offset = (row_parity + (col + col_stagger) % 2) % 2
            for row in range(offset, grid.rows - 1, 2):
                pairs.append((grid.index(row, col), grid.index(row + 1, col)))
    return pairs


def random_supremacy_circuit(
    rows: int,
    cols: int,
    depth: int,
    seed: int | None = None,
) -> QuantumCircuit:
    """Random circuit on a ``rows x cols`` grid with *depth* clock cycles.

    ``depth`` counts the CZ layers after the initial Hadamard layer (the
    paper runs depth 11 for Table 2).
    """

    if depth < 1:
        raise ValueError("depth must be >= 1")
    grid = GridSpec(rows, cols)
    rng = np.random.default_rng(seed)
    n = grid.num_qubits
    circuit = QuantumCircuit(n, name=f"sup_{rows}x{cols}_d{depth}")

    for qubit in range(n):
        circuit.h(qubit)

    # Per-qubit bookkeeping for the single-qubit gate rules.
    last_single = ["h"] * n
    had_t = [False] * n
    touched_by_cz = [False] * n

    single_choices = ("sx", "sy", "t")

    def apply_single(qubit: int) -> None:
        # A single-qubit gate is only placed on qubits that were part of a CZ
        # in the previous layer (the published rule); the first non-H gate is
        # a T, afterwards sqrt(X)/sqrt(Y) alternate randomly without repeats.
        if not touched_by_cz[qubit]:
            return
        if not had_t[qubit]:
            gate = "t"
        else:
            options = [g for g in ("sx", "sy") if g != last_single[qubit]]
            gate = options[int(rng.integers(len(options)))] if options else "sx"
        if gate == "t":
            circuit.t(qubit)
            had_t[qubit] = True
        elif gate == "sx":
            circuit.sx(qubit)
        else:  # sqrt(Y) = rotation by pi/2 about Y, up to global phase
            circuit.ry(np.pi / 2.0, qubit)
        last_single[qubit] = gate
        touched_by_cz[qubit] = False

    for layer in range(depth):
        pairs = cz_pattern(grid, layer)
        busy = set()
        for a, b in pairs:
            circuit.cz(a, b)
            busy.add(a)
            busy.add(b)
        for qubit in range(n):
            if qubit not in busy:
                apply_single(qubit)
        for qubit in busy:
            touched_by_cz[qubit] = True

    return circuit
