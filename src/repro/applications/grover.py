"""Grover's search benchmark (Table 2, first benchmark family).

The paper's headline result is the 61-qubit Grover simulation: the state
during Grover's algorithm has only two distinct amplitude values (the marked
states and everything else), so the compressed blocks are tiny and massively
redundant, which is also what makes the compressed block cache effective.

The oracle follows the paper's description — "the oracle consists of X and
Toffoli gates": the marked bitstrings are phase-flipped by an X-conjugated
multi-controlled Z (multi-controlled gates are expressed directly as
controlled single-qubit gates, which both simulators execute natively).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..circuits import QuantumCircuit, grover_diffusion, phase_oracle

__all__ = [
    "grover_circuit",
    "grover_square_root_circuit",
    "optimal_iterations",
    "marked_state_for_square_root",
]


def optimal_iterations(num_qubits: int, num_marked: int = 1) -> int:
    """Number of Grover iterations maximising the success probability."""

    if num_marked < 1:
        raise ValueError("need at least one marked state")
    total = 1 << num_qubits
    if num_marked >= total:
        raise ValueError("cannot mark every basis state")
    angle = math.asin(math.sqrt(num_marked / total))
    return max(1, int(round(math.pi / (4.0 * angle) - 0.5)))


def grover_circuit(
    num_qubits: int,
    marked: Sequence[int] | int,
    iterations: int | None = None,
) -> QuantumCircuit:
    """Full Grover's search circuit for the given marked basis states.

    Parameters
    ----------
    num_qubits:
        Size of the search register.
    marked:
        Marked basis state(s) the oracle phase-flips.
    iterations:
        Number of Grover iterations; defaults to the optimal count.
    """

    if isinstance(marked, int):
        marked = (marked,)
    marked = tuple(int(m) for m in marked)
    if not marked:
        raise ValueError("need at least one marked state")
    for value in marked:
        if not 0 <= value < (1 << num_qubits):
            raise ValueError(f"marked state {value} out of range")
    if iterations is None:
        iterations = optimal_iterations(num_qubits, len(marked))
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    circuit = QuantumCircuit(num_qubits, name=f"grover_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    oracle = phase_oracle(num_qubits, marked)
    diffusion = grover_diffusion(num_qubits)
    for _ in range(iterations):
        circuit.compose(oracle)
        circuit.compose(diffusion)
    return circuit


def marked_state_for_square_root(num_qubits: int, square: int) -> int:
    """The basis state encoding ``sqrt(square)`` for the square-root oracle.

    The paper's Grover benchmark "finds the square root number": the oracle
    marks the register value ``x`` with ``x * x == square (mod 2^n)``.  This
    helper returns the smallest such ``x`` so benchmarks can verify that the
    amplified state is the right one.
    """

    modulus = 1 << num_qubits
    square %= modulus
    for candidate in range(modulus):
        if (candidate * candidate) % modulus == square:
            return candidate
    raise ValueError(f"{square} has no square root modulo {modulus}")


def grover_square_root_circuit(
    num_qubits: int, square: int, iterations: int | None = None
) -> QuantumCircuit:
    """Grover circuit whose oracle marks the modular square root of *square*.

    The oracle is realised as a phase flip on every ``x`` with
    ``x^2 ≡ square (mod 2^n)``; for odd squares there are at most four such
    roots, so the amplitude structure (few marked states, everything else
    uniform) matches the paper's workload.
    """

    modulus = 1 << num_qubits
    square %= modulus
    roots = tuple(x for x in range(modulus) if (x * x) % modulus == square)
    if not roots:
        raise ValueError(f"{square} is not a quadratic residue modulo {modulus}")
    circuit = grover_circuit(num_qubits, roots, iterations)
    circuit.name = f"grover_sqrt_{num_qubits}"
    return circuit
