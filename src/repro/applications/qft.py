"""QFT benchmark (Table 2, fourth benchmark family).

The quantum Fourier transform is the paper's deep-circuit workload (3,258
gates at 36 qubits): gate count grows quadratically with the register size,
so it stresses the accumulation of lossy error over many gates.  Following
the paper, the input is a random computational basis state prepared with X
gates ("We randomly apply X gate to the initial state as the input for the
QFT").
"""

from __future__ import annotations

import numpy as np

from ..circuits import QuantumCircuit, prepare_basis_state, qft_circuit

__all__ = ["qft_benchmark_circuit", "qft_reference_state"]


def qft_benchmark_circuit(num_qubits: int, seed: int | None = None) -> QuantumCircuit:
    """Random-basis-state preparation followed by the full QFT."""

    rng = np.random.default_rng(seed)
    basis_state = int(rng.integers(1 << num_qubits))
    circuit = QuantumCircuit(num_qubits, name=f"qft_bench_{num_qubits}")
    circuit.compose(prepare_basis_state(num_qubits, basis_state))
    circuit.compose(qft_circuit(num_qubits))
    return circuit


def qft_reference_state(num_qubits: int, basis_state: int) -> np.ndarray:
    """Analytic QFT output for a basis-state input.

    ``QFT|x> = 2^{-n/2} Σ_k exp(2πi x k / 2^n) |k>`` — used by the tests to
    validate both simulators without a second simulation.
    """

    size = 1 << num_qubits
    if not 0 <= basis_state < size:
        raise ValueError("basis_state out of range")
    k = np.arange(size)
    phases = np.exp(2j * np.pi * basis_state * k / size)
    return phases / np.sqrt(size)
