"""Benchmark circuit generators: the paper's four workloads plus the scaling probe."""

from .grover import (
    grover_circuit,
    grover_square_root_circuit,
    marked_state_for_square_root,
    optimal_iterations,
)
from .hadamard import hadamard_layers_circuit, hadamard_scaling_circuit
from .qaoa import (
    cut_size,
    expected_cut_from_counts,
    expected_cut_from_zz,
    maxcut_observable,
    maxcut_value,
    qaoa_maxcut_circuit,
    random_regular_graph,
)
from .qft import qft_benchmark_circuit, qft_reference_state
from .random_circuit import GridSpec, cz_pattern, random_supremacy_circuit

__all__ = [
    "grover_circuit",
    "grover_square_root_circuit",
    "marked_state_for_square_root",
    "optimal_iterations",
    "random_supremacy_circuit",
    "GridSpec",
    "cz_pattern",
    "qaoa_maxcut_circuit",
    "random_regular_graph",
    "cut_size",
    "maxcut_value",
    "maxcut_observable",
    "expected_cut_from_counts",
    "expected_cut_from_zz",
    "qft_benchmark_circuit",
    "qft_reference_state",
    "hadamard_scaling_circuit",
    "hadamard_layers_circuit",
]
