#!/usr/bin/env python
"""Static documentation builder for this repository.

Neither mkdocs nor sphinx is installable in the reproduction container, so
the docs pipeline is self-contained: this script renders the Markdown
sources under ``docs/`` plus an API reference generated from the package's
docstrings into a static HTML site, using only the standard library (plus
pygments for code highlighting when available).  The layout — ``mkdocs.yml``
nav manifest at the repo root, plain Markdown pages under ``docs/`` — is
deliberately mkdocs-shaped so the sources migrate mechanically if a real
mkdocs ever becomes available.

Usage::

    python docs/build_docs.py [--strict] [--out DIR]

``--strict`` is the CI mode: every warning is an error.  Checks performed in
every mode (warnings; fatal under ``--strict``):

* Markdown structure: unclosed code fences, nav entries without a source
  file, source files missing from the nav.
* Link check: every internal ``href`` must resolve to an emitted page (and,
  for ``page.html#fragment`` links, to a heading anchor on that page).
* Docstring coverage: every public module / class / function / method /
  property of the **enforced** packages (``repro.backends``,
  ``repro.core.procpool``, ``repro.distributed``) must carry a docstring —
  the documented API surface cannot silently rot.

Exit status 0 on success, 1 when strict mode found problems.
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import re
import sys
from pathlib import Path

try:
    from pygments import highlight
    from pygments.formatters import HtmlFormatter
    from pygments.lexers import TextLexer, get_lexer_by_name
except ImportError:  # pragma: no cover - pygments is optional
    highlight = None

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent
DEFAULT_OUT = DOCS_DIR / "_site"

#: Packages whose public surface must be fully docstring-covered (the API
#: sweep of PR 5); a missing docstring here fails the strict build.
ENFORCED_PACKAGES = (
    "repro.backends",
    "repro.compression.engines",
    "repro.core.procpool",
    "repro.distributed",
    "repro.errors",
    "repro.resilience",
    "repro.serve",
    "repro.tools.lint",
)

#: One API page per entry: (slug, page title, module names).
API_SECTIONS = [
    ("repro", "repro (top level)", ["repro"]),
    ("circuits", "repro.circuits", [
        "repro.circuits", "repro.circuits.circuit", "repro.circuits.gates",
        "repro.circuits.fusion", "repro.circuits.library",
    ]),
    ("compression", "repro.compression", [
        "repro.compression", "repro.compression.interface",
        "repro.compression.lossless", "repro.compression.sz",
        "repro.compression.sz_complex", "repro.compression.xor_bitplane",
        "repro.compression.bitplane", "repro.compression.zfp_like",
        "repro.compression.fpzip_like", "repro.compression.reshuffle",
        "repro.compression.huffman", "repro.compression.bitpack",
        "repro.compression.quantization", "repro.compression.metrics",
        "repro.compression.engines", "repro.compression.engines.numpy_engine",
        "repro.compression.engines.numba_engine",
    ]),
    ("distributed", "repro.distributed", [
        "repro.distributed", "repro.distributed.partition",
        "repro.distributed.comm", "repro.distributed.process_comm",
        "repro.distributed.exchange", "repro.distributed.ranked",
    ]),
    ("core", "repro.core", [
        "repro.core", "repro.core.simulator", "repro.core.config",
        "repro.core.compressed_state", "repro.core.blocks",
        "repro.core.executor", "repro.core.procpool", "repro.core.cache",
        "repro.core.adaptive", "repro.core.fidelity", "repro.core.report",
        "repro.core.checkpoint",
    ]),
    ("resilience", "repro.resilience", [
        "repro.errors", "repro.resilience", "repro.resilience.faults",
    ]),
    ("backends", "repro.backends", [
        "repro.backends", "repro.backends.base", "repro.backends.runner",
        "repro.backends.result", "repro.backends.observables",
        "repro.backends.compressed", "repro.backends.dense",
        "repro.backends.parallel",
    ]),
    ("serve", "repro.serve", [
        "repro.serve", "repro.serve.service", "repro.serve.queue",
        "repro.serve.cache", "repro.serve.events",
    ]),
    ("statevector", "repro.statevector", [
        "repro.statevector", "repro.statevector.dense",
        "repro.statevector.ops", "repro.statevector.measurement",
    ]),
    ("applications", "repro.applications", [
        "repro.applications", "repro.applications.grover",
        "repro.applications.hadamard", "repro.applications.qaoa",
        "repro.applications.qft", "repro.applications.random_circuit",
    ]),
    ("analysis", "repro.analysis", [
        "repro.analysis", "repro.analysis.datasets", "repro.analysis.memory",
        "repro.analysis.report", "repro.analysis.spikiness",
    ]),
    ("tools", "repro.tools.lint", [
        "repro.tools", "repro.tools.lint", "repro.tools.lint.engine",
        "repro.tools.lint.config", "repro.tools.lint.cli",
        "repro.tools.lint.rules",
    ]),
]

STYLE = """
:root { --accent: #1f6f8b; --border: #d7dde3; --code-bg: #f6f8fa; }
* { box-sizing: border-box; }
body { margin: 0; font: 16px/1.6 -apple-system, "Segoe UI", Roboto, sans-serif;
       color: #1c2730; display: flex; min-height: 100vh; }
nav.sidebar { width: 17rem; flex-shrink: 0; border-right: 1px solid var(--border);
              padding: 1.2rem 1rem; background: #fafbfc; }
nav.sidebar h1 { font-size: 1rem; margin: 0 0 .8rem; }
nav.sidebar a { display: block; color: #33424f; text-decoration: none;
                padding: .15rem .4rem; border-radius: 4px; }
nav.sidebar a.current { background: var(--accent); color: #fff; }
nav.sidebar a:hover:not(.current) { background: #edf1f4; }
nav.sidebar .sub { margin-left: .9rem; font-size: .93em; }
main { padding: 1.5rem 2.5rem 4rem; max-width: 54rem; min-width: 0; }
h1, h2, h3, h4 { line-height: 1.25; }
h2 { border-bottom: 1px solid var(--border); padding-bottom: .25rem; }
a { color: var(--accent); }
code { background: var(--code-bg); padding: .08em .3em; border-radius: 3px;
       font: .92em/1.5 ui-monospace, "SFMono-Regular", Menlo, monospace; }
pre { background: var(--code-bg); padding: .8rem 1rem; border-radius: 6px;
      overflow-x: auto; border: 1px solid var(--border); }
pre code { background: none; padding: 0; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid var(--border); padding: .35rem .7rem; text-align: left; }
th { background: #f1f4f7; }
blockquote { border-left: 3px solid var(--accent); margin: 1rem 0;
             padding: .1rem 1rem; color: #4a5a66; background: #f8fafb; }
.api-symbol { border: 1px solid var(--border); border-radius: 6px;
              margin: 1.2rem 0; padding: .2rem 1rem .6rem; }
.api-symbol h4 { margin: .6rem 0 .2rem; font-family: ui-monospace, monospace; }
.api-kind { color: #697886; font-size: .82em; text-transform: uppercase;
            letter-spacing: .06em; }
.docstring { white-space: pre-wrap; font-size: .95em; color: #2b3944;
             margin: .4rem 0 0; }
.missing { color: #b3261e; font-weight: 600; }
"""

_INLINE_CODE = re.compile(r"`([^`]+)`")
_BOLD = re.compile(r"\*\*([^*]+)\*\*")
_ITALIC = re.compile(r"(?<!\*)\*([^*]+)\*(?!\*)")
_LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")


class DocsError(Exception):
    """A fatal documentation build problem."""


class Reporter:
    """Collects warnings; under ``--strict`` any warning fails the build."""

    def __init__(self, strict: bool) -> None:
        self.strict = strict
        self.warnings: list[str] = []

    def warn(self, message: str) -> None:
        self.warnings.append(message)
        print(f"WARNING: {message}", file=sys.stderr)

    @property
    def failed(self) -> bool:
        return self.strict and bool(self.warnings)


def slugify(text: str) -> str:
    """GitHub-style heading slug: lowercase, hyphens, alphanumerics only."""

    text = re.sub(r"`|\*", "", text.strip().lower())
    text = re.sub(r"[^a-z0-9 _-]", "", text)
    return re.sub(r"[\s_]+", "-", text).strip("-")


def render_inline(text: str) -> str:
    """Inline Markdown (code, bold, italic, links) on an escaped line."""

    placeholders: list[str] = []

    def stash(fragment: str) -> str:
        placeholders.append(fragment)
        return f"\x00{len(placeholders) - 1}\x00"

    # Code spans first: their contents are literal.
    text = _INLINE_CODE.sub(
        lambda m: stash(f"<code>{html.escape(m.group(1))}</code>"), text
    )
    text = _LINK.sub(
        lambda m: stash(
            f'<a href="{html.escape(m.group(2), quote=True)}">'
            f"{html.escape(m.group(1))}</a>"
        ),
        text,
    )
    text = html.escape(text, quote=False)
    text = _BOLD.sub(r"<strong>\1</strong>", text)
    text = _ITALIC.sub(r"<em>\1</em>", text)
    return re.sub(
        r"\x00(\d+)\x00", lambda m: placeholders[int(m.group(1))], text
    )


def highlight_block(code: str, language: str) -> str:
    """Fenced code block to HTML (pygments when available, escaped <pre> else)."""

    if highlight is not None:
        try:
            lexer = get_lexer_by_name(language) if language else TextLexer()
        except Exception:
            lexer = TextLexer()
        return highlight(code, lexer, HtmlFormatter(nowrap=False))
    return f"<pre><code>{html.escape(code)}</code></pre>"


def render_markdown(source: str, page: str, reporter: Reporter) -> tuple[str, set[str], str | None]:
    """Render a Markdown page; returns ``(html, anchors, title)``."""

    lines = source.splitlines()
    out: list[str] = []
    anchors: set[str] = set()
    title: str | None = None
    paragraph: list[str] = []
    list_stack: list[str] = []  # open list tags, innermost last
    in_quote = False

    def close_paragraph() -> None:
        if paragraph:
            out.append(f"<p>{render_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    def close_lists(depth: int = 0) -> None:
        while len(list_stack) > depth:
            out.append(f"</{list_stack.pop()}>")

    def close_quote() -> None:
        nonlocal in_quote
        if in_quote:
            out.append("</blockquote>")
            in_quote = False

    index = 0
    while index < len(lines):
        line = lines[index]
        stripped = line.strip()

        # Fenced code blocks.
        if stripped.startswith("```"):
            close_paragraph(); close_lists(); close_quote()
            language = stripped[3:].strip()
            code_lines = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                code_lines.append(lines[index])
                index += 1
            if index >= len(lines):
                reporter.warn(f"{page}: unclosed code fence")
                break
            out.append(highlight_block("\n".join(code_lines) + "\n", language))
            index += 1
            continue

        # Blank line: paragraph/list/quote boundary.
        if not stripped:
            close_paragraph(); close_lists(); close_quote()
            index += 1
            continue

        # Headings.
        heading = re.match(r"(#{1,4})\s+(.*)", stripped)
        if heading:
            close_paragraph(); close_lists(); close_quote()
            level = len(heading.group(1))
            text = heading.group(2).strip()
            if level == 1 and title is None:
                title = re.sub(r"`", "", text)
            anchor = slugify(text)
            if anchor in anchors:
                reporter.warn(f"{page}: duplicate heading anchor #{anchor}")
            anchors.add(anchor)
            out.append(
                f'<h{level} id="{anchor}">{render_inline(text)}</h{level}>'
            )
            index += 1
            continue

        # Horizontal rule.
        if re.fullmatch(r"(-{3,}|\*{3,})", stripped):
            close_paragraph(); close_lists(); close_quote()
            out.append("<hr/>")
            index += 1
            continue

        # Tables: a header row followed by a |---| separator.
        if stripped.startswith("|") and index + 1 < len(lines) and re.fullmatch(
            r"\|?[\s:|-]+\|?", lines[index + 1].strip()
        ) and "-" in lines[index + 1]:
            close_paragraph(); close_lists(); close_quote()
            def cells(row: str) -> list[str]:
                return [cell.strip() for cell in row.strip().strip("|").split("|")]
            header = cells(stripped)
            out.append("<table><thead><tr>")
            out.extend(f"<th>{render_inline(cell)}</th>" for cell in header)
            out.append("</tr></thead><tbody>")
            index += 2
            while index < len(lines) and lines[index].strip().startswith("|"):
                out.append("<tr>")
                out.extend(
                    f"<td>{render_inline(cell)}</td>"
                    for cell in cells(lines[index])
                )
                out.append("</tr>")
                index += 1
            out.append("</tbody></table>")
            continue

        # Blockquote (single level).
        if stripped.startswith(">"):
            close_paragraph(); close_lists()
            if not in_quote:
                out.append("<blockquote>")
                in_quote = True
            out.append(f"<p>{render_inline(stripped.lstrip('> ').strip())}</p>")
            index += 1
            continue

        # Lists (unordered/ordered, one nesting level by indentation).
        item = re.match(r"(\s*)([-*]|\d+\.)\s+(.*)", line)
        if item:
            close_paragraph(); close_quote()
            depth = 1 if len(item.group(1)) >= 2 else 0
            tag = "ol" if item.group(2)[0].isdigit() else "ul"
            while len(list_stack) > depth + 1:
                out.append(f"</{list_stack.pop()}>")
            if len(list_stack) == depth:
                out.append(f"<{tag}>")
                list_stack.append(tag)
            out.append(f"<li>{render_inline(item.group(3))}</li>")
            index += 1
            continue

        # Continuation of a paragraph (or of a list item's text).
        if list_stack:
            # Indented continuation line of the previous <li>.
            out[-1] = out[-1][: -len("</li>")] + " " + render_inline(stripped) + "</li>"
        else:
            paragraph.append(stripped)
        index += 1

    close_paragraph(); close_lists(); close_quote()
    return "\n".join(out), anchors, title


# ---------------------------------------------------------------------------
# API reference generation
# ---------------------------------------------------------------------------


def _is_enforced(module_name: str) -> bool:
    return any(
        module_name == package or module_name.startswith(package + ".")
        for package in ENFORCED_PACKAGES
    )


def _public_members(module) -> list[tuple[str, object]]:
    names = getattr(module, "__all__", None)
    if names is None:
        names = [name for name in dir(module) if not name.startswith("_")]
    members = []
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        if inspect.ismodule(obj):
            continue
        # Only document symbols defined by this module (re-exports are
        # documented where they live).
        if getattr(obj, "__module__", module.__name__) != module.__name__:
            continue
        members.append((name, obj))
    return members


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _docstring_html(obj, owner: str, reporter: Reporter, enforced: bool) -> str:
    doc = inspect.getdoc(obj) or ""
    if not doc.strip():
        if enforced:
            reporter.warn(f"missing docstring: {owner}")
        return '<p class="missing">Undocumented.</p>'
    return f'<div class="docstring">{html.escape(doc)}</div>'


def _class_html(name: str, cls: type, module_name: str, reporter: Reporter) -> str:
    enforced = _is_enforced(module_name)
    parts = [
        '<div class="api-symbol">',
        f'<span class="api-kind">class</span>',
        f'<h4 id="{slugify(module_name + "-" + name)}">{html.escape(name)}'
        f"{html.escape(_signature(cls))}</h4>",
        _docstring_html(cls, f"{module_name}.{name}", reporter, enforced),
    ]
    for member_name, member in sorted(vars(cls).items()):
        if member_name.startswith("_"):
            continue
        if isinstance(member, property):
            kind, target = "property", member.fget or member
            signature = ""
        elif isinstance(member, (staticmethod, classmethod)):
            kind, target = "method", member.__func__
            signature = _signature(target)
        elif inspect.isfunction(member):
            kind, target = "method", member
            signature = _signature(member)
        else:
            continue
        parts.append(
            f'<p><span class="api-kind">{kind}</span> '
            f"<code>{html.escape(member_name)}{html.escape(signature)}</code></p>"
        )
        parts.append(
            _docstring_html(
                target, f"{module_name}.{name}.{member_name}", reporter, enforced
            )
        )
    parts.append("</div>")
    return "\n".join(parts)


def _function_html(name: str, func, module_name: str, reporter: Reporter) -> str:
    enforced = _is_enforced(module_name)
    return "\n".join(
        [
            '<div class="api-symbol">',
            '<span class="api-kind">function</span>',
            f'<h4 id="{slugify(module_name + "-" + name)}">{html.escape(name)}'
            f"{html.escape(_signature(func))}</h4>",
            _docstring_html(func, f"{module_name}.{name}", reporter, enforced),
            "</div>",
        ]
    )


def render_api_section(title: str, module_names: list[str], reporter: Reporter) -> str:
    chunks = [f"<h1>{html.escape(title)}</h1>"]
    for module_name in module_names:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            reporter.warn(f"API reference: cannot import {module_name}: {exc}")
            continue
        chunks.append(f'<h2 id="{slugify(module_name)}">{html.escape(module_name)}</h2>')
        doc = module.__doc__ or ""
        if doc.strip():
            chunks.append(f'<div class="docstring">{html.escape(doc.strip())}</div>')
        elif _is_enforced(module_name):
            reporter.warn(f"missing module docstring: {module_name}")
        for name, obj in _public_members(module):
            if inspect.isclass(obj):
                chunks.append(_class_html(name, obj, module_name, reporter))
            elif inspect.isfunction(obj):
                chunks.append(_function_html(name, obj, module_name, reporter))
    return "\n".join(chunks)


# ---------------------------------------------------------------------------
# Site assembly
# ---------------------------------------------------------------------------


def load_nav() -> tuple[str, list[tuple[str, str]]]:
    """Parse ``mkdocs.yml``: returns ``(site_name, [(title, source), ...])``.

    ``source`` is a Markdown filename under ``docs/`` or the special value
    ``api/`` for the generated API reference.
    """

    import yaml

    config = yaml.safe_load((REPO_ROOT / "mkdocs.yml").read_text())
    nav = []
    for entry in config["nav"]:
        ((entry_title, source),) = entry.items()
        nav.append((entry_title, source))
    return config.get("site_name", "documentation"), nav


def page_shell(
    site_name: str,
    nav_links: list[tuple[str, str, bool]],
    title: str,
    body: str,
    root_prefix: str,
) -> str:
    nav_html = "".join(
        f'<a class="{"current" if current else ""}" '
        f'href="{root_prefix}{href}">{html.escape(text)}</a>'
        for text, href, current in nav_links
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\"/>"
        f"<title>{html.escape(title)} — {html.escape(site_name)}</title>"
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>'
        f'<link rel="stylesheet" href="{root_prefix}style.css"/></head><body>'
        f'<nav class="sidebar"><h1>{html.escape(site_name)}</h1>{nav_html}</nav>'
        f"<main>{body}</main></body></html>"
    )


def check_links(
    pages: dict[str, tuple[str, set[str]]], reporter: Reporter
) -> None:
    """Every internal href must resolve to an emitted page (and anchor)."""

    href_pattern = re.compile(r'href="([^"]+)"')
    for page_name, (body, _anchors) in pages.items():
        for href in href_pattern.findall(body):
            if href.startswith(("http://", "https://", "mailto:")):
                continue
            if href.endswith("style.css"):
                continue
            target, _, fragment = href.partition("#")
            if not target:
                if fragment and fragment not in pages[page_name][1]:
                    reporter.warn(
                        f"{page_name}: broken same-page anchor #{fragment}"
                    )
                continue
            # Normalise relative to the page's directory.
            base = Path(page_name).parent
            resolved = (base / target).as_posix()
            while resolved.startswith("../"):  # pragma: no cover - defensive
                resolved = resolved[3:]
            resolved = resolved.replace("../", "")
            if resolved not in pages:
                reporter.warn(f"{page_name}: broken internal link {href!r}")
                continue
            if fragment and fragment not in pages[resolved][1]:
                reporter.warn(
                    f"{page_name}: broken anchor {href!r} "
                    f"(no #{fragment} on {resolved})"
                )


def build(out_dir: Path, strict: bool) -> int:
    reporter = Reporter(strict)
    site_name, nav = load_nav()

    # Source sanity: nav entries exist; every docs/*.md page is in the nav.
    markdown_sources = {path.name for path in DOCS_DIR.glob("*.md")}
    nav_sources = {source for _, source in nav if source != "api/"}
    for source in nav_sources - markdown_sources:
        reporter.warn(f"mkdocs.yml: nav references missing page {source}")
    for source in markdown_sources - nav_sources:
        reporter.warn(f"{source}: not listed in the mkdocs.yml nav")

    # Collect anchors first so cross-page anchor links can be validated.
    pages: dict[str, tuple[str, set[str]]] = {}
    titles: dict[str, str] = {}
    for entry_title, source in nav:
        if source == "api/":
            continue
        path = DOCS_DIR / source
        if not path.exists():
            continue
        body, anchors, page_title = render_markdown(
            path.read_text(), source, reporter
        )
        out_name = source[:-3] + ".html"
        pages[out_name] = (body, anchors)
        titles[out_name] = page_title or entry_title

    # API reference pages.
    api_index_items = []
    for slug, section_title, module_names in API_SECTIONS:
        body = render_api_section(section_title, module_names, reporter)
        anchors = {slugify(name) for name in module_names}
        anchors |= set(re.findall(r'id="([^"]+)"', body))
        pages[f"api/{slug}.html"] = (body, anchors)
        titles[f"api/{slug}.html"] = section_title
        api_index_items.append(
            f'<li><a href="{slug}.html">{html.escape(section_title)}</a></li>'
        )
    api_index_body = (
        "<h1>API reference</h1>"
        "<p>Generated from the package docstrings at build time. The "
        "<code>repro.backends</code>, <code>repro.core.procpool</code> and "
        "<code>repro.distributed</code> surfaces are enforced: a missing "
        "docstring fails the strict build.</p>"
        f"<ul>{''.join(api_index_items)}</ul>"
    )
    pages["api/index.html"] = (api_index_body, set())
    titles["api/index.html"] = "API reference"

    check_links(pages, reporter)

    if reporter.failed:
        print(
            f"strict build failed with {len(reporter.warnings)} problem(s)",
            file=sys.stderr,
        )
        return 1

    # Emit.
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "api").mkdir(exist_ok=True)
    style = STYLE
    if highlight is not None:
        style += HtmlFormatter().get_style_defs(".highlight")
    (out_dir / "style.css").write_text(style)
    nav_links_spec = [
        (entry_title, source[:-3] + ".html" if source != "api/" else "api/index.html")
        for entry_title, source in nav
    ]
    for page_name, (body, _anchors) in pages.items():
        root_prefix = "../" if page_name.startswith("api/") else ""
        nav_links = [
            (text, href, href == page_name) for text, href in nav_links_spec
        ]
        document = page_shell(
            site_name, nav_links, titles.get(page_name, site_name), body,
            root_prefix,
        )
        target = out_dir / page_name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(document)
    print(
        f"built {len(pages)} pages -> {out_dir} "
        f"({len(reporter.warnings)} warning(s))"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict", action="store_true", help="treat every warning as an error"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output directory"
    )
    args = parser.parse_args(argv)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    return build(args.out, args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
