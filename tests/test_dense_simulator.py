"""Unit tests for the dense reference simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit, qft_circuit, uniform_superposition
from repro.statevector import DenseSimulator, simulate_statevector


class TestInitialization:
    def test_default_initial_state(self):
        simulator = DenseSimulator(3)
        assert simulator.state[0] == 1.0
        assert simulator.state[1:].sum() == 0.0

    def test_basis_initial_state(self):
        simulator = DenseSimulator(3, initial_state=5)
        assert simulator.state[5] == 1.0

    def test_vector_initial_state_normalised(self):
        vector = np.ones(4, dtype=complex)
        simulator = DenseSimulator(2, initial_state=vector)
        assert np.linalg.norm(simulator.state) == pytest.approx(1.0)

    def test_invalid_basis_state(self):
        with pytest.raises(ValueError):
            DenseSimulator(2, initial_state=4)

    def test_invalid_vector_shape(self):
        with pytest.raises(ValueError):
            DenseSimulator(2, initial_state=np.ones(3, dtype=complex))

    def test_qubit_cap(self):
        with pytest.raises(ValueError):
            DenseSimulator(29)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            DenseSimulator(0)

    def test_memory_bytes(self):
        simulator = DenseSimulator(10)
        assert simulator.memory_bytes() == (1 << 10) * 16


class TestGateApplication:
    def test_single_hadamard(self):
        simulator = DenseSimulator(1)
        simulator.apply_circuit(QuantumCircuit(1).h(0))
        assert np.allclose(simulator.state, np.full(2, 1 / math.sqrt(2)))

    def test_gate_count_tracks(self):
        simulator = DenseSimulator(2)
        simulator.apply_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        assert simulator.gate_count == 2

    def test_gate_outside_register_rejected(self):
        simulator = DenseSimulator(2)
        from repro.circuits import standard_gate

        with pytest.raises(ValueError):
            simulator.apply_gate(standard_gate("h", 4))

    def test_state_property_is_read_only(self):
        simulator = DenseSimulator(2)
        with pytest.raises(ValueError):
            simulator.state[0] = 0.0

    def test_statevector_returns_copy(self):
        simulator = DenseSimulator(2)
        copy = simulator.statevector()
        copy[0] = 123.0
        assert simulator.state[0] == 1.0

    def test_bell_state_probabilities(self):
        simulator = DenseSimulator(2)
        simulator.apply_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        probs = simulator.probabilities()
        assert probs[0b00] == pytest.approx(0.5)
        assert probs[0b11] == pytest.approx(0.5)
        assert simulator.probability_of(0b01) == pytest.approx(0.0)

    def test_norm_preserved_through_deep_circuit(self):
        circuit = qft_circuit(6)
        simulator = DenseSimulator(6)
        simulator.apply_circuit(circuit)
        assert simulator.norm_error() < 1e-10


class TestMeasurementInterface:
    def test_marginal_and_expectation(self):
        simulator = DenseSimulator(2)
        simulator.apply_circuit(QuantumCircuit(2).x(1))
        assert simulator.marginal_probability(1) == pytest.approx(1.0)
        assert simulator.expectation_z(1) == pytest.approx(-1.0)

    def test_sampling(self, rng):
        simulator = DenseSimulator(3)
        simulator.apply_circuit(uniform_superposition(3))
        counts = simulator.sample_counts(800, rng)
        assert sum(counts.values()) == 800
        assert len(counts) == 8  # all outcomes present with high probability

    def test_projective_measurement_collapses(self, rng):
        simulator = DenseSimulator(2)
        simulator.apply_circuit(ghz_circuit(2))
        outcome = simulator.measure(0, rng)
        # After measuring one qubit of a Bell pair the other is determined.
        assert simulator.marginal_probability(1) == pytest.approx(float(outcome))

    def test_fidelity_with(self):
        a = DenseSimulator(3)
        b = DenseSimulator(3)
        a.apply_circuit(uniform_superposition(3))
        b.apply_circuit(uniform_superposition(3))
        assert a.fidelity_with(b) == pytest.approx(1.0)
        assert a.fidelity_with(DenseSimulator(3)) == pytest.approx(1 / math.sqrt(8))


class TestConvenienceFunction:
    def test_simulate_statevector(self):
        state = simulate_statevector(ghz_circuit(3))
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(state[7]) == pytest.approx(1 / math.sqrt(2))

    def test_simulate_statevector_with_initial_state(self):
        state = simulate_statevector(QuantumCircuit(2).x(0), initial_state=2)
        assert np.argmax(np.abs(state)) == 3
