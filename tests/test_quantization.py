"""Unit tests for linear-scaling quantization and the log transform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import quantization
from repro.compression.interface import CompressorError


class TestQuantize:
    @pytest.mark.parametrize("bound", [1e-1, 1e-3, 1e-6])
    def test_error_within_bound(self, bound, rng):
        data = rng.normal(size=4096)
        codes = quantization.quantize(data, bound)
        recovered = quantization.dequantize(codes, bound)
        assert np.max(np.abs(recovered - data)) <= bound + 1e-15

    def test_exact_grid_points_roundtrip(self):
        bound = 0.5
        data = np.array([0.0, 1.0, 2.0, -3.0])
        codes = quantization.quantize(data, bound)
        assert np.array_equal(quantization.dequantize(codes, bound), data)

    def test_codes_are_integers(self, rng):
        codes = quantization.quantize(rng.normal(size=16), 1e-2)
        assert codes.dtype == np.int64

    def test_negative_bound_rejected(self):
        with pytest.raises(CompressorError):
            quantization.quantize(np.zeros(4), -1.0)
        with pytest.raises(CompressorError):
            quantization.dequantize(np.zeros(4, dtype=np.int64), 0.0)

    def test_nan_rejected(self):
        with pytest.raises(CompressorError):
            quantization.quantize(np.array([np.nan]), 1e-3)

    def test_overflow_guard(self):
        with pytest.raises(CompressorError):
            quantization.quantize(np.array([1e300]), 1e-300)


class TestLogTransform:
    def test_roundtrip_without_error(self, rng):
        data = rng.normal(size=1000) * np.exp(rng.normal(size=1000))
        log_mag, signs, zero_mask = quantization.log_transform(data)
        recovered = quantization.log_inverse_transform(log_mag, signs, zero_mask)
        assert np.allclose(recovered, data, rtol=1e-12)

    def test_zeros_preserved_exactly(self):
        data = np.array([0.0, 1.0, 0.0, -2.0])
        log_mag, signs, zero_mask = quantization.log_transform(data)
        recovered = quantization.log_inverse_transform(log_mag, signs, zero_mask)
        assert np.array_equal(recovered == 0.0, data == 0.0)
        assert np.allclose(recovered, data)

    def test_signs_preserved(self):
        data = np.array([-1.5, 2.5, -3.5])
        log_mag, signs, zero_mask = quantization.log_transform(data)
        assert np.array_equal(signs, np.array([-1.0, 1.0, -1.0]))

    def test_relative_bound_via_log_absolute(self, rng):
        # Quantizing the log-domain data with bound log1p(eps) must respect
        # the pointwise relative bound eps on the original data.
        eps = 1e-2
        data = rng.normal(size=2000) * np.exp(rng.normal(size=2000) * 3)
        log_mag, signs, zero_mask = quantization.log_transform(data)
        log_bound = quantization.relative_to_log_absolute(eps)
        codes = quantization.quantize(log_mag, log_bound)
        recovered_log = quantization.dequantize(codes, log_bound)
        recovered = quantization.log_inverse_transform(recovered_log, signs, zero_mask)
        nonzero = data != 0
        rel = np.abs(recovered[nonzero] - data[nonzero]) / np.abs(data[nonzero])
        assert rel.max() <= eps + 1e-12

    def test_relative_to_log_absolute_monotone(self):
        assert quantization.relative_to_log_absolute(1e-3) < quantization.relative_to_log_absolute(1e-1)

    def test_relative_to_log_absolute_rejects_nonpositive(self):
        with pytest.raises(CompressorError):
            quantization.relative_to_log_absolute(0.0)
