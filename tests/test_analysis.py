"""Tests for the analysis substrate: memory model, snapshots, spikiness, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    PAPER_SUPERCOMPUTERS,
    Supercomputer,
    format_series,
    format_table,
    max_qubits_for_memory,
    memory_with_compression,
    qubit_gain_from_ratio,
    snapshot,
    spikiness_stats,
    state_vector_bytes,
    table1_rows,
    value_windows,
)
from repro.analysis.datasets import qaoa_state, supremacy_state


class TestMemoryModel:
    def test_state_vector_bytes_formula(self):
        # 2^(n+4) bytes: a 45-qubit state needs 0.5 PB (the Cori figure the
        # paper quotes), 61 qubits need 32 EB.
        assert state_vector_bytes(45) == 1 << 49
        assert state_vector_bytes(61) == 1 << 65
        assert state_vector_bytes(61) / 2**60 == pytest.approx(32.0)

    def test_state_vector_bytes_validation(self):
        with pytest.raises(ValueError):
            state_vector_bytes(0)

    def test_max_qubits_for_memory(self):
        assert max_qubits_for_memory(1 << 49) == 45
        assert max_qubits_for_memory(0.9 * (1 << 49)) == 44
        with pytest.raises(ValueError):
            max_qubits_for_memory(1)

    def test_table1_matches_paper(self):
        rows = {row["system"]: row["max_qubits"] for row in table1_rows()}
        assert rows == {
            "Summit": 47,
            "Sierra": 46,
            "Sunway TaihuLight": 46,
            "Theta": 45,
        }

    def test_qubit_gain_from_ratio(self):
        # Table 2 extremes: ratio 4.85 -> ~2.3 qubits, 7.39e4 -> ~16 qubits,
        # the source of the "2 to 16 qubits" claim.
        assert 2.0 < qubit_gain_from_ratio(4.85) < 2.5
        assert 16.0 < qubit_gain_from_ratio(7.39e4) < 16.5
        with pytest.raises(ValueError):
            qubit_gain_from_ratio(0.0)

    def test_memory_with_compression(self):
        # 61-qubit Grover at the measured 7.39e4 ratio fits in under 1 PB.
        compressed = memory_with_compression(61, 7.39e4)
        assert compressed < 0.8 * 2**50
        with pytest.raises(ValueError):
            memory_with_compression(61, 0)

    def test_supercomputer_with_ratio(self):
        theta = next(m for m in PAPER_SUPERCOMPUTERS if m.name == "Theta")
        assert theta.max_qubits == 45
        # A 16x compression ratio buys 4 qubits.
        assert theta.max_qubits_with_ratio(16.0) == 49

    def test_custom_supercomputer(self):
        aurora = Supercomputer("Aurora", 10.0)
        assert aurora.max_qubits >= 48


class TestSnapshots:
    def test_snapshot_kinds(self):
        assert snapshot("qaoa", 10).dtype == np.float64
        assert snapshot("sup", 10).dtype == np.float64
        with pytest.raises(ValueError):
            snapshot("bogus", 10)

    def test_snapshot_is_interleaved_view_of_normalised_state(self):
        data = snapshot("qaoa", 10)
        state = data.view(np.complex128)
        assert np.abs(np.vdot(state, state)) == pytest.approx(1.0, abs=1e-9)
        assert data.size == 2 * state.size

    def test_states_are_cached(self):
        a = qaoa_state(num_qubits=10, seed=1)
        b = qaoa_state(num_qubits=10, seed=1)
        assert a is b

    def test_states_are_read_only(self):
        state = supremacy_state(num_qubits=10, seed=1)
        with pytest.raises(ValueError):
            state[0] = 0.0

    def test_different_kinds_differ(self):
        assert not np.array_equal(snapshot("qaoa", 10), snapshot("sup", 10))


class TestSpikiness:
    def test_quantum_snapshots_are_spiky(self):
        stats = spikiness_stats(snapshot("sup", 12))
        # Far from smooth: neighbouring amplitudes are nearly uncorrelated.
        assert abs(stats.lag1_autocorrelation) < 0.3
        assert stats.normalized_roughness > 0.5

    def test_smooth_signal_is_not_spiky(self):
        smooth = np.sin(np.linspace(0, 3 * np.pi, 5000))
        stats = spikiness_stats(smooth)
        assert stats.lag1_autocorrelation > 0.99
        assert stats.normalized_roughness < 0.01

    def test_value_windows_default(self):
        data = np.arange(20000, dtype=np.float64)
        windows = value_windows(data)
        assert "0:10000" in windows
        assert windows["1000:1050"].size == 50

    def test_value_windows_clamped_to_data(self):
        windows = value_windows(np.arange(30, dtype=np.float64), [(0, 100)])
        (values,) = windows.values()
        assert values.size == 30

    def test_tiny_input(self):
        stats = spikiness_stats(np.array([1.0]))
        assert stats.mean_abs_diff == 0.0


class TestReportFormatting:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series(
            "qubits", {"time": [1.0, 2.0]}, x_values=[4, 5]
        )
        assert "qubits" in text and "time" in text
        assert len(text.splitlines()) == 4
