"""Format-level properties every codec family shares.

Parametrized over the ``codec_name`` fixture (sz / zfp / xor-bitplane /
lossless), replacing the per-codec copies these assertions used to have in
``test_lossless.py`` and ``test_compressors_lossy.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CompressorError, ErrorBoundMode


@pytest.fixture
def codec(codec_name, make_codec):
    return make_codec(codec_name)


class TestCommonCodecProperties:
    def test_round_trip_honours_declared_contract(self, codec, spiky_data):
        recovered = codec.decompress(codec.compress(spiky_data))
        assert recovered.shape == spiky_data.shape
        if codec.is_lossless:
            assert np.array_equal(recovered, spiky_data)
        elif codec.mode is ErrorBoundMode.RELATIVE:
            nonzero = spiky_data != 0
            rel = np.abs(recovered[nonzero] - spiky_data[nonzero]) / np.abs(
                spiky_data[nonzero]
            )
            assert rel.max() <= codec.bound * (1 + 1e-9)
        else:
            assert np.abs(recovered - spiky_data).max() <= codec.bound * (1 + 1e-9)

    def test_empty_array_round_trip(self, codec):
        recovered = codec.decompress(codec.compress(np.zeros(0)))
        assert recovered.size == 0
        assert recovered.dtype == np.float64

    def test_garbage_blob_rejected(self, codec):
        with pytest.raises(CompressorError):
            codec.decompress(b"not a blob at all")

    def test_foreign_blob_rejected(self, codec, codec_name, make_codec, spiky_data):
        # A blob from any *other* codec family must be refused by tag, not
        # misparsed.
        for other_name in ["sz", "zfp", "xor-bitplane", "lossless"]:
            if other_name == codec_name:
                continue
            foreign = make_codec(other_name).compress(spiky_data)
            with pytest.raises(CompressorError):
                codec.decompress(foreign)

    def test_blob_is_self_describing(self, codec, codec_name, make_codec, spiky_data):
        # Decode must depend only on the blob: an instance configured with a
        # different bound reads another instance's blob identically (the
        # golden-blob tests rely on exactly this).
        blob = codec.compress(spiky_data)
        if codec_name == "lossless":
            other = make_codec(codec_name, level=1)
        else:
            other = make_codec(codec_name, bound=1e-1)
        assert np.array_equal(other.decompress(blob), codec.decompress(blob))
