"""The multi-rank distributed execution tier (``SimulatorConfig.comm="process"``).

The contract under test: a circuit run with the state split over rank worker
processes — with *real* compressed-blob exchange between ranks — is
bit-identical to the same circuit on the single-process simulator, and the
report carries real (not modelled) communication statistics.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.applications import qft_benchmark_circuit
from repro.backends import PauliObservable
from repro.circuits import QuantumCircuit, standard_gate
from repro.core import (
    CompressedSimulator,
    SimulatorConfig,
    WorkerCrashedError,
    load_checkpoint,
    save_checkpoint,
)

NUM_QUBITS = 8
BLOCK = 16


def ranked_config(**overrides) -> SimulatorConfig:
    defaults = dict(num_ranks=4, block_amplitudes=BLOCK, comm="process")
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


def entangling_circuit() -> QuantumCircuit:
    """A QFT-style workload touching the local, block and rank segments."""

    return qft_benchmark_circuit(NUM_QUBITS, seed=3)


def final_blobs(simulator) -> list[tuple[bytes, str, float]]:
    """The compressed state flattened in global (rank-major) block order."""

    return [
        (entry.blob, entry.compressor, entry.bound)
        for _key, entry in simulator.state.iter_blocks()
    ]


def run_reference(circuit, **config_overrides):
    config = SimulatorConfig(
        num_ranks=1, block_amplitudes=BLOCK, **config_overrides
    )
    simulator = CompressedSimulator(NUM_QUBITS, config)
    simulator.apply_circuit(circuit)
    return simulator


class TestBitIdentity:
    def test_matches_single_rank_simulator(self):
        """Acceptance: num_ranks=4 ranked run == single-rank run, bit for bit."""

        circuit = entangling_circuit()
        reference = run_reference(circuit)
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            report = simulator.apply_circuit(circuit)
            assert np.array_equal(
                simulator.statevector().view(np.uint64),
                reference.statevector().view(np.uint64),
            )
            # Same block size => same global block boundaries: the final
            # compressed state must match blob for blob, not just amplitude
            # for amplitude.
            assert final_blobs(simulator) == final_blobs(reference)
            counts = simulator.sample_counts(400, np.random.default_rng(11))
        assert counts == reference.sample_counts(400, np.random.default_rng(11))
        assert report.rank_comm is not None
        assert report.communication_bytes > 0

    def test_matches_simulated_communication_same_ranks(self):
        """Rank-for-rank parity with the accounting tier (norm included)."""

        circuit = entangling_circuit()
        simulated = CompressedSimulator(
            NUM_QUBITS, SimulatorConfig(num_ranks=4, block_amplitudes=BLOCK)
        )
        simulated.apply_circuit(circuit)
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            simulator.apply_circuit(circuit)
            assert final_blobs(simulator) == final_blobs(simulated)
            # Same per-rank summation grouping => bit-identical norm.
            assert simulator.norm_squared() == simulated.norm_squared()

    def test_fusion_disabled_also_identical(self):
        circuit = entangling_circuit()
        reference = run_reference(circuit, fusion_enabled=False)
        with CompressedSimulator(
            NUM_QUBITS, ranked_config(fusion_enabled=False)
        ) as simulator:
            simulator.apply_circuit(circuit)
            assert final_blobs(simulator) == final_blobs(reference)

    def test_spawn_matches_fork(self):
        circuit = entangling_circuit()
        blobs = {}
        for method in ("fork", "spawn"):
            with CompressedSimulator(
                NUM_QUBITS,
                ranked_config(num_ranks=2, mp_start_method=method),
            ) as simulator:
                simulator.apply_circuit(circuit)
                blobs[method] = final_blobs(simulator)
        assert blobs["fork"] == blobs["spawn"]

    def test_escalation_parity_under_memory_budget(self):
        circuit = entangling_circuit()
        overrides = dict(memory_budget_bytes=4096, start_lossless=True)
        reference = CompressedSimulator(
            NUM_QUBITS,
            SimulatorConfig(num_ranks=4, block_amplitudes=BLOCK, **overrides),
        )
        ref_report = reference.apply_circuit(circuit)
        with CompressedSimulator(
            NUM_QUBITS, ranked_config(**overrides)
        ) as simulator:
            report = simulator.apply_circuit(circuit)
            assert ref_report.escalations > 0
            assert report.escalations == ref_report.escalations
            assert report.final_error_bound == ref_report.final_error_bound
            assert final_blobs(simulator) == final_blobs(reference)


class TestRealCommunication:
    def test_report_carries_real_rank_stats(self):
        circuit = entangling_circuit()
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            report = simulator.apply_circuit(circuit)
            report = simulator.report()
        per_rank = report.rank_comm
        assert len(per_rank) == 4
        # Every rank really exchanged blocks: nonzero bytes at each endpoint.
        assert all(entry["bytes_sent"] > 0 for entry in per_rank)
        assert all(entry["exchanges"] > 0 for entry in per_rank)
        assert all(entry["exchange_seconds"] > 0 for entry in per_rank)
        # Aggregate view follows the simulated conventions: pairwise
        # exchanges counted once, bytes summed over endpoints.
        assert report.block_exchanges == sum(
            entry["exchanges"] for entry in per_rank
        ) // 2
        assert report.communication_bytes == sum(
            entry["bytes_sent"] for entry in per_rank
        )
        assert report.communication_seconds > 0
        assert report.as_dict()["rank_comm"] == per_rank

    def test_norm_runs_a_real_allreduce(self):
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            before = simulator.report().as_dict()["rank_comm"]
            assert all(entry["allreduces"] == 0 for entry in before)
            assert simulator.norm_squared() == pytest.approx(1.0)
            after = simulator.report().rank_comm
            assert all(entry["allreduces"] == 1 for entry in after)

    def test_local_only_circuit_moves_no_bytes(self):
        # Every target below the block boundary: no rank-segment gates, so
        # the ranks never talk (beyond whatever the caller asks for).
        circuit = QuantumCircuit(NUM_QUBITS)
        for qubit in range(3):
            circuit.h(qubit)
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            report = simulator.apply_circuit(circuit)
            assert report.communication_bytes == 0
            assert report.block_exchanges == 0


class TestLifecycle:
    def test_reset_reproduces_fresh_simulator(self):
        circuit = entangling_circuit()
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            simulator.apply_circuit(circuit)
            first = final_blobs(simulator)

            def counters(report):
                return [
                    {
                        key: value
                        for key, value in entry.items()
                        if not key.endswith("_seconds")
                    }
                    for entry in report.rank_comm
                ]

            first_comm = counters(simulator.report())
            simulator.reset()
            # Counters restart with the state.
            assert simulator.report().communication_bytes == 0
            assert all(
                entry["bytes_sent"] == 0 for entry in simulator.report().rank_comm
            )
            simulator.apply_circuit(circuit)
            assert final_blobs(simulator) == first
            assert counters(simulator.report()) == first_comm

    def test_batched_run_equals_sequential_runs(self):
        circuits = [entangling_circuit(), entangling_circuit()]
        config = ranked_config()
        batch = repro.run(
            circuits, backend="compressed", shots=100, seed=5, config=config
        )
        singles = [
            repro.run(c, backend="compressed", shots=100, seed=5, config=config)
            for c in circuits
        ]
        # The warm batched session must match... itself run cold; note the
        # per-circuit seed ladder depends on batch position, so compare the
        # first circuit only.
        assert batch[0].counts == singles[0].counts
        assert batch[0].report["communication_bytes"] == singles[0].report[
            "communication_bytes"
        ]

    def test_observables_via_fork(self):
        circuit = entangling_circuit()
        observable = PauliObservable("XZIIIIII")
        ranked = repro.run(
            circuit,
            backend="compressed",
            observables=observable,
            config=ranked_config(),
        )
        reference = repro.run(
            circuit,
            backend="compressed",
            observables=observable,
            config=SimulatorConfig(num_ranks=4, block_amplitudes=BLOCK),
        )
        assert ranked.expectations == reference.expectations

    def test_fork_is_local_and_identical(self):
        circuit = entangling_circuit()
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            simulator.apply_circuit(circuit)
            clone = simulator.fork()
            assert clone.config.comm == "simulated"
            assert clone.config.executor == "thread"
            assert np.array_equal(
                clone.statevector().view(np.uint64),
                simulator.statevector().view(np.uint64),
            )

    def test_checkpoint_roundtrip(self, tmp_path):
        circuit = entangling_circuit()
        path = tmp_path / "ranked.ckpt"
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            simulator.apply_circuit(circuit)
            expected = final_blobs(simulator)
            save_checkpoint(simulator, path)
        # Restore into a local simulator...
        local = load_checkpoint(
            path, config=SimulatorConfig(num_ranks=4, block_amplitudes=BLOCK)
        )
        assert final_blobs(local) == expected
        # ...and back into a ranked one (blocks stream to their rank owners).
        with load_checkpoint(path, config=ranked_config()) as resumed:
            assert final_blobs(resumed) == expected

    def test_close_is_idempotent_and_blocks_further_queries(self):
        simulator = CompressedSimulator(NUM_QUBITS, ranked_config(num_ranks=2))
        simulator.close()
        simulator.close()
        with pytest.raises(RuntimeError, match="closed"):
            simulator.statevector()


class TestFailureAndValidation:
    def test_rank_death_is_prompt(self):
        # Pin the fail-fast policy: this test asserts the *detection* path,
        # which an ambient fault plan (the CI chaos job) would otherwise
        # upgrade to recovery.
        from repro.resilience import FaultPolicy

        circuit = entangling_circuit()
        config = ranked_config(fault_policy=FaultPolicy(max_retries=0))
        with CompressedSimulator(NUM_QUBITS, config) as simulator:
            simulator.apply_circuit(circuit)
            simulator.executor.pool.submit(2, ("die",))
            start = time.monotonic()
            with pytest.raises(WorkerCrashedError):
                simulator.apply_gate(standard_gate("h", NUM_QUBITS - 1))
            assert time.monotonic() - start < 10.0

    def test_worker_error_drains_outstanding_replies(self):
        # A handler error on one rank must not leave the other ranks'
        # queued replies undrained — a later request would mis-unpack a
        # stale reply (e.g. norm_squared returning a byte count).
        with CompressedSimulator(NUM_QUBITS, ranked_config()) as simulator:
            executor = simulator.executor
            pool = executor.pool or executor._require_pool()
            pool.submit(0, ("bogus-kind",))
            pool.submit(1, ("ping",))
            with pytest.raises(ValueError, match="bogus-kind"):
                executor._collect(pool, 2, "test dispatch")
            # The protocol stayed in sync: real collectives still work.
            assert not pool.has_outstanding()
            assert simulator.norm_squared() == pytest.approx(1.0)

    def test_comm_process_rejects_other_parallel_tiers(self):
        with pytest.raises(ValueError, match="comm='process'"):
            SimulatorConfig(comm="process", executor="process")
        with pytest.raises(ValueError, match="comm='process'"):
            SimulatorConfig(comm="process", num_workers=2)

    def test_unknown_comm_rejected(self):
        with pytest.raises(ValueError, match="comm"):
            SimulatorConfig(comm="mpi")

    def test_single_rank_process_comm_works(self):
        # Degenerate but legal: one rank worker, no exchanges possible.
        circuit = entangling_circuit()
        reference = run_reference(circuit)
        with CompressedSimulator(
            NUM_QUBITS, ranked_config(num_ranks=1)
        ) as simulator:
            report = simulator.apply_circuit(circuit)
            assert final_blobs(simulator) == final_blobs(reference)
            assert report.communication_bytes == 0
