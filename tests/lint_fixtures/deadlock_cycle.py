"""Seeded lock-order regression: two locks with no global acquisition order.

``debit`` takes the ledger lock and then — through a resolvable
``self._stamp_audit()`` call, exercising the analyzer's interprocedural
closure — the audit lock; ``credit`` nests them the other way around.  Two
threads running ``debit``/``credit`` concurrently deadlock.  The lint suite
asserts the ``lock-order`` rule reports exactly this cycle, with both
acquisition sites in the message.

This module is never imported and never linted as part of the repository
(``tests/lint_fixtures/*`` is excluded); it exists purely as rule food.
"""

import threading


class LedgerPair:
    """Owns a ledger lock and an audit lock, acquired in opposing orders."""

    def __init__(self) -> None:
        self._ledger = threading.Lock()
        self._audit = threading.Lock()
        self.balance = 0
        self.entries: list[int] = []

    def _stamp_audit(self, amount: int) -> None:
        with self._audit:
            self.entries.append(amount)

    def debit(self, amount: int) -> None:
        with self._ledger:
            self.balance -= amount
            self._stamp_audit(-amount)

    def credit(self, amount: int) -> None:
        with self._audit:
            with self._ledger:
                self.balance += amount
                self.entries.append(amount)
