"""Seeded lock-order regression: blocking calls made while holding a mutex.

``pump`` calls ``recv()`` and ``backoff`` calls ``time.sleep()`` with the
instance mutex held: every other thread needing the mutex now waits on this
thread's pipe peer (or timer), the exact convoy shape the ``lock-order``
rule's blocking-call check exists to catch.  The lint suite asserts both
sites are flagged with the held lock's identity in the message.

This module is never imported and never linted as part of the repository
(``tests/lint_fixtures/*`` is excluded); it exists purely as rule food.
"""

import threading
import time


class ReplyPump:
    """Serialises access to a duplex pipe endpoint with one mutex."""

    def __init__(self, conn) -> None:
        self._mutex = threading.Lock()
        self._conn = conn

    def pump(self):
        with self._mutex:
            return self._conn.recv()

    def backoff(self) -> None:
        with self._mutex:
            time.sleep(0.05)
