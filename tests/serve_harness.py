"""Deterministic harness behind ``tests/test_serve.py`` and the CI soak.

Three ingredients keep the service tests free of sleeps and wall-clock
races:

* :class:`FakeClock` — a manually-advanced monotonic clock injected through
  ``ServiceConfig.clock``, so every event timestamp is scripted;
* :func:`workload_circuit` — a pure function of ``(tenant_index,
  job_index)``: bit-identical circuits on every call, which is what lets
  the soak check cached results against cold reruns;
* :func:`run_soak` — the scripted multi-tenant soak (N jobs, weighted
  tenants, an injected worker kill recovered mid-run) shared by the local
  test and the CI ``serve-soak`` job; it returns a JSON-ready summary the
  trend log ingests.

Everything here drives the service through its public API only.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time

import repro
from repro.core.config import SimulatorConfig
from repro.core.procpool import live_pool_count
from repro.resilience.faults import FaultPlan, KillWorker, installed_plan
from repro.serve import ServiceConfig, SimulationService


class FakeClock:
    """A monotonic clock the test advances by hand.

    The service only ever *reads* the clock (event timestamps, wall-clock
    metadata), so a fixed reading is legal; advancing between submissions
    gives events distinct, scripted timestamps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> None:
        """Move the clock forward by *delta* seconds."""

        if delta < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += delta


def workload_circuit(tenant_index: int, job_index: int, num_qubits: int = 4):
    """A small, fully deterministic circuit unique to ``(tenant, job)``.

    Pure arithmetic on the indices — no RNG — so two calls with the same
    arguments build bit-identical gate matrices, the precondition for every
    cache-key and bit-identity assertion in the suite.
    """

    circuit = repro.QuantumCircuit(
        num_qubits, name=f"wl_t{tenant_index}_j{job_index}"
    )
    angle = 0.1 + 0.07 * tenant_index + 0.013 * job_index
    for qubit in range(num_qubits):
        circuit.h(qubit)
        circuit.rz(angle * (qubit + 1), qubit)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.rx(angle, 0)
    return circuit


def drr_reference_prefix(weights: dict[str, int], rounds: int) -> list[str]:
    """The dispatch order DRR produces while every tenant stays backlogged.

    ``rounds`` full rounds, each dispatching exactly ``weight`` jobs per
    tenant in registration order — the analytic schedule the service's
    ``dispatch_order()`` must match on its fully-backlogged prefix.
    """

    order: list[str] = []
    for _ in range(rounds):
        for tenant, weight in weights.items():
            order.extend([tenant] * weight)
    return order


def max_gap(dispatches: list[str], tenant: str) -> int:
    """Largest number of consecutive dispatches *not* going to *tenant*.

    Measured only up to *tenant*'s final dispatch (after its queue drains
    it legitimately receives nothing), so this is the starvation metric:
    a backlogged tenant's gap must stay <= sum of all weights.
    """

    positions = [i for i, name in enumerate(dispatches) if name == tenant]
    if not positions:
        return len(dispatches)
    gaps = [positions[0]]
    gaps.extend(b - a - 1 for a, b in zip(positions, positions[1:]))
    return max(gaps)


def assert_no_leaks() -> None:
    """No stray asyncio task, live process pool or child process remains."""

    tasks = [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task()
    ]
    assert tasks == [], f"leaked asyncio tasks: {tasks}"
    assert live_pool_count() == 0, "leaked process pools"
    children = multiprocessing.active_children()
    assert children == [], f"leaked child processes: {children}"


#: Soak geometry: four tenants, paper-style weights, one process-tier
#: tenant that takes the injected worker kill.
SOAK_WEIGHTS = {"t0": 1, "t1": 2, "t2": 3, "t3": 4}
SOAK_PROCESS_TENANT = "t3"
SOAK_UNIQUE_THREAD = 10
SOAK_UNIQUE_PROCESS = 4
SOAK_QUBITS = 5
SOAK_SHOTS = 48


def _soak_request(tenant_index: int, job_index: int):
    """The (circuit, seed) of one soak job; repeats drive the cache."""

    tenant = list(SOAK_WEIGHTS)[tenant_index]
    unique = (
        SOAK_UNIQUE_PROCESS
        if tenant == SOAK_PROCESS_TENANT
        else SOAK_UNIQUE_THREAD
    )
    variant = job_index % unique
    return workload_circuit(tenant_index, variant, SOAK_QUBITS), 1000 + variant


async def _run_soak(num_jobs: int, kill_after: int) -> dict:
    """Submit *num_jobs* across the weighted tenants and verify everything."""

    process_config = SimulatorConfig(
        num_ranks=2,
        block_amplitudes=16,
        num_workers=2,
        executor="process",
    )
    clock = FakeClock()
    service = SimulationService(
        ServiceConfig(
            workers=1,
            max_pending_total=num_jobs + 8,
            max_pending_per_tenant=num_jobs,
            progress_interval=8,
            clock=clock,
        )
    )
    await service.start()
    for tenant, weight in SOAK_WEIGHTS.items():
        service.register_tenant(tenant, weight)
    jobs = []
    per_tenant = num_jobs // len(SOAK_WEIGHTS)
    for tenant_index, tenant in enumerate(SOAK_WEIGHTS):
        for job_index in range(per_tenant):
            circuit, seed = _soak_request(tenant_index, job_index)
            jobs.append(
                service.submit(
                    circuit,
                    tenant=tenant,
                    shots=SOAK_SHOTS,
                    seed=seed,
                    simulator_config=(
                        process_config
                        if tenant == SOAK_PROCESS_TENANT
                        else None
                    ),
                )
            )
            clock.advance(0.001)
    plan = FaultPlan(
        injections=(KillWorker(worker=0, after=kill_after, kinds=("task",)),)
    )
    with installed_plan(plan):
        results = await asyncio.gather(*(job.future for job in jobs))
        await service.drain()
    stats = service.stats()
    dispatch = list(service.dispatch_order())
    await service.close()
    assert_no_leaks()

    # Fairness: the fully-backlogged prefix must equal the analytic DRR
    # schedule, and no tenant may ever starve while it has work queued.
    weight_sum = sum(SOAK_WEIGHTS.values())
    full_rounds = min(
        per_tenant // weight for weight in SOAK_WEIGHTS.values()
    )
    prefix = drr_reference_prefix(SOAK_WEIGHTS, full_rounds)
    fairness_ok = dispatch[: len(prefix)] == prefix
    starvation_gaps = {
        tenant: max_gap(dispatch, tenant) for tenant in SOAK_WEIGHTS
    }
    starvation_ok = all(gap <= weight_sum for gap in starvation_gaps.values())

    # Recovery: the injected worker kill must have been healed mid-soak.
    recoveries = sum(
        1
        for result in results
        if result.report.get("recovery") is not None
    )

    # Cache bit-identity: every distinct request is rerun cold and compared
    # canonically against the (mostly cached) service answers.  The cold
    # reruns run under an *empty* installed plan so a CI chaos plan in the
    # environment cannot inject faults into the reference runs.
    mismatches = 0
    checked = 0
    seen: dict[tuple[int, int], str] = {}
    with installed_plan(FaultPlan()):
        for job_number, result in enumerate(results):
            tenant_index = job_number // per_tenant
            tenant = list(SOAK_WEIGHTS)[tenant_index]
            job_index = job_number % per_tenant
            circuit, seed = _soak_request(tenant_index, job_index)
            unique = (
                SOAK_UNIQUE_PROCESS
                if tenant == SOAK_PROCESS_TENANT
                else SOAK_UNIQUE_THREAD
            )
            request_id = (tenant_index, job_index % unique)
            if request_id not in seen:
                options = (
                    {"config": process_config}
                    if tenant == SOAK_PROCESS_TENANT
                    else {}
                )
                cold = repro.run(
                    circuit, shots=SOAK_SHOTS, seed=seed, **options
                )
                seen[request_id] = cold.canonical_json()
            checked += 1
            if result.report.get("recovery") is not None:
                # Recovered results are equivalent but carry recovery
                # counters; their counts must still match the cold run.
                cold_counts = repro.run(
                    circuit,
                    shots=SOAK_SHOTS,
                    seed=seed,
                    config=process_config,
                ).counts
                if result.counts != cold_counts:
                    mismatches += 1
                continue
            if result.canonical_json() != seen[request_id]:
                mismatches += 1

    return {
        "kind": "serve",
        "jobs": num_jobs,
        "tenants": dict(SOAK_WEIGHTS),
        "fairness_rounds_checked": full_rounds,
        "fairness_ok": fairness_ok,
        "starvation_gaps": starvation_gaps,
        "starvation_ok": starvation_ok,
        "recoveries": recoveries,
        "bit_identity_checked": checked,
        "bit_identity_mismatches": mismatches,
        "cache": stats["cache"],
        "dispatched": stats["dispatched"],
    }


def run_soak(num_jobs: int = 500, kill_after: int = 10) -> dict:
    """Run the deterministic soak and time it; returns the summary record."""

    started = time.perf_counter()
    summary = asyncio.run(_run_soak(num_jobs, kill_after))
    summary["duration_seconds"] = time.perf_counter() - started
    return summary
