"""The unified backend API: registry, run(), results, batching, shims.

Covers the ISSUE's required error paths (unknown backend name, double
registration), the Result/ResultSet JSON round trip, batched-run state
isolation between circuits, and the deprecation shims on the old per-class
``run`` aliases.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    Backend,
    BackendError,
    CompressedSimulator,
    DenseSimulator,
    PauliObservable,
    QuantumCircuit,
    Result,
    ResultSet,
    SimulatorConfig,
    available_backends,
    get_backend,
    register_backend,
    state_fidelity,
)
from repro.backends import base as backend_base
from repro.circuits import ghz_circuit, qft_circuit


def small_circuits() -> list[QuantumCircuit]:
    """Three distinct same-width circuits (the batching acceptance shape)."""

    ghz = ghz_circuit(6)
    ghz.name = "ghz6"
    qft = qft_circuit(6)
    qft.name = "qft6"
    mixed = QuantumCircuit(6, name="mixed6").h(0).cx(0, 3).t(3).ry(0.4, 5).ccx(0, 3, 1)
    return [ghz, qft, mixed]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "compressed" in available_backends()
        assert "dense" in available_backends()

    def test_get_backend_instances(self):
        assert get_backend("compressed").name == "compressed"
        assert get_backend("dense").name == "dense"

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(BackendError, match="compressed"):
            get_backend("does-not-exist")

    def test_double_registration_rejected(self):
        @register_backend("test-dummy-backend")
        class DummyBackend(backend_base.Backend):
            name = "test-dummy-backend"

            def _open_session(self, **options):
                return None

            def _execute(self, circuit, **kwargs):  # pragma: no cover
                raise NotImplementedError

        try:
            assert "test-dummy-backend" in available_backends()
            with pytest.raises(BackendError, match="already registered"):
                register_backend("test-dummy-backend")(DummyBackend)
        finally:
            backend_base._REGISTRY.pop("test-dummy-backend", None)

    def test_invalid_name_rejected(self):
        with pytest.raises(BackendError):
            register_backend("")

    def test_run_rejects_non_backend(self):
        with pytest.raises(TypeError, match="backend"):
            repro.run(ghz_circuit(3), backend=42)


class TestRunSingle:
    @pytest.mark.parametrize("backend", ["compressed", "dense"])
    def test_counts_and_metadata(self, backend):
        result = repro.run(ghz_circuit(5), backend=backend, shots=200, seed=9)
        assert isinstance(result, Result)
        assert result.backend == backend
        assert result.num_qubits == 5
        assert sum(result.counts.values()) == 200
        # GHZ: only the all-zeros and all-ones states appear.
        assert set(result.counts) <= {0, 31}
        assert result.metadata["seed"] == 9
        assert result.metadata["wall_seconds"] >= 0.0

    def test_compressed_report_attached(self):
        result = repro.run(ghz_circuit(5), shots=0)
        assert result.report["gates_executed"] == 5
        assert result.counts is None
        assert result.statevector is None
        assert result.metadata["compression_ratio"] > 0

    def test_dense_has_no_report(self):
        result = repro.run(ghz_circuit(5), backend="dense")
        assert result.report is None
        assert result.metadata["memory_bytes"] == (1 << 5) * 16

    def test_statevectors_agree_across_backends(self):
        circuit = qft_circuit(6)
        dense = repro.run(circuit, backend="dense", return_statevector=True)
        compressed = repro.run(circuit, backend="compressed", return_statevector=True)
        assert state_fidelity(
            dense.statevector, compressed.statevector
        ) == pytest.approx(1.0, abs=1e-10)

    def test_same_seed_same_counts_per_backend(self):
        circuit = qft_circuit(5)
        for backend in ("compressed", "dense"):
            first = repro.run(circuit, backend=backend, shots=300, seed=21)
            second = repro.run(circuit, backend=backend, shots=300, seed=21)
            assert first.counts == second.counts

    def test_backend_instance_accepted(self):
        result = repro.run(ghz_circuit(4), backend=get_backend("dense"), shots=10)
        assert result.backend == "dense"
        assert sum(result.counts.values()) == 10

    def test_config_option_reaches_compressed_engine(self):
        result = repro.run(
            ghz_circuit(6), config=SimulatorConfig(num_ranks=4)
        )
        assert result.report["num_ranks"] == 4
        assert result.metadata["num_ranks"] == 4

    def test_dense_rejects_unknown_options(self):
        with pytest.raises(TypeError):
            repro.run(ghz_circuit(4), backend="dense", config=SimulatorConfig())


class TestRunValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one circuit"):
            repro.run([])

    def test_non_circuit_rejected(self):
        with pytest.raises(TypeError, match="QuantumCircuit"):
            repro.run(["not a circuit"])

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError, match="shots"):
            repro.run(ghz_circuit(3), shots=-1)

    def test_observable_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="acts on 2 qubits"):
            repro.run(ghz_circuit(3), observables=PauliObservable("ZZ"))

    def test_non_observable_rejected(self):
        with pytest.raises(TypeError, match="PauliObservable"):
            repro.run(ghz_circuit(3), observables=["ZZ"])

    def test_duplicate_observable_labels_rejected(self):
        observable = PauliObservable("ZZZ")
        with pytest.raises(ValueError, match="unique labels"):
            repro.run(ghz_circuit(3), observables=[observable, observable])


class TestBatchedRuns:
    @pytest.mark.parametrize("backend", ["compressed", "dense"])
    def test_batch_of_three_through_registry(self, backend):
        """ISSUE acceptance: a >=3-circuit batch on both backends by name."""

        circuits = small_circuits()
        results = repro.run(circuits, backend=backend, shots=50, seed=3)
        assert isinstance(results, ResultSet)
        assert len(results) == 3
        assert [result.circuit_name for result in results] == [
            "ghz6",
            "qft6",
            "mixed6",
        ]
        for result in results:
            assert result.backend == backend
            assert sum(result.counts.values()) == 50

    def test_batch_state_isolation(self):
        """Each batched circuit's state is bit-identical to a fresh run.

        The warm simulator is reset between circuits, so no amplitude,
        cache line, controller level or report counter leaks across; the
        final states must match a from-scratch simulator exactly, not just
        approximately.
        """

        circuits = small_circuits()
        results = repro.run(circuits, backend="compressed", return_statevector=True)
        for circuit, result in zip(circuits, results):
            fresh = CompressedSimulator(circuit.num_qubits, SimulatorConfig())
            fresh.apply_circuit(circuit)
            assert np.array_equal(result.statevector, fresh.statevector())
            assert result.report["gates_executed"] == len(circuit)

    def test_batch_report_counters_are_per_circuit(self):
        circuits = [ghz_circuit(6), ghz_circuit(6), ghz_circuit(6)]
        results = repro.run(circuits, backend="compressed")
        executed = [result.report["gates_executed"] for result in results]
        assert executed == [6, 6, 6]
        tasks = [result.report["tasks_executed"] for result in results]
        assert tasks[0] == tasks[1] == tasks[2]

    def test_batch_mixed_widths(self):
        circuits = [ghz_circuit(5), ghz_circuit(7), ghz_circuit(5)]
        results = repro.run(circuits, backend="compressed", shots=20, seed=1)
        assert [result.num_qubits for result in results] == [5, 7, 5]
        for result in results:
            assert set(result.counts) <= {0, (1 << result.num_qubits) - 1}

    def test_per_circuit_seeding_is_order_independent_of_rng_use(self):
        """Sampling of circuit i must not shift circuit i+1's samples."""

        circuits = small_circuits()
        batch = repro.run(circuits, backend="compressed", shots=100, seed=77)
        # Re-run with observables added (extra rng-free work per circuit):
        # the counts must be unchanged because each circuit has its own
        # generator spawned from the master seed.
        observable = PauliObservable.single("Z", 0, 6)
        with_obs = repro.run(
            circuits, backend="compressed", shots=100, seed=77, observables=observable
        )
        for plain, extra in zip(batch, with_obs):
            assert plain.counts == extra.counts


class TestResultSerialisation:
    def make_result(self) -> Result:
        return repro.run(
            ghz_circuit(5),
            shots=40,
            seed=2,
            observables=PauliObservable.single("Z", 0, 5).with_label("Z0"),
            return_statevector=True,
        )

    def test_result_json_round_trip(self):
        result = self.make_result()
        restored = Result.from_json(result.to_json())
        assert restored.backend == result.backend
        assert restored.circuit_name == result.circuit_name
        assert restored.num_qubits == result.num_qubits
        assert restored.shots == result.shots
        assert restored.counts == result.counts
        assert restored.expectations == result.expectations
        assert restored.report == result.report
        assert restored.metadata == result.metadata
        assert np.array_equal(restored.statevector, result.statevector)

    def test_counts_keys_are_ints_after_round_trip(self):
        restored = Result.from_json(self.make_result().to_json())
        assert all(isinstance(key, int) for key in restored.counts)

    def test_none_fields_round_trip(self):
        result = repro.run(ghz_circuit(4), backend="dense")
        restored = Result.from_json(result.to_json())
        assert restored.counts is None
        assert restored.expectations is None
        assert restored.statevector is None
        assert restored.report is None

    def test_resultset_json_round_trip(self):
        results = repro.run(
            [ghz_circuit(5), qft_circuit(5)], shots=10, seed=4
        )
        restored = ResultSet.from_json(results.to_json())
        assert len(restored) == len(results)
        for original, copy in zip(results, restored):
            assert copy.counts == original.counts
            assert copy.circuit_name == original.circuit_name

    def test_resultset_sequence_protocol(self):
        results = repro.run([ghz_circuit(4), ghz_circuit(4), ghz_circuit(4)])
        assert len(results[1:]) == 2
        assert isinstance(results[1:], ResultSet)
        assert results[0].circuit_name == "ghz_4"
        assert [r.backend for r in results] == ["compressed"] * 3

    def test_expectation_accessors(self):
        observable = PauliObservable.single("Z", 0, 4).with_label("Z0")
        results = repro.run(
            [ghz_circuit(4), ghz_circuit(4)], observables=observable
        )
        assert results.expectations("Z0") == [
            results[0].expectation("Z0"),
            results[1].expectation("Z0"),
        ]
        with pytest.raises(KeyError):
            results[0].expectation("missing")


class TestDeprecationShims:
    def test_compressed_run_alias_warns_and_works(self, simulator_config):
        simulator = CompressedSimulator(4, simulator_config(block_amplitudes=4))
        with pytest.warns(DeprecationWarning, match="repro.run"):
            report = simulator.run(ghz_circuit(4))
        assert report.gates_executed == 4

    def test_dense_run_alias_warns_and_works(self):
        simulator = DenseSimulator(4)
        with pytest.warns(DeprecationWarning, match="repro.run"):
            simulator.run(ghz_circuit(4))
        assert simulator.gate_count == 4


class TestFidelityTrackingConfig:
    """Satellite: SimulatorConfig.track_fidelity_bound is finally wired."""

    def test_tracking_on_records_per_gate(self, simulator_config):
        config = simulator_config(
            track_fidelity_bound=True, start_lossless=False, error_levels=(1e-2,)
        )
        simulator = CompressedSimulator(6, config)
        report = simulator.apply_circuit(ghz_circuit(6))
        assert simulator.fidelity_tracker is not None
        assert simulator.fidelity_tracker.num_gates == 6
        assert report.fidelity_lower_bound == pytest.approx((1 - 1e-2) ** 6)

    def test_tracking_off_reports_none(self, simulator_config):
        config = simulator_config(
            track_fidelity_bound=False, start_lossless=False, error_levels=(1e-2,)
        )
        simulator = CompressedSimulator(6, config)
        report = simulator.apply_circuit(ghz_circuit(6))
        assert simulator.fidelity_tracker is None
        assert report.fidelity_lower_bound is None
        assert "not tracked" in report.summary()
        assert report.as_dict()["fidelity_lower_bound"] is None

    def test_tracking_off_through_unified_api(self):
        result = repro.run(
            ghz_circuit(6),
            config=SimulatorConfig(track_fidelity_bound=False),
        )
        assert result.report["fidelity_lower_bound"] is None

    def test_tracking_off_survives_reset_and_checkpoint(
        self, simulator_config, tmp_path
    ):
        from repro import load_checkpoint, save_checkpoint

        config = simulator_config(track_fidelity_bound=False)
        simulator = CompressedSimulator(6, config)
        simulator.apply_circuit(ghz_circuit(6))
        path = tmp_path / "no-fidelity.ckpt"
        save_checkpoint(simulator, path)
        resumed = load_checkpoint(path, config=config)
        assert resumed.fidelity_tracker is None
        # The flag is persisted: a config-less load must not silently turn
        # tracking back on and claim a perfect bound.
        default_load = load_checkpoint(path)
        assert default_load.fidelity_tracker is None
        assert default_load.report().fidelity_lower_bound is None
        simulator.reset()
        assert simulator.fidelity_tracker is None
        assert simulator.gate_count == 0


class TestSimulatorReset:
    def test_reset_matches_fresh_simulator(self, simulator_config):
        config = simulator_config(num_ranks=2, block_amplitudes=8)
        warm = CompressedSimulator(6, config)
        warm.apply_circuit(qft_circuit(6))
        warm.reset()
        warm.apply_circuit(ghz_circuit(6))
        fresh = CompressedSimulator(6, config)
        fresh.apply_circuit(ghz_circuit(6))
        assert np.array_equal(warm.statevector(), fresh.statevector())
        warm_dict = warm.report().as_dict()
        fresh_dict = fresh.report().as_dict()
        for counter in (
            "gates_executed",
            "tasks_executed",
            "compress_calls",
            "decompress_calls",
            "cache_hits",
            "cache_misses",
            "communication_bytes",
            "block_exchanges",
            "fidelity_lower_bound",
            "final_error_bound",
        ):
            assert warm_dict[counter] == fresh_dict[counter]

    def test_reset_counters_and_cache(self, simulator_config):
        simulator = CompressedSimulator(6, simulator_config())
        simulator.apply_circuit(qft_circuit(6))
        assert simulator.gate_count > 0
        simulator.reset()
        assert simulator.gate_count == 0
        report = simulator.report()
        assert report.gates_executed == 0
        assert report.cache_hits == 0 and report.cache_misses == 0
        assert report.communication_bytes == 0
        assert simulator.controller.current_bound == 0.0

    def test_reset_to_basis_state(self, simulator_config):
        simulator = CompressedSimulator(4, simulator_config(block_amplitudes=4))
        simulator.apply_circuit(ghz_circuit(4))
        simulator.reset(initial_basis_state=5)
        assert simulator.probability_of(5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            simulator.reset(initial_basis_state=1 << 4)
