"""Unit tests for the bit-plane / XOR leading-zero primitives (Solution C core)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import bitplane
from repro.compression.interface import CompressorError


class TestSignificantBitCount:
    def test_paper_example_exp_of_bound(self):
        # Eq. 12 example: EXP(0.01) = -7, so 12 - (-7) = 19 significant bits.
        assert bitplane.significant_bit_count(0.01) == 19

    @pytest.mark.parametrize(
        "bound,expected",
        [(1e-1, 12 + 4), (1e-2, 12 + 7), (1e-3, 12 + 10), (1e-4, 12 + 14), (1e-5, 12 + 17)],
    )
    def test_paper_error_levels(self, bound, expected):
        assert bitplane.significant_bit_count(bound) == expected

    def test_monotone_in_bound(self):
        counts = [bitplane.significant_bit_count(b) for b in (1e-1, 1e-3, 1e-6, 1e-9)]
        assert counts == sorted(counts)

    def test_bound_of_one_keeps_sign_exponent_only(self):
        assert bitplane.significant_bit_count(1.0) == bitplane.DOUBLE_SIGN_EXP_BITS

    def test_rejects_nonpositive(self):
        with pytest.raises(CompressorError):
            bitplane.significant_bit_count(0.0)

    def test_bytes_to_keep_rounds_up(self):
        assert bitplane.bytes_to_keep(1e-2) == 3  # 19 bits -> 3 bytes
        assert bitplane.bytes_to_keep(1e-1) == 2  # 16 bits -> 2 bytes
        assert 1 <= bitplane.bytes_to_keep(1e-15) <= 8


class TestTruncation:
    def test_truncation_never_increases_magnitude(self, rng):
        data = rng.normal(size=2000) * np.exp(rng.normal(size=2000))
        truncated = bitplane.truncate_bitplanes(data, 24)
        assert np.all(np.abs(truncated) <= np.abs(data))

    @pytest.mark.parametrize("bound", [1e-1, 1e-2, 1e-3, 1e-4, 1e-5])
    def test_truncation_respects_relative_bound(self, bound, rng):
        data = rng.normal(size=4096) * np.exp(rng.normal(size=4096) * 2)
        keep_bits = bitplane.bytes_to_keep(bound) * 8
        truncated = bitplane.truncate_bitplanes(data, keep_bits)
        rel = np.abs(data - truncated) / np.abs(data)
        assert rel.max() <= bound

    def test_keep_all_bits_is_identity(self, rng):
        data = rng.normal(size=64)
        assert np.array_equal(bitplane.truncate_bitplanes(data, 64), data)

    def test_sign_preserved(self):
        data = np.array([-1.2345678, 3.14159, -0.001])
        truncated = bitplane.truncate_bitplanes(data, 20)
        assert np.array_equal(np.sign(truncated), np.sign(data))

    def test_zero_stays_zero(self):
        assert bitplane.truncate_bitplanes(np.zeros(8), 16).sum() == 0.0

    def test_invalid_keep_bits(self):
        with pytest.raises(CompressorError):
            bitplane.truncate_bitplanes(np.zeros(4), 0)
        with pytest.raises(CompressorError):
            bitplane.truncate_bitplanes(np.zeros(4), 65)

    def test_truncation_table_matches_figure13(self):
        # Figure 13(b) uses 3.9921875 and lists 3.984375, 3.96875, ... as the
        # values reached by dropping successive mantissa bits.
        rows = bitplane.truncation_table(3.9921875, max_mantissa_bits=10)
        values = {row["value"] for row in rows}
        assert {3.9921875, 3.984375, 3.96875, 3.9375, 3.875, 3.75, 3.5}.issubset(values)
        # Relative errors grow monotonically as more bits are dropped.
        errors = [row["relative_error"] for row in rows]
        assert errors == sorted(errors)


class TestXorDelta:
    def test_encode_decode_roundtrip(self, rng):
        words = rng.integers(0, 2**63, size=1000, dtype=np.int64).astype(np.uint64)
        assert np.array_equal(
            bitplane.xor_delta_decode(bitplane.xor_delta_encode(words)), words
        )

    def test_first_word_unchanged(self):
        words = np.array([12345, 999, 999], dtype=np.uint64)
        xored = bitplane.xor_delta_encode(words)
        assert xored[0] == 12345
        assert xored[2] == 0  # identical consecutive words XOR to zero

    def test_empty_input(self):
        empty = np.zeros(0, dtype=np.uint64)
        assert bitplane.xor_delta_encode(empty).size == 0
        assert bitplane.xor_delta_decode(empty).size == 0


class TestLeadingZeroStream:
    @pytest.mark.parametrize("keep_bytes", [1, 2, 3, 5, 8])
    def test_pack_unpack_roundtrip(self, keep_bytes, rng):
        data = rng.normal(size=500) * np.exp(rng.normal(size=500))
        truncated = bitplane.truncate_bitplanes(data, keep_bytes * 8)
        xored = bitplane.xor_delta_encode(truncated.view(np.uint64))
        codes, suffix = bitplane.pack_leading_zero_stream(xored, keep_bytes)
        recovered = bitplane.unpack_leading_zero_stream(
            codes, suffix, data.size, keep_bytes
        )
        assert np.array_equal(recovered, xored)

    def test_identical_values_produce_short_suffix(self):
        words = np.full(256, np.float64(0.5).view(np.uint64) if False else 4602678819172646912, dtype=np.uint64)
        xored = bitplane.xor_delta_encode(words)
        codes, suffix = bitplane.pack_leading_zero_stream(xored, 8)
        # After the first word every XOR is zero: 3 leading zero bytes coded,
        # so at most 5 suffix bytes per word remain.
        assert len(suffix) <= 8 + (words.size - 1) * 5

    def test_zero_count(self):
        recovered = bitplane.unpack_leading_zero_stream(b"", b"", 0, 4)
        assert recovered.size == 0

    def test_suffix_length_mismatch_raises(self):
        words = np.arange(16, dtype=np.uint64)
        codes, suffix = bitplane.pack_leading_zero_stream(words, 4)
        with pytest.raises(CompressorError):
            bitplane.unpack_leading_zero_stream(codes, suffix[:-1], 16, 4)

    def test_invalid_keep_bytes(self):
        with pytest.raises(CompressorError):
            bitplane.pack_leading_zero_stream(np.zeros(4, dtype=np.uint64), 0)

    def test_leading_zero_byte_counts(self):
        # 0x00000000000000FF has 7 leading zero bytes -> clamped to 3.
        words = np.array([0xFF, 0xFF00000000000000, 0], dtype=np.uint64)
        counts = bitplane.leading_zero_bytes(words, 8)
        assert counts[0] == 3  # clamped two-bit code
        assert counts[1] == 0
        assert counts[2] == 3
