"""Unit tests for repro.compression.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import XorBitplaneCompressor, metrics


class TestBasicMetrics:
    def test_compression_ratio(self):
        assert metrics.compression_ratio(100, 25) == 4.0
        assert metrics.compression_ratio(100, 0) == float("inf")

    def test_pointwise_absolute_errors(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.5, 2.0])
        assert np.allclose(metrics.pointwise_absolute_errors(a, b), [0.0, 0.5, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            metrics.pointwise_absolute_errors(np.zeros(3), np.zeros(4))

    def test_pointwise_relative_errors(self):
        a = np.array([2.0, 0.0, -4.0])
        b = np.array([1.0, 0.0, -5.0])
        rel = metrics.pointwise_relative_errors(a, b)
        assert rel[0] == pytest.approx(0.5)
        assert rel[1] == 0.0
        assert rel[2] == pytest.approx(0.25)

    def test_relative_error_zero_original_nonzero_recovered(self):
        rel = metrics.pointwise_relative_errors(np.array([0.0]), np.array([1.0]))
        assert np.isinf(rel[0])

    def test_max_pointwise_relative_error(self):
        a = np.array([1.0, 10.0])
        b = np.array([1.1, 10.0])
        assert metrics.max_pointwise_relative_error(a, b) == pytest.approx(0.1)

    def test_per_block_max(self):
        a = np.array([1.0, 1.0, 1.0, 1.0])
        b = np.array([1.0, 1.1, 1.0, 1.01])
        per_block = metrics.per_block_max_relative_error(a, b, block_size=2)
        assert per_block.shape == (2,)
        assert per_block[0] == pytest.approx(0.1)
        assert per_block[1] == pytest.approx(0.01)

    def test_per_block_handles_partial_block(self):
        a = np.ones(5)
        b = np.ones(5)
        assert metrics.per_block_max_relative_error(a, b, 2).shape == (3,)

    def test_per_block_rejects_bad_size(self):
        with pytest.raises(ValueError):
            metrics.per_block_max_relative_error(np.ones(4), np.ones(4), 0)

    def test_throughput(self):
        assert metrics.throughput_mbps(2_000_000, 2.0) == pytest.approx(1.0)
        assert metrics.throughput_mbps(1, 0.0) == float("inf")


class TestNormalizedErrorsAndCDF:
    def test_normalized_errors_within_unit_interval(self, spiky_data):
        bound = 1e-3
        compressor = XorBitplaneCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(spiky_data))
        normalized = metrics.normalized_errors(spiky_data, recovered, bound)
        assert normalized.size > 0
        assert np.all(normalized >= -1.0 - 1e-9)
        assert np.all(normalized <= 1.0 + 1e-9)

    def test_normalized_errors_skip_zero_originals(self):
        original = np.array([0.0, 1.0])
        recovered = np.array([0.0, 0.999])
        normalized = metrics.normalized_errors(original, recovered, 1e-2)
        assert normalized.size == 1

    def test_normalized_errors_bad_bound(self):
        with pytest.raises(ValueError):
            metrics.normalized_errors(np.ones(2), np.ones(2), 0.0)

    def test_error_cdf_monotone(self, rng):
        errors = rng.uniform(-1, 1, size=1000)
        x, cdf = metrics.error_cdf(errors, num_points=50)
        assert x.shape == cdf.shape == (50,)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_error_cdf_empty(self):
        x, cdf = metrics.error_cdf(np.zeros(0))
        assert x.size == 0 and cdf.size == 0


class TestAutocorrelation:
    def test_constant_series_is_zero(self):
        assert metrics.lag1_autocorrelation(np.ones(100)) == 0.0

    def test_short_series_is_zero(self):
        assert metrics.lag1_autocorrelation(np.array([1.0])) == 0.0

    def test_alternating_series_is_negative(self):
        series = np.array([1.0, -1.0] * 500)
        assert metrics.lag1_autocorrelation(series) < -0.9

    def test_smooth_series_is_positive(self):
        series = np.sin(np.linspace(0, 4 * np.pi, 2000))
        assert metrics.lag1_autocorrelation(series) > 0.9

    def test_white_noise_is_near_zero(self, rng):
        series = rng.normal(size=20000)
        assert abs(metrics.lag1_autocorrelation(series)) < 0.05


class TestEvaluateCompressor:
    def test_bundle_contents(self, qaoa_snapshot):
        compressor = XorBitplaneCompressor(bound=1e-3)
        evaluation = metrics.evaluate_compressor(compressor, qaoa_snapshot, block_size=1024)
        assert evaluation.record.ratio > 1.0
        assert evaluation.per_block_max_rel.max() <= 1e-3
        assert abs(evaluation.lag1_error_autocorrelation) < 0.5
        as_dict = evaluation.as_dict()
        assert "ratio" in as_dict and "lag1_error_autocorrelation" in as_dict
