"""Integration tests: the compressed simulator against the dense reference.

These are the tests that validate the paper's central claim end to end: the
blocked, compressed, (optionally) lossy simulation reproduces the full-state
simulation — exactly under lossless compression, and within the fidelity
bound under lossy compression.

Configuration boilerplate lives in the ``simulator_config`` factory fixture
(``tests/conftest.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import grover_circuit
from repro.circuits import QuantumCircuit, ghz_circuit, qft_circuit, uniform_superposition
from repro.core import CompressedSimulator
from repro.distributed import SimulatedCommunicator
from repro.statevector import simulate_statevector, state_fidelity

PARTITION_SHAPES = [
    # (num_qubits, num_ranks, block_amplitudes) exercising all three segments
    (6, 1, 64),    # single block: everything local
    (6, 1, 16),    # multiple blocks, single rank
    (6, 4, 8),     # multi-rank, multi-block
    (7, 2, 16),
    (8, 8, 4),     # tiny blocks, many ranks
]


class TestLosslessAgreementWithDense:
    @pytest.mark.parametrize("shape", PARTITION_SHAPES)
    def test_qft_matches_dense(self, shape, simulator_config):
        num_qubits, ranks, block = shape
        circuit = qft_circuit(num_qubits)
        simulator = CompressedSimulator(
            num_qubits, simulator_config(num_ranks=ranks, block_amplitudes=block)
        )
        simulator.apply_circuit(circuit)
        dense = simulate_statevector(circuit)
        assert state_fidelity(simulator.statevector(), dense) == pytest.approx(1.0, abs=1e-10)

    @pytest.mark.parametrize("shape", PARTITION_SHAPES)
    def test_random_gate_sequence_matches_dense(self, shape, rng, simulator_config):
        num_qubits, ranks, block = shape
        circuit = QuantumCircuit(num_qubits)
        gate_pool = ["h", "x", "t", "sx", "s"]
        for _ in range(60):
            kind = rng.integers(3)
            if kind == 0:
                circuit.add(gate_pool[int(rng.integers(len(gate_pool)))], int(rng.integers(num_qubits)))
            elif kind == 1:
                a, b = rng.choice(num_qubits, size=2, replace=False)
                circuit.cx(int(a), int(b))
            else:
                a, b, c = rng.choice(num_qubits, size=3, replace=False)
                circuit.ccx(int(a), int(b), int(c))
        simulator = CompressedSimulator(
            num_qubits, simulator_config(num_ranks=ranks, block_amplitudes=block)
        )
        simulator.apply_circuit(circuit)
        dense = simulate_statevector(circuit)
        # Lossless compression: states agree to machine precision amplitude by
        # amplitude, not just in fidelity.
        assert np.allclose(simulator.statevector(), dense, atol=1e-10)

    def test_controlled_gates_across_every_segment(self, simulator_config):
        # Explicitly place controls/targets in each index segment combination.
        num_qubits, ranks, block = 8, 4, 16  # offsets 0-3, block 4-5, rank 6-7
        combos = [
            (0, 2), (0, 5), (0, 7),   # local target, {local, block, rank} control
            (4, 1), (4, 5), (4, 6),   # block target
            (6, 0), (6, 4), (6, 7),   # rank target
        ]
        circuit = QuantumCircuit(num_qubits)
        for qubit in range(num_qubits):
            circuit.h(qubit)
        for target, control in combos:
            circuit.cx(control, target)
            circuit.cp(0.3, control, target)
        simulator = CompressedSimulator(
            num_qubits, simulator_config(num_ranks=ranks, block_amplitudes=block)
        )
        simulator.apply_circuit(circuit)
        dense = simulate_statevector(circuit)
        assert np.allclose(simulator.statevector(), dense, atol=1e-10)

    def test_initial_basis_state(self, simulator_config):
        simulator = CompressedSimulator(
            6, simulator_config(num_ranks=2, block_amplitudes=8), initial_basis_state=37
        )
        assert simulator.probability_of(37) == pytest.approx(1.0)

    def test_norm_preserved(self, simulator_config):
        simulator = CompressedSimulator(8, simulator_config(num_ranks=2, block_amplitudes=32))
        simulator.apply_circuit(qft_circuit(8))
        assert simulator.norm_squared() == pytest.approx(1.0, abs=1e-10)


class TestLossyFidelity:
    def test_lossy_state_within_fidelity_bound(self, simulator_config):
        num_qubits = 10
        circuit = qft_circuit(num_qubits)
        config = simulator_config(
            num_ranks=2,
            block_amplitudes=64,
            start_lossless=False,
            error_levels=(1e-3, 1e-2, 1e-1),
        )
        simulator = CompressedSimulator(num_qubits, config)
        report = simulator.apply_circuit(circuit)
        dense = simulate_statevector(circuit)
        fidelity = simulator.fidelity_vs(dense)
        assert fidelity >= report.fidelity_lower_bound - 1e-12
        assert fidelity > 0.9
        assert report.final_error_bound == 1e-3

    def test_looser_bound_gives_lower_fidelity_bound(self, simulator_config):
        num_qubits = 8
        circuit = qft_circuit(num_qubits)
        fidelities = {}
        for bound in (1e-5, 1e-1):
            config = simulator_config(
                num_ranks=1,
                block_amplitudes=64,
                start_lossless=False,
                error_levels=(bound,),
            )
            simulator = CompressedSimulator(num_qubits, config)
            report = simulator.apply_circuit(circuit)
            fidelities[bound] = report.fidelity_lower_bound
        assert fidelities[1e-5] > fidelities[1e-1]

    def test_fidelity_bound_formula(self, simulator_config):
        config = simulator_config(
            num_ranks=1, block_amplitudes=32, start_lossless=False, error_levels=(1e-2,)
        )
        simulator = CompressedSimulator(6, config)
        simulator.apply_circuit(uniform_superposition(6))
        assert simulator.fidelity_tracker.lower_bound == pytest.approx((1 - 1e-2) ** 6)


class TestAdaptiveEscalation:
    def test_escalates_under_tight_budget(self, simulator_config):
        num_qubits = 10
        # A budget far below the dense size forces lossy compression quickly.
        budget = (1 << num_qubits) * 16 // 4
        config = simulator_config(
            num_ranks=1,
            block_amplitudes=128,
            memory_budget_bytes=budget,
            error_levels=(1e-5, 1e-3, 1e-1),
        )
        simulator = CompressedSimulator(num_qubits, config)
        report = simulator.apply_circuit(qft_circuit(num_qubits))
        assert report.escalations >= 1
        assert report.final_error_bound > 0.0
        assert simulator.controller.events[0].from_bound == 0.0

    def test_no_escalation_with_roomy_budget(self, simulator_config):
        config = simulator_config(
            num_ranks=1,
            block_amplitudes=64,
            memory_budget_bytes=10**9,
        )
        simulator = CompressedSimulator(8, config)
        report = simulator.apply_circuit(ghz_circuit(8))
        assert report.escalations == 0
        assert report.final_error_bound == 0.0


class TestBlockCacheBehaviour:
    def test_grover_benefits_from_cache(self, simulator_config):
        # Grover keeps large groups of amplitudes identical, so many block
        # patterns recur (Section 3.4).  The redundancy is strongest in the
        # Hadamard/X layers; mid-diffusion the blocks diverge, so we assert a
        # healthy absolute hit count rather than a majority.
        circuit = grover_circuit(8, marked=5)
        simulator = CompressedSimulator(8, simulator_config(num_ranks=2, block_amplitudes=16))
        report = simulator.apply_circuit(circuit)
        assert report.cache_hits > 300
        assert report.cache_hits / max(1, report.cache_hits + report.cache_misses) > 0.05

    def test_uniform_circuit_has_high_hit_rate(self, simulator_config):
        # A circuit whose state keeps all blocks identical (GHZ preparation)
        # should be served almost entirely from the cache.
        circuit = ghz_circuit(10)
        simulator = CompressedSimulator(10, simulator_config(num_ranks=2, block_amplitudes=32))
        report = simulator.apply_circuit(circuit)
        assert report.cache_hits > report.cache_misses

    def test_cache_and_no_cache_agree(self, simulator_config):
        circuit = grover_circuit(7, marked=3)
        dense = simulate_statevector(circuit)
        for use_cache in (True, False):
            config = simulator_config(
                num_ranks=2, block_amplitudes=16, use_block_cache=use_cache
            )
            simulator = CompressedSimulator(7, config)
            simulator.apply_circuit(circuit)
            assert np.allclose(simulator.statevector(), dense, atol=1e-10)

    def test_cache_disabled_configuration(self, simulator_config):
        config = simulator_config(num_ranks=1, block_amplitudes=32, use_block_cache=False)
        simulator = CompressedSimulator(6, config)
        report = simulator.apply_circuit(ghz_circuit(6))
        assert simulator.cache is None
        assert report.cache_hits == 0


class TestCommunicationAccounting:
    def test_rank_qubit_gates_generate_exchanges(self, simulator_config):
        simulator = CompressedSimulator(7, simulator_config(num_ranks=4, block_amplitudes=8))
        # Qubits 5 and 6 select the rank (7 qubits, 4 ranks).
        circuit = QuantumCircuit(7).h(6).h(5).h(0)
        report = simulator.apply_circuit(circuit)
        assert report.block_exchanges > 0
        assert report.communication_bytes > 0

    def test_single_rank_never_communicates(self, simulator_config):
        simulator = CompressedSimulator(7, simulator_config(num_ranks=1, block_amplitudes=16))
        report = simulator.apply_circuit(qft_circuit(7))
        assert report.block_exchanges == 0
        assert report.communication_bytes == 0

    def test_bandwidth_model_produces_communication_time(self, simulator_config):
        comm = SimulatedCommunicator(4, bandwidth_bytes_per_s=1e6, latency_s=1e-4)
        config = simulator_config(num_ranks=4, block_amplitudes=8)
        simulator = CompressedSimulator(7, config, comm=comm)
        report = simulator.apply_circuit(QuantumCircuit(7).h(6))
        assert report.communication_seconds > 0


class TestStateQueries:
    def test_probability_and_sampling_consistency(self, rng, simulator_config):
        circuit = grover_circuit(8, marked=42)
        simulator = CompressedSimulator(
            8, simulator_config(num_ranks=2, block_amplitudes=32)
        )
        simulator.apply_circuit(circuit)
        assert simulator.probability_of(42) > 0.9
        counts = simulator.sample_counts(200, rng)
        assert sum(counts.values()) == 200
        assert counts.get(42, 0) > 150

    def test_block_probabilities_sum_to_one(self, simulator_config):
        simulator = CompressedSimulator(
            8, simulator_config(num_ranks=4, block_amplitudes=16)
        )
        simulator.apply_circuit(uniform_superposition(8))
        assert simulator.block_probabilities().sum() == pytest.approx(1.0, abs=1e-10)

    def test_report_breakdown_fractions_sum_to_one(self, simulator_config):
        simulator = CompressedSimulator(
            6, simulator_config(num_ranks=2, block_amplitudes=16)
        )
        report = simulator.apply_circuit(qft_circuit(6))
        assert sum(report.breakdown().values()) == pytest.approx(1.0)
        assert report.gates_executed == len(qft_circuit(6))
        assert report.min_compression_ratio > 1.0

    def test_gate_outside_register_rejected(self, simulator_config):
        from repro.circuits import standard_gate

        simulator = CompressedSimulator(4, simulator_config(num_ranks=1, block_amplitudes=4))
        with pytest.raises(ValueError):
            simulator.apply_gate(standard_gate("h", 10))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            CompressedSimulator(0)
