"""Communicator conformance: simulated vs process-backed implementations.

One scripted traffic pattern runs against both communication tiers —
:class:`SimulatedCommunicator` (accounting only) and
:class:`ProcessCommunicator` endpoints over a shared-memory arena — and the
suite asserts they agree on

* exchange semantics: each peer of a ``sendrecv_bytes`` pair receives
  exactly the bytes the other sent (trivially true for the simulated tier,
  which moves no payloads), and allreduce returns the bit-identical float on
  every rank, and
* stats accounting: after :func:`aggregate_rank_stats` folds the
  per-endpoint counters onto the simulated conventions, every
  :class:`CommunicationStats` field matches the simulated run of the same
  script (both tiers charge collectives with the same recursive-doubling
  volume model; see ``process_comm``'s module docstring).

The process endpoints are exercised from threads of this test process — the
arena is plain shared memory, so attachment is address-space-agnostic; the
ranked execution tier attaches the very same class from worker processes
(covered by ``tests/test_ranked.py``).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.distributed import (
    CommunicationStats,
    ProcessCommTimeout,
    ProcessCommunicator,
    RankCommArena,
    SimulatedCommunicator,
    aggregate_rank_stats,
)


def _payload(rank: int, size: int) -> bytes:
    return bytes([(rank * 37 + i) % 256 for i in range(size)])


def _run_process_script(
    num_ranks: int,
    per_rank_script,
    channel_capacity: int = 4096,
    timeout: float = 30.0,
):
    """Run *per_rank_script(endpoint)* on one thread per rank; returns
    (per-rank results, per-rank stats) in rank order."""

    arena = RankCommArena(num_ranks, channel_capacity=channel_capacity)
    results: list = [None] * num_ranks
    errors: list = []
    stats: list = [None] * num_ranks

    def runner(rank: int) -> None:
        endpoint = arena.endpoint(rank, timeout=timeout)
        try:
            results[rank] = per_rank_script(endpoint)
            stats[rank] = endpoint.stats.as_dict()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append((rank, exc))
        finally:
            endpoint.close()

    threads = [
        threading.Thread(target=runner, args=(rank,), daemon=True)
        for rank in range(num_ranks)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
    finally:
        arena.close()
    if errors:
        rank, exc = errors[0]
        raise AssertionError(f"rank {rank} failed: {exc!r}") from exc
    return results, stats


PAYLOAD_SIZE = 96


def _conformance_script_simulated(num_ranks: int) -> CommunicationStats:
    """The scripted traffic pattern, run through the accounting tier."""

    comm = SimulatedCommunicator(num_ranks)
    for rank_a, rank_b in ((0, 1),) if num_ranks == 2 else ((0, 1), (2, 3), (0, 2)):
        comm.exchange_blocks(rank_a, rank_b, PAYLOAD_SIZE)
    comm.allreduce_sum([float(r + 1) for r in range(num_ranks)])
    comm.barrier()
    return comm.stats


def _conformance_script_process(endpoint: ProcessCommunicator):
    """The same pattern, run for real from one endpoint's perspective."""

    num_ranks = endpoint.num_ranks
    rank = endpoint.rank
    pairs = ((0, 1),) if num_ranks == 2 else ((0, 1), (2, 3), (0, 2))
    received = []
    for rank_a, rank_b in pairs:
        if rank == rank_a:
            received.append(endpoint.sendrecv_bytes(rank_b, _payload(rank, PAYLOAD_SIZE)))
        elif rank == rank_b:
            received.append(endpoint.sendrecv_bytes(rank_a, _payload(rank, PAYLOAD_SIZE)))
    total = endpoint.allreduce_sum(float(rank + 1))
    endpoint.barrier()
    return received, total


class TestConformance:
    """Same script, both tiers, field-by-field stats parity."""

    @pytest.mark.parametrize("num_ranks", [2, 4])
    def test_stats_parity(self, num_ranks):
        simulated = _conformance_script_simulated(num_ranks)
        _, per_rank = _run_process_script(num_ranks, _conformance_script_process)
        aggregated = aggregate_rank_stats(per_rank)
        assert aggregated.as_dict() == simulated.as_dict()

    @pytest.mark.parametrize("num_ranks", [2, 4])
    def test_payload_delivery(self, num_ranks):
        results, _ = _run_process_script(num_ranks, _conformance_script_process)
        pairs = ((0, 1),) if num_ranks == 2 else ((0, 1), (2, 3), (0, 2))
        for rank_a, rank_b in pairs:
            received_by_a, _ = results[rank_a]
            received_by_b, _ = results[rank_b]
            # Each side of the pair received exactly the peer's payload.
            assert _payload(rank_b, PAYLOAD_SIZE) in received_by_a
            assert _payload(rank_a, PAYLOAD_SIZE) in received_by_b

    @pytest.mark.parametrize("num_ranks", [2, 4])
    def test_allreduce_value_matches_simulated(self, num_ranks):
        values = [float(r + 1) for r in range(num_ranks)]
        expected = SimulatedCommunicator(num_ranks).allreduce_sum(values)
        results, _ = _run_process_script(num_ranks, _conformance_script_process)
        totals = {total for _, total in results}
        # Every rank returns the bit-identical global sum.
        assert totals == {expected}


class TestProcessCommunicator:
    """Behaviour specific to the real shared-memory implementation."""

    def test_chunked_transfer_both_directions(self):
        # Payloads far larger than the channel capacity must stream through
        # in chunks without deadlocking, even when both sides send at once.
        big0 = _payload(0, 5000)
        big1 = _payload(1, 7777)

        def script(endpoint):
            mine, theirs = (big0, big1) if endpoint.rank == 0 else (big1, big0)
            got = endpoint.sendrecv_bytes(1 - endpoint.rank, mine)
            assert got == theirs
            return len(got)

        results, stats = _run_process_script(2, script, channel_capacity=64)
        assert results == [7777, 5000]
        assert stats[0]["bytes_sent"] == 5000
        assert stats[1]["bytes_sent"] == 7777

    def test_empty_payload(self):
        def script(endpoint):
            return endpoint.sendrecv_bytes(1 - endpoint.rank, b"")

        results, _ = _run_process_script(2, script)
        assert results == [b"", b""]

    def test_asymmetric_payload_sizes(self):
        def script(endpoint):
            mine = _payload(endpoint.rank, 10 if endpoint.rank == 0 else 3000)
            return endpoint.sendrecv_bytes(1 - endpoint.rank, mine)

        results, _ = _run_process_script(2, script, channel_capacity=128)
        assert results[0] == _payload(1, 3000)
        assert results[1] == _payload(0, 10)

    def test_exchange_with_self_rejected(self):
        arena = RankCommArena(2)
        try:
            endpoint = arena.endpoint(0)
            with pytest.raises(ValueError, match="self"):
                endpoint.sendrecv_bytes(0, b"x")
            endpoint.close()
        finally:
            arena.close()

    def test_non_neighbour_exchange_rejected(self):
        # Ranks 0 and 3 differ in two rank bits: no channel exists, exactly
        # as no gate plan can pair them.
        arena = RankCommArena(4)
        try:
            endpoint = arena.endpoint(0)
            with pytest.raises(ValueError, match="neighbour"):
                endpoint.sendrecv_bytes(3, b"x")
            endpoint.close()
        finally:
            arena.close()

    def test_peer_out_of_range_rejected(self):
        arena = RankCommArena(2)
        try:
            endpoint = arena.endpoint(0)
            with pytest.raises(ValueError, match="range"):
                endpoint.sendrecv_bytes(5, b"x")
            endpoint.close()
        finally:
            arena.close()

    def test_dead_peer_times_out_promptly(self):
        # A sendrecv whose peer never shows up must fail with the dedicated
        # timeout error, not hang — this is the communicator-level half of
        # the rank-death story (the pool detects dead processes separately).
        arena = RankCommArena(2)
        try:
            endpoint = arena.endpoint(0, timeout=0.3)
            start = time.monotonic()
            with pytest.raises(ProcessCommTimeout):
                endpoint.sendrecv_bytes(1, b"payload")
            assert time.monotonic() - start < 5.0
            endpoint.close()
        finally:
            arena.close()

    def test_barrier_times_out_without_peers(self):
        arena = RankCommArena(2)
        try:
            endpoint = arena.endpoint(1, timeout=0.3)
            with pytest.raises(ProcessCommTimeout, match="barrier"):
                endpoint.barrier()
            endpoint.close()
        finally:
            arena.close()

    def test_repeated_collectives_stay_in_step(self):
        def script(endpoint):
            totals = []
            for round_index in range(5):
                totals.append(
                    endpoint.allreduce_sum(float(endpoint.rank + round_index))
                )
                endpoint.barrier()
            return totals

        results, stats = _run_process_script(4, script)
        expected = [
            float(sum(rank + round_index for rank in range(4)))
            for round_index in range(5)
        ]
        assert all(result == expected for result in results)
        assert all(entry["allreduces"] == 5 for entry in stats)
        assert all(entry["barriers"] == 5 for entry in stats)

    def test_arena_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RankCommArena(3)
        with pytest.raises(ValueError):
            RankCommArena(2, channel_capacity=0)
        arena = RankCommArena(2)
        try:
            with pytest.raises(ValueError):
                ProcessCommunicator(arena.name, 2, 2)
        finally:
            arena.close()


class TestAggregateRankStats:
    def test_exchange_convention_mapping(self):
        a = CommunicationStats(messages=1, bytes_sent=100, exchanges=1)
        b = CommunicationStats(messages=1, bytes_sent=60, exchanges=1)
        total = aggregate_rank_stats([a, b])
        assert total.messages == 2
        assert total.bytes_sent == 160
        assert total.exchanges == 1

    def test_collectives_counted_once(self):
        per_rank = [
            CommunicationStats(messages=2, bytes_sent=16, allreduces=1, barriers=2)
            for _ in range(4)
        ]
        total = aggregate_rank_stats(per_rank)
        assert total.allreduces == 1
        assert total.barriers == 2
        assert total.messages == 8

    def test_accepts_dicts(self):
        stats = CommunicationStats(messages=3, bytes_sent=7, exchanges=2)
        total = aggregate_rank_stats([stats.as_dict(), stats])
        assert total.messages == 6
        assert total.exchanges == 2
