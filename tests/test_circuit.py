"""Unit tests for repro.circuits.circuit and repro.circuits.library."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import (
    GateError,
    QuantumCircuit,
    ghz_circuit,
    grover_diffusion,
    phase_oracle,
    prepare_basis_state,
    qft_circuit,
    standard_gate,
    uniform_superposition,
)
from repro.statevector import simulate_statevector


class TestCircuitConstruction:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0
        assert circuit.depth() == 0

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_fluent_builders(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2).t(2)
        assert len(circuit) == 4
        names = [gate.name for gate in circuit]
        assert names == ["h", "x", "x", "t"]
        assert circuit[1].controls == (0,)
        assert circuit[2].controls == (0, 1)

    def test_append_validates_register_size(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(GateError):
            circuit.append(standard_gate("h", 5))

    def test_add_by_mnemonic(self):
        circuit = QuantumCircuit(2).add("rz", 1, params=(0.25,))
        assert circuit[0].params == (0.25,)

    def test_extend_and_compose(self):
        first = QuantumCircuit(2).h(0)
        second = QuantumCircuit(2).cx(0, 1)
        first.compose(second)
        assert len(first) == 2

    def test_compose_rejects_larger_circuit(self):
        small = QuantumCircuit(2)
        big = QuantumCircuit(4).h(3)
        with pytest.raises(GateError):
            small.compose(big)

    def test_copy_is_independent(self):
        original = QuantumCircuit(2).h(0)
        clone = original.copy()
        clone.x(1)
        assert len(original) == 1
        assert len(clone) == 2

    def test_swap_decomposes_to_three_cnots(self):
        circuit = QuantumCircuit(2).swap(0, 1)
        assert len(circuit) == 3
        assert all(gate.name == "x" and gate.controls for gate in circuit)

    def test_mcx_and_mcz(self):
        circuit = QuantumCircuit(4).mcx([0, 1, 2], 3).mcz([0, 1], 2)
        assert circuit[0].controls == (0, 1, 2)
        assert circuit[1].name == "z"

    def test_equality(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        c = QuantumCircuit(2).h(1).cx(0, 1)
        assert a == b
        assert a != c

    def test_getitem_slice(self):
        circuit = QuantumCircuit(2).h(0).x(1).z(0)
        assert len(circuit[1:]) == 2


class TestCircuitAnalysis:
    def test_depth_single_qubit_chain(self):
        circuit = QuantumCircuit(1).h(0).t(0).h(0)
        assert circuit.depth() == 3

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(3).h(0).h(1).h(2)
        assert circuit.depth() == 1

    def test_depth_with_entangling_gate(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1).h(0)
        assert circuit.depth() == 3

    def test_stats(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        stats = circuit.stats()
        assert stats.num_gates == 3
        assert stats.num_controlled_gates == 2
        assert stats.num_single_qubit_gates == 1
        assert stats.gate_histogram == {"h": 1, "c1x": 1, "c2x": 1}
        assert stats.as_dict()["num_qubits"] == 3

    def test_qasm_like_dump(self):
        circuit = QuantumCircuit(2).h(0).cp(0.5, 0, 1)
        text = circuit.qasm_like()
        assert "qreg q[2];" in text
        assert "h q[0];" in text
        assert "cp(0.5) q[0], q[1];" in text

    def test_inverse_restores_initial_state(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).t(2).cp(0.3, 1, 2)
        roundtrip = circuit.copy().compose(circuit.inverse())
        state = simulate_statevector(roundtrip)
        expected = np.zeros(8, dtype=complex)
        expected[0] = 1.0
        assert np.allclose(state, expected)

    def test_remapped_circuit(self):
        circuit = QuantumCircuit(3).cx(0, 1)
        remapped = circuit.remapped({0: 2, 1: 0})
        assert remapped[0].controls == (2,)
        assert remapped[0].targets == (0,)


class TestLibraryFragments:
    def test_uniform_superposition_state(self):
        state = simulate_statevector(uniform_superposition(4))
        assert np.allclose(np.abs(state), 0.25)

    def test_prepare_basis_state_int(self):
        state = simulate_statevector(prepare_basis_state(4, 9))
        assert np.argmax(np.abs(state)) == 9

    def test_prepare_basis_state_string(self):
        # "0101" -> qubit3=0 qubit2=1 qubit1=0 qubit0=1 -> index 5
        state = simulate_statevector(prepare_basis_state(4, "0101"))
        assert np.argmax(np.abs(state)) == 5

    def test_prepare_basis_state_validation(self):
        with pytest.raises(ValueError):
            prepare_basis_state(3, "11")
        with pytest.raises(ValueError):
            prepare_basis_state(3, 8)

    def test_phase_oracle_flips_only_marked(self):
        num_qubits = 4
        marked = 11
        plus = uniform_superposition(num_qubits)
        oracle = phase_oracle(num_qubits, [marked])
        circuit = plus.copy().compose(oracle)
        state = simulate_statevector(circuit)
        reference = simulate_statevector(uniform_superposition(num_qubits))
        ratio = state / reference
        assert np.allclose(ratio[marked], -1.0)
        others = np.delete(ratio, marked)
        assert np.allclose(others, 1.0)

    def test_phase_oracle_range_check(self):
        with pytest.raises(ValueError):
            phase_oracle(3, [8])

    def test_grover_diffusion_preserves_uniform_state(self):
        state = simulate_statevector(
            uniform_superposition(4).compose(grover_diffusion(4))
        )
        reference = simulate_statevector(uniform_superposition(4))
        # diffusion = 2|s><s| - I fixes |s> (up to global phase)
        overlap = abs(np.vdot(reference, state))
        assert overlap == pytest.approx(1.0, abs=1e-10)

    def test_qft_of_zero_is_uniform(self):
        state = simulate_statevector(qft_circuit(5))
        assert np.allclose(state, np.full(32, 1 / math.sqrt(32)))

    def test_qft_matches_dft_matrix(self):
        n = 4
        size = 1 << n
        for basis in (1, 7, 12):
            circuit = prepare_basis_state(n, basis).compose(qft_circuit(n))
            state = simulate_statevector(circuit)
            k = np.arange(size)
            expected = np.exp(2j * np.pi * basis * k / size) / math.sqrt(size)
            assert np.allclose(state, expected, atol=1e-10)

    def test_qft_without_swaps_is_bit_reversed(self):
        n = 3
        basis = 5
        swapped = simulate_statevector(
            prepare_basis_state(n, basis).compose(qft_circuit(n, include_swaps=True))
        )
        unswapped = simulate_statevector(
            prepare_basis_state(n, basis).compose(qft_circuit(n, include_swaps=False))
        )
        # Bit-reversing the index ordering of the unswapped result recovers it.
        indices = np.arange(1 << n)
        reversed_indices = np.array(
            [int(format(i, f"0{n}b")[::-1], 2) for i in indices]
        )
        assert np.allclose(swapped, unswapped[reversed_indices], atol=1e-10)

    def test_ghz_state(self):
        state = simulate_statevector(ghz_circuit(5))
        expected = np.zeros(32, dtype=complex)
        expected[0] = expected[-1] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)
