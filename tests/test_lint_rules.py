"""Per-rule tests for :mod:`repro.tools.lint`: offending, clean, suppressed.

Every rule gets at least one snippet it must flag, one it must stay silent
on, and one where a reasoned suppression moves the diagnostic to the
suppressed list.  The seeded deadlock corpus under ``tests/lint_fixtures/``
is asserted flagged with the exact rule id and cycle path.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import LintConfig, lint_paths, lint_source
from repro.tools.lint.cli import main as lint_main
from repro.tools.lint.config import DEFAULT_OPTIONS, project_config

FIXTURES = Path(__file__).parent / "lint_fixtures"


def run(source: str, *rules: str, options: dict | None = None):
    """Lint a dedented snippet with the named rules; returns the report."""

    return lint_source(
        textwrap.dedent(source),
        rules=rules or None,
        options=options if options is not None else DEFAULT_OPTIONS,
    )


def messages(report) -> list[str]:
    return [d.message for d in report.diagnostics]


# ---------------------------------------------------------------------------
# mp-hygiene
# ---------------------------------------------------------------------------


class TestMpHygiene:
    def test_flags_multiprocessing_import(self):
        report = run("import multiprocessing\n", "mp-hygiene")
        assert [d.rule for d in report.diagnostics] == ["mp-hygiene"]
        assert "procpool" in report.diagnostics[0].message

    def test_flags_submodule_from_import(self):
        report = run(
            "from multiprocessing import shared_memory\n", "mp-hygiene"
        )
        assert [d.rule for d in report.diagnostics] == ["mp-hygiene"]

    def test_allowed_file_is_exempt(self):
        report = lint_source(
            "import multiprocessing\n",
            rel="src/repro/core/procpool.py",
            rules=("mp-hygiene",),
            options=DEFAULT_OPTIONS,
        )
        assert report.diagnostics == []

    def test_suppression_with_reason(self):
        report = run(
            "import multiprocessing  "
            "# repro-lint: disable=mp-hygiene -- transport prototype\n",
            "mp-hygiene",
        )
        assert report.diagnostics == []
        assert [d.rule for d in report.suppressed] == ["mp-hygiene"]


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_flags_global_numpy_rng(self):
        report = run(
            """\
            import numpy as np

            def jitter(values):
                np.random.shuffle(values)
                return values
            """,
            "determinism",
        )
        assert [d.rule for d in report.diagnostics] == ["determinism"]
        assert "numpy.random.shuffle" in messages(report)[0]

    def test_flags_stdlib_rng_and_from_import(self):
        report = run(
            """\
            import random
            from random import shuffle

            def pick(items):
                shuffle(items)
                return random.choice(items)
            """,
            "determinism",
        )
        assert len(report.diagnostics) == 2

    def test_flags_time_time(self):
        report = run(
            """\
            import time

            def deadline():
                return time.time() + 5.0
            """,
            "determinism",
        )
        assert [d.rule for d in report.diagnostics] == ["determinism"]
        assert "monotonic" in messages(report)[0]

    def test_seeded_generators_and_monotonic_are_clean(self):
        report = run(
            """\
            import random
            import time

            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                start = time.monotonic()
                return rng.random(), local.random(), start
            """,
            "determinism",
        )
        assert report.diagnostics == []

    def test_suppressed_with_reason(self):
        report = run(
            """\
            import time

            def wall_clock_stamp():
                return time.time()  # repro-lint: disable=determinism -- display only
            """,
            "determinism",
        )
        assert report.diagnostics == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# error-taxonomy
# ---------------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_flags_bare_except(self):
        report = run(
            """\
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
            """,
            "error-taxonomy",
        )
        assert [d.rule for d in report.diagnostics] == ["error-taxonomy"]
        assert "bare 'except:'" in messages(report)[0]

    def test_flags_broad_except_without_reraise(self):
        report = run(
            """\
            def swallow(fn):
                try:
                    fn()
                except Exception:
                    return None
            """,
            "error-taxonomy",
        )
        assert len(report.diagnostics) == 1
        assert "without re-raise" in messages(report)[0]

    def test_broad_except_with_reraise_is_clean(self):
        report = run(
            """\
            def wrap(fn, error_cls):
                try:
                    return fn()
                except Exception as exc:
                    raise error_cls(str(exc)) from exc
            """,
            "error-taxonomy",
        )
        assert report.diagnostics == []

    def test_flags_forbidden_builtin_raise_and_cause(self):
        report = run(
            """\
            def fail(detail):
                raise RuntimeError(detail)

            def chain(exc, detail):
                raise exc from RuntimeError(detail)
            """,
            "error-taxonomy",
        )
        assert len(report.diagnostics) == 2
        assert all("repro.errors" in m for m in messages(report))

    def test_contract_builtins_are_allowed(self):
        report = run(
            """\
            def check(count):
                if count < 0:
                    raise ValueError("count must be non-negative")
                if not isinstance(count, int):
                    raise TypeError("count must be an int")
            """,
            "error-taxonomy",
        )
        assert report.diagnostics == []

    def test_wrapped_standalone_suppression_covers_next_code_line(self):
        # The reason wraps onto a second comment line; the suppression must
        # still reach the 'except' two lines below the marker.
        report = run(
            """\
            def teardown(state):
                try:
                    state.close()
                # repro-lint: disable=error-taxonomy -- best-effort teardown:
                # nothing to report to on the way out
                except Exception:
                    pass
            """,
            "error-taxonomy",
        )
        assert report.diagnostics == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# docstring-coverage
# ---------------------------------------------------------------------------


class TestDocstringCoverage:
    def test_flags_module_class_and_method(self):
        report = run(
            """\
            class Widget:
                def render(self):
                    return None
            """,
            "docstring-coverage",
        )
        kinds = messages(report)
        assert len(kinds) == 3  # module, class, method
        assert any("module has no docstring" in m for m in kinds)
        assert any("'Widget'" in m for m in kinds)
        assert any("'Widget.render'" in m for m in kinds)

    def test_private_and_dunder_and_local_defs_exempt(self):
        report = run(
            '''\
            """Documented module."""

            def _helper():
                return 1

            class Widget:
                """Documented class."""

                def __len__(self):
                    return 0

                def render(self):
                    """Documented method with a local def."""

                    def undocumented_local():
                        return 2

                    return undocumented_local()
            ''',
            "docstring-coverage",
        )
        assert report.diagnostics == []


# ---------------------------------------------------------------------------
# resource-hygiene
# ---------------------------------------------------------------------------


class TestResourceHygiene:
    def test_flags_open_outside_with(self):
        report = run(
            """\
            def slurp(path):
                handle = open(path)
                return handle.read()
            """,
            "resource-hygiene",
        )
        assert [d.rule for d in report.diagnostics] == ["resource-hygiene"]
        assert "with" in messages(report)[0]

    def test_with_open_and_finally_close_are_clean(self):
        report = run(
            """\
            def slurp(path):
                with open(path) as handle:
                    return handle.read()

            def slurp_finally(path):
                handle = open(path)
                try:
                    return handle.read()
                finally:
                    handle.close()
            """,
            "resource-hygiene",
        )
        assert report.diagnostics == []

    def test_flags_unowned_shared_memory(self):
        report = run(
            """\
            from multiprocessing import shared_memory

            def scratch(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                return bytes(shm.buf[:size])
            """,
            "resource-hygiene",
        )
        assert len(report.diagnostics) == 1
        assert "SharedMemory" in messages(report)[0]

    def test_owned_and_transferred_shared_memory_are_clean(self):
        report = run(
            """\
            from multiprocessing import shared_memory

            def make(size):
                return shared_memory.SharedMemory(create=True, size=size)

            class Arena:
                def __init__(self, size):
                    self._shm = shared_memory.SharedMemory(create=True, size=size)

                def close(self):
                    self._shm.close()
                    self._shm.unlink()
            """,
            "resource-hygiene",
        )
        assert report.diagnostics == []

    def test_flags_lost_asyncio_task(self):
        # A bare create_task/ensure_future expression discards the only
        # strong reference: the loop may garbage-collect the task mid-flight.
        report = run(
            """\
            import asyncio

            async def fire_and_forget(coro, loop):
                asyncio.create_task(coro)
                asyncio.ensure_future(coro, loop=loop)
            """,
            "resource-hygiene",
        )
        assert len(report.diagnostics) == 2
        assert all("task spawned and discarded" in m for m in messages(report))

    def test_held_awaited_and_taskgroup_tasks_are_clean(self):
        report = run(
            """\
            import asyncio

            class Service:
                def start(self):
                    self._worker = asyncio.create_task(self._run())

                def close(self):
                    self._worker.cancel()

            async def run_all(coros):
                tasks = [asyncio.create_task(c) for c in coros]
                await asyncio.create_task(coros[0])
                async with asyncio.TaskGroup() as tg:
                    tg.create_task(coros[1])
                return tasks
            """,
            "resource-hygiene",
        )
        assert report.diagnostics == []


# ---------------------------------------------------------------------------
# njit-purity
# ---------------------------------------------------------------------------


class TestNjitPurity:
    def test_flags_object_mode_constructs(self):
        report = run(
            """\
            import pickle

            import numpy as np
            from numba import njit

            @njit(cache=True)
            def kernel(values):
                table = {}
                blob = pickle.dumps(values)
                return f"{np.sum(values)}"
            """,
            "njit-purity",
        )
        assert len(report.diagnostics) == 3
        joined = "\n".join(messages(report))
        assert "dict/set literals" in joined
        assert "'pickle'" in joined
        assert "f-strings" in joined

    def test_numpy_math_locals_and_kernels_are_clean(self):
        report = run(
            """\
            import math

            import numpy as np
            from numba import njit

            @njit
            def inner(values):
                return np.abs(values)

            @njit
            def kernel(values, count):
                total = 0.0
                for index in range(count):
                    total += math.sqrt(abs(values[index]))
                partial = inner(values)
                return total + partial.sum()
            """,
            "njit-purity",
        )
        assert report.diagnostics == []

    def test_plain_functions_are_not_scanned(self):
        report = run(
            """\
            def helper():
                table = {}
                return f"{table}"
            """,
            "njit-purity",
        )
        assert report.diagnostics == []


# ---------------------------------------------------------------------------
# pickle-contract
# ---------------------------------------------------------------------------


class TestPickleContract:
    def test_flags_codec_without_pair(self):
        report = run(
            """\
            class LeakyCodec:
                def __init__(self, bound):
                    self._bound = bound
                    self._table = list(range(16))

                def compress(self, data):
                    return bytes(data)

                def decompress(self, blob):
                    return blob
            """,
            "pickle-contract",
        )
        assert len(report.diagnostics) == 1
        assert "__getstate__ and __setstate__" in messages(report)[0]

    def test_explicit_pair_and_frozen_dataclass_are_clean(self):
        report = run(
            """\
            from dataclasses import dataclass

            class GoodCodec:
                def __init__(self, bound):
                    self._bound = bound

                def compress(self, data):
                    return bytes(data)

                def decompress(self, blob):
                    return blob

                def __getstate__(self):
                    return {"bound": self._bound}

                def __setstate__(self, state):
                    self.__init__(**state)

            @dataclass(frozen=True)
            class FrozenCodec:
                bound: float

                def compress(self, data):
                    return bytes(data)

                def decompress(self, blob):
                    return blob
            """,
            "pickle-contract",
        )
        assert report.diagnostics == []

    def test_pair_inherited_through_project_mro_is_clean(self):
        report = run(
            """\
            class PickleBase:
                def __getstate__(self):
                    return {"bound": self._bound}

                def __setstate__(self, state):
                    self.__init__(**state)

            class Derived(PickleBase):
                def __init__(self, bound):
                    self._bound = bound

                def compress(self, data):
                    return bytes(data)

                def decompress(self, blob):
                    return blob
            """,
            "pickle-contract",
        )
        assert report.diagnostics == []

    def test_abstract_interfaces_are_exempt(self):
        report = run(
            """\
            from abc import ABC, abstractmethod

            class Compressor(ABC):
                @abstractmethod
                def compress(self, data):
                    ...

                @abstractmethod
                def decompress(self, blob):
                    ...
            """,
            "pickle-contract",
        )
        assert report.diagnostics == []

    def test_flags_wrong_getstate_and_setstate_shapes(self):
        report = run(
            """\
            class ShapeCodec:
                def __init__(self, bound):
                    self._bound = bound

                def compress(self, data):
                    return bytes(data)

                def decompress(self, blob):
                    return blob

                def __getstate__(self):
                    state = {"bound": self._bound}
                    return state

                def __setstate__(self, state):
                    self._bound = state["bound"]
            """,
            "pickle-contract",
        )
        joined = "\n".join(messages(report))
        assert len(report.diagnostics) == 2
        assert "single 'return {...}'" in joined
        assert "self.__init__(**state)" in joined

    def test_record_class_must_be_dataclass_or_carry_pair(self):
        options = {"pickle-contract": {"record_classes": ("JobSpec",)}}
        offending = run(
            """\
            class JobSpec:
                def __init__(self, name):
                    self.name = name
            """,
            "pickle-contract",
            options=options,
        )
        assert len(offending.diagnostics) == 1
        assert "record class 'JobSpec'" in messages(offending)[0]

        clean = run(
            """\
            from dataclasses import dataclass

            @dataclass
            class JobSpec:
                name: str
            """,
            "pickle-contract",
            options=options,
        )
        assert clean.diagnostics == []


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_flags_self_deadlock_on_plain_lock(self):
        report = run(
            """\
            import threading

            class Bad:
                def __init__(self):
                    self._m = threading.Lock()

                def work(self):
                    with self._m:
                        with self._m:
                            pass
            """,
            "lock-order",
        )
        assert len(report.diagnostics) == 1
        assert "guaranteed self-deadlock" in messages(report)[0]

    def test_rlock_reentry_is_clean(self):
        report = run(
            """\
            import threading

            class Fine:
                def __init__(self):
                    self._m = threading.RLock()

                def outer(self):
                    with self._m:
                        self.inner()

                def inner(self):
                    with self._m:
                        pass
            """,
            "lock-order",
        )
        assert report.diagnostics == []

    def test_dict_get_and_str_join_under_lock_are_clean(self):
        report = run(
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._mutex = threading.Lock()
                    self._entries = {}

                def lookup(self, key):
                    with self._mutex:
                        return self._entries.get(key)

                def describe(self, parts):
                    with self._mutex:
                        return ", ".join(parts)
            """,
            "lock-order",
        )
        assert report.diagnostics == []

    def test_condition_wait_under_own_lock_is_clean(self):
        report = run(
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._available = threading.Condition()
                    self._free = []

                def lease(self):
                    with self._available:
                        while not self._free:
                            self._available.wait()
                        return self._free.pop()
            """,
            "lock-order",
        )
        assert report.diagnostics == []

    def test_queue_get_under_lock_is_flagged(self):
        report = run(
            """\
            import threading

            class Drain:
                def __init__(self, queue):
                    self._mutex = threading.Lock()
                    self._queue = queue

                def take(self):
                    with self._mutex:
                        return self._queue.get()
            """,
            "lock-order",
        )
        assert len(report.diagnostics) == 1
        assert "blocking call get()" in messages(report)[0]


# ---------------------------------------------------------------------------
# The seeded deadlock regression corpus
# ---------------------------------------------------------------------------


class TestDeadlockFixtures:
    def lint_fixture(self, name: str):
        path = FIXTURES / name
        return lint_source(
            path.read_text(encoding="utf-8"),
            rel=f"tests/lint_fixtures/{name}",
            rules=("lock-order",),
            options=DEFAULT_OPTIONS,
        )

    def test_cycle_fixture_flagged_with_cycle_path(self):
        report = self.lint_fixture("deadlock_cycle.py")
        assert [d.rule for d in report.diagnostics] == ["lock-order"]
        message = report.diagnostics[0].message
        assert message.startswith(
            "lock-order cycle deadlock_cycle.LedgerPair._audit -> "
            "deadlock_cycle.LedgerPair._ledger -> "
            "deadlock_cycle.LedgerPair._audit"
        )
        # Both acquisition sites are reported, including the edge that only
        # exists through the interprocedural call closure.
        assert "via call to _stamp_audit()" in message
        assert "acquired here" in message

    def test_blocking_fixture_flags_both_sites(self):
        report = self.lint_fixture("blocking_under_lock.py")
        assert [d.rule for d in report.diagnostics] == ["lock-order", "lock-order"]
        joined = "\n".join(messages(report))
        assert "blocking call recv()" in joined
        assert "blocking call sleep()" in joined
        assert "blocking_under_lock.ReplyPump._mutex" in joined

    def test_fixture_corpus_is_excluded_from_project_lint(self):
        config = project_config()
        assert config.excluded("tests/lint_fixtures/deadlock_cycle.py")
        report = lint_paths([FIXTURES], config)
        assert report.files_checked == 0


# ---------------------------------------------------------------------------
# Engine mechanics: suppressions, parse errors, report shape
# ---------------------------------------------------------------------------


class TestEngine:
    def test_reasonless_suppression_is_flagged_and_does_not_suppress(self):
        report = run(
            "import multiprocessing  # repro-lint: disable=mp-hygiene\n",
            "mp-hygiene",
        )
        rules = sorted(d.rule for d in report.diagnostics)
        assert rules == ["mp-hygiene", "suppression-format"]
        assert report.suppressed == []
        assert "without a reason" in messages(report)[0] + messages(report)[1]

    def test_unknown_rule_suppression_is_flagged(self):
        report = run(
            "import multiprocessing  "
            "# repro-lint: disable=no-such-rule -- because\n",
            "mp-hygiene",
        )
        rules = sorted(d.rule for d in report.diagnostics)
        assert rules == ["mp-hygiene", "suppression-format"]
        assert any("unknown rule" in m for m in messages(report))

    def test_multi_rule_suppression(self):
        report = run(
            """\
            import time

            def stamp():
                return time.time()  # repro-lint: disable=determinism,docstring-coverage -- display
            """,
            "determinism",
        )
        assert report.diagnostics == []
        assert len(report.suppressed) == 1

    def test_marker_inside_string_literal_is_ignored(self):
        report = run(
            """\
            EXAMPLE = "# repro-lint: disable=mp-hygiene"
            import multiprocessing
            """,
            "mp-hygiene",
        )
        assert [d.rule for d in report.diagnostics] == ["mp-hygiene"]

    def test_parse_error_diagnostic(self):
        report = lint_source("def broken(:\n")
        assert [d.rule for d in report.diagnostics] == ["parse-error"]
        assert report.exit_code == 1

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            lint_source("x = 1\n", rules=("no-such-rule",))

    def test_report_shape_and_render(self):
        report = run("import multiprocessing\n", "mp-hygiene")
        diagnostic = report.diagnostics[0]
        assert diagnostic.render() == (
            f"snippet.py:1:1: mp-hygiene: {diagnostic.message}"
        )
        payload = report.as_dict()
        assert payload["schema"] == 1
        assert payload["summary"]["per_rule"]["mp-hygiene"] == 1
        assert payload["summary"]["diagnostics"] == 1
        json.dumps(payload)  # JSON-serialisable end to end

    def test_exit_codes(self):
        assert run("x = 1\n", "mp-hygiene").exit_code == 0
        assert run("import multiprocessing\n", "mp-hygiene").exit_code == 1


# ---------------------------------------------------------------------------
# Config and CLI
# ---------------------------------------------------------------------------


class TestConfigAndCli:
    def test_per_path_rule_scoping(self):
        config = project_config()
        src_rules = config.enabled_for("src/repro/core/cache.py")
        test_rules = config.enabled_for("tests/test_cache.py")
        assert "docstring-coverage" in src_rules
        assert "docstring-coverage" not in test_rules
        assert "lock-order" in src_rules and "lock-order" in test_rules

    def test_selected_rules_filtering(self):
        registry = frozenset({"a", "b", "c"})
        config = LintConfig(root=Path("."), select=frozenset({"a", "b"}))
        assert config.selected_rules(registry) == {"a", "b"}
        config = LintConfig(root=Path("."), ignore=frozenset({"c"}))
        assert config.selected_rules(registry) == {"a", "b"}
        with pytest.raises(ValueError, match="unknown rule"):
            LintConfig(root=Path("."), select=frozenset({"zzz"})).selected_rules(
                registry
            )

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "pickle-contract",
            "njit-purity",
            "error-taxonomy",
            "lock-order",
            "determinism",
            "mp-hygiene",
            "docstring-coverage",
            "resource-hygiene",
            "suppression-format",
        ):
            assert rule_id in out

    def test_cli_json_on_clean_file(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text('"""Documented."""\n\nX = 1\n')
        assert lint_main(["--json", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["diagnostics"] == 0

    def test_cli_exit_codes_for_usage_errors(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing.py")]) == 2
        assert lint_main(["--select", "no-such-rule"]) == 2
        capsys.readouterr()
