"""The asyncio simulation service (``repro.serve``).

The contract under test: the service is a *pure arbiter* — fairness is
exact (weighted deficit round-robin, not statistical), cached answers are
the cold run bit for bit, suspension round-trips through a checkpoint
without changing a single sampled count, backpressure is a typed error at
a scripted threshold, and teardown leaks nothing.  Every test is
deterministic: a fake clock, scripted workloads and cooperative yields —
no sleeps, no timing assumptions.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.backends import PauliObservable
from repro.core.config import SimulatorConfig
from repro.errors import (
    JobCancelledError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.serve import (
    FairScheduler,
    ResultCache,
    ServiceConfig,
    SimulationService,
    cache_key,
    cache_manifest,
)
from serve_harness import (
    FakeClock,
    assert_no_leaks,
    drr_reference_prefix,
    max_gap,
    run_soak,
    workload_circuit,
)


def drain(scheduler: FairScheduler) -> list:
    """Pop jobs until the scheduler is idle, returning them in order."""

    jobs = []
    while True:
        job = scheduler.next_job()
        if job is None:
            return jobs
        jobs.append(job)


class TestFairScheduler:
    def test_full_backlog_rounds_dispatch_exact_weights(self):
        weights = {"a": 1, "b": 2, "c": 3}
        scheduler = FairScheduler(max_pending_total=1000)
        for tenant, weight in weights.items():
            scheduler.register(tenant, weight)
        for tenant in weights:
            for index in range(12):
                scheduler.submit(tenant, (tenant, index))
        order = [tenant for tenant, _ in drain(scheduler)]
        # a drains after 12 rounds, b after 6, c after 4: all tenants are
        # backlogged for the first 4 full rounds.
        assert order[:24] == drr_reference_prefix(weights, 4)
        assert len(order) == 36

    def test_priority_runs_first_fifo_among_equals(self):
        scheduler = FairScheduler()
        scheduler.register("a", 4)
        scheduler.submit("a", "low-early", priority=0)
        scheduler.submit("a", "high", priority=5)
        scheduler.submit("a", "low-late", priority=0)
        assert [scheduler.next_job() for _ in range(3)] == [
            "high",
            "low-early",
            "low-late",
        ]

    def test_idle_tenant_forfeits_deficit(self):
        scheduler = FairScheduler()
        scheduler.register("idle", 3)
        scheduler.register("busy", 1)
        for index in range(6):
            scheduler.submit("busy", index)
        # Three rounds pass with "idle" empty; its deficit must not build.
        assert [scheduler.next_job() for _ in range(3)] == [0, 1, 2]
        scheduler.submit("idle", "woke")
        # A freshly backlogged tenant gets at most its weight per round —
        # it cannot burst the credit of the rounds it sat out.
        order = [scheduler.next_job() for _ in range(4)]
        assert order.count("woke") == 1

    def test_registration_contract(self):
        scheduler = FairScheduler()
        scheduler.register("a", 2)
        scheduler.register("a", 2)  # idempotent
        with pytest.raises(ValueError, match="cannot change"):
            scheduler.register("a", 3)
        with pytest.raises(ValueError):
            scheduler.register("", 1)
        with pytest.raises(ValueError):
            scheduler.register("b", 0)
        with pytest.raises(KeyError):
            scheduler.submit("unknown", object())

    def test_backpressure_raises_typed_error_and_leaves_no_trace(self):
        scheduler = FairScheduler(max_pending_per_tenant=2, max_pending_total=3)
        scheduler.register("a", 1)
        scheduler.register("b", 1)
        scheduler.submit("a", 0)
        scheduler.submit("a", 1)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            scheduler.submit("a", 2)
        assert isinstance(excinfo.value, ServiceError)
        assert excinfo.value.scope == "tenant"
        assert excinfo.value.pending == 2
        assert excinfo.value.limit == 2
        scheduler.submit("b", 0)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            scheduler.submit("b", 1)
        assert excinfo.value.scope == "total"
        assert excinfo.value.limit == 3
        assert scheduler.pending() == 3
        assert scheduler.snapshot()["b"]["submitted"] == 1

    @settings(derandomize=True, max_examples=80, deadline=None)
    @given(data=st.data())
    def test_no_tenant_starves_property(self, data):
        """Seeded property: a backlogged tenant is served within one round.

        For any weight assignment and any queue depths, (a) every job is
        dispatched, (b) the fully-backlogged prefix matches the analytic
        per-round schedule exactly (completed counts equal the weight
        ratio), and (c) no backlogged tenant ever waits more than
        ``sum(weights)`` dispatches between its turns.
        """

        n = data.draw(st.integers(1, 4), label="tenants")
        weights = {
            f"t{i}": data.draw(st.integers(1, 4), label=f"w{i}")
            for i in range(n)
        }
        depths = {
            tenant: data.draw(st.integers(0, 25), label=f"depth-{tenant}")
            for tenant in weights
        }
        scheduler = FairScheduler(max_pending_total=1000)
        for tenant, weight in weights.items():
            scheduler.register(tenant, weight)
        for tenant, depth in depths.items():
            for index in range(depth):
                scheduler.submit(tenant, (tenant, index))
        order = [tenant for tenant, _ in drain(scheduler)]
        assert len(order) == sum(depths.values())
        for tenant, depth in depths.items():
            assert order.count(tenant) == depth
        full_rounds = min(
            depths[tenant] // weight for tenant, weight in weights.items()
        )
        prefix = drr_reference_prefix(weights, full_rounds)
        assert order[: len(prefix)] == prefix
        weight_sum = sum(weights.values())
        for tenant, depth in depths.items():
            if depth:
                assert max_gap(order, tenant) <= weight_sum


class TestCacheKey:
    def request(self, **overrides):
        """A baseline cache-key request, with per-test overrides."""

        request = dict(
            backend="compressed",
            config=SimulatorConfig(),
            shots=32,
            seed=7,
            observables=(),
            return_statevector=False,
        )
        request.update(overrides)
        return request

    def test_rebuilt_identical_request_shares_key(self):
        key_a = cache_key(workload_circuit(0, 0), **self.request())
        key_b = cache_key(workload_circuit(0, 0), **self.request())
        assert key_a == key_b

    def test_every_result_affecting_ingredient_misses(self):
        base = cache_key(workload_circuit(0, 0), **self.request())
        variants = {
            "seed": self.request(seed=8),
            "shots": self.request(shots=33),
            "error-bound": self.request(
                config=SimulatorConfig(error_levels=(1e-3, 1e-2))
            ),
            "observables": self.request(
                observables=(PauliObservable("Z" * 4),)
            ),
            "statevector": self.request(return_statevector=True),
            "backend": self.request(backend="dense"),
        }
        keys = {
            name: cache_key(workload_circuit(0, 0), **request)
            for name, request in variants.items()
        }
        # One mutated gate angle is a different circuit, hence a miss.
        keys["gate"] = cache_key(workload_circuit(0, 1), **self.request())
        for name, key in keys.items():
            assert key != base, f"ingredient {name} did not change the key"
        assert len(set(keys.values())) == len(keys)

    def test_throughput_knobs_share_the_key(self):
        base = cache_key(workload_circuit(0, 0), **self.request())
        for config in (
            SimulatorConfig(num_workers=4, executor="thread"),
            SimulatorConfig(codec_engine="numpy"),
            SimulatorConfig(mp_start_method="spawn"),
        ):
            assert (
                cache_key(workload_circuit(0, 0), **self.request(config=config))
                == base
            )

    def test_manifest_is_canonical_json_with_exact_floats(self):
        manifest = cache_manifest(workload_circuit(1, 2), **self.request())
        payload = json.dumps(manifest, sort_keys=True)
        assert json.loads(payload) == manifest
        gate = next(g for g in manifest["circuit"]["gates"] if g["params"])
        assert all(float.fromhex(p) for p in gate["params"])
        assert manifest["config"]["error_levels"] == [
            float(level).hex() for level in SimulatorConfig().error_levels
        ]

    def test_lru_cache_stats_and_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refreshes recency of a
        cache.put("c", "3")  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        stats = cache.stats()
        assert stats == {
            "entries": 2,
            "max_entries": 2,
            "hits": 3,
            "misses": 1,
            "evictions": 1,
        }


class TestCanonicalResult:
    def test_canonical_json_strips_only_measured_time(self):
        circuit = workload_circuit(0, 0)
        first = repro.run(circuit, shots=16, seed=3)
        second = repro.run(workload_circuit(0, 0), shots=16, seed=3)
        assert first.to_json() != second.to_json()  # wall clock differs
        assert first.canonical_json() == second.canonical_json()
        canonical = first.canonical_dict()
        assert "wall_seconds" not in canonical["metadata"]
        assert "serve" not in canonical["metadata"]
        assert canonical["metadata"]["seed"] == 3
        for key in canonical["report"]:
            assert not key.endswith("_seconds")
            assert not key.endswith("_fraction")
            assert key != "seconds_per_gate"
        assert canonical["report"]["gates_executed"] > 0

    def test_canonical_json_ordering_is_stable(self):
        result = repro.run(workload_circuit(0, 3), shots=8, seed=1)
        payload = result.canonical_json()
        reserialised = json.dumps(
            json.loads(payload), sort_keys=True, separators=(",", ":")
        )
        assert payload == reserialised
        # Canonical serialisation is insertion-order independent: a result
        # rebuilt with its metadata keys reversed canonicalises identically.
        from repro.backends.result import Result

        shuffled = json.loads(result.to_json())
        shuffled["metadata"] = dict(
            reversed(list(shuffled["metadata"].items()))
        )
        clone = Result.from_dict(shuffled)
        assert clone.canonical_json() == result.canonical_json()
        assert clone.to_json(sort_keys=True) != clone.to_json()


class TestServiceExecution:
    def test_result_bit_identical_to_cold_run(self):
        async def scenario():
            service = SimulationService(ServiceConfig(clock=FakeClock()))
            await service.start()
            try:
                job = service.submit(
                    workload_circuit(0, 0),
                    tenant="alice",
                    shots=64,
                    seed=11,
                    observables=PauliObservable("ZZZZ"),
                    return_statevector=True,
                )
                return await job
            finally:
                await service.close()

        warm = asyncio.run(scenario())
        cold = repro.run(
            workload_circuit(0, 0),
            shots=64,
            seed=11,
            observables=PauliObservable("ZZZZ"),
            return_statevector=True,
        )
        assert warm.counts == cold.counts
        assert warm.expectations == cold.expectations
        assert np.array_equal(
            np.asarray(warm.statevector).view(np.uint64),
            np.asarray(cold.statevector).view(np.uint64),
        )
        assert warm.canonical_json() == cold.canonical_json()
        assert warm.metadata["serve"]["cache_hit"] is False

    def test_cache_hit_is_byte_identical_and_skips_execution(self):
        async def scenario():
            service = SimulationService(ServiceConfig(clock=FakeClock()))
            await service.start()
            try:
                first = await service.submit(
                    workload_circuit(1, 0), tenant="alice", shots=32, seed=5
                )
                second_job = service.submit(
                    workload_circuit(1, 0), tenant="bob", shots=32, seed=5
                )
                second = await second_job
                miss_job = service.submit(
                    workload_circuit(1, 0), tenant="bob", shots=32, seed=6
                )
                miss = await miss_job
                return (
                    first,
                    second,
                    miss,
                    second_job.events.kinds(),
                    service.stats()["cache"],
                )
            finally:
                await service.close()

        first, second, miss, hit_kinds, cache_stats = asyncio.run(scenario())
        assert hit_kinds == ("queued", "cached", "completed")
        assert second.metadata["serve"]["cache_hit"] is True
        assert second.canonical_json() == first.canonical_json()
        # Byte identity beyond canonical: the hit is the stored payload.
        assert json.loads(second.to_json())["counts"] == json.loads(
            first.to_json()
        )["counts"]
        assert miss.canonical_json() != first.canonical_json()
        assert cache_stats["hits"] == 1
        assert cache_stats["misses"] == 2
        assert cache_stats["entries"] == 2

    def test_events_follow_fake_clock_and_stream_terminates(self):
        async def scenario():
            clock = FakeClock(start=100.0)
            service = SimulationService(
                ServiceConfig(clock=clock, progress_interval=2)
            )
            await service.start()
            try:
                job = service.submit(
                    workload_circuit(2, 1), tenant="alice", shots=8, seed=2
                )
                clock.advance(1.5)
                streamed = [event async for event in job.events.stream()]
                await job
                return job, streamed
            finally:
                await service.close()

        job, streamed = asyncio.run(scenario())
        kinds = job.events.kinds()
        assert kinds[0] == "queued"
        assert kinds[-1] == "completed"
        assert "progress" in kinds
        assert [event.kind for event in streamed] == list(kinds)
        assert streamed[0].timestamp == 100.0  # queued before the advance
        assert all(
            event.timestamp == 101.5 for event in streamed[1:]
        )  # everything after the advance is scripted time
        payload = next(e for e in streamed if e.kind == "progress").payload
        assert payload["gates_total"] == job.gates_total
        assert payload["gates_executed"] >= 1

    def test_backpressure_thresholds_and_close_cancels_pending(self):
        async def scenario():
            service = SimulationService(
                ServiceConfig(
                    workers=0,  # admit but never dispatch
                    max_pending_per_tenant=2,
                    max_pending_total=3,
                    clock=FakeClock(),
                )
            )
            await service.start()
            pending = [
                service.submit(
                    workload_circuit(0, index), tenant="alice", seed=index
                )
                for index in range(2)
            ]
            with pytest.raises(ServiceOverloadedError) as tenant_full:
                service.submit(workload_circuit(0, 9), tenant="alice")
            pending.append(
                service.submit(workload_circuit(1, 0), tenant="bob")
            )
            with pytest.raises(ServiceOverloadedError) as total_full:
                service.submit(workload_circuit(1, 1), tenant="bob")
            assert tenant_full.value.scope == "tenant"
            assert total_full.value.scope == "total"
            assert service.stats()["jobs"] == {"pending": 3}
            await service.close()
            for job in pending:
                assert job.state == "cancelled"
                with pytest.raises(JobCancelledError):
                    job.result()
                assert job.events.kinds() == ("queued", "cancelled")
            assert_no_leaks()

        asyncio.run(scenario())

    def test_cancel_pending_and_running(self):
        async def scenario():
            service = SimulationService(
                ServiceConfig(progress_interval=1, clock=FakeClock())
            )
            await service.start()
            try:
                running = service.submit(
                    workload_circuit(0, 0, num_qubits=6),
                    tenant="alice",
                    shots=8,
                    seed=1,
                )
                queued = service.submit(
                    workload_circuit(0, 1), tenant="alice", shots=8, seed=1
                )
                assert service.cancel(queued.id) is True
                async for event in running.events.stream():
                    if event.kind == "progress":
                        assert service.cancel(running.id) is True
                        break
                with pytest.raises(JobCancelledError) as excinfo:
                    await running
                assert excinfo.value.gates_done >= 1
                with pytest.raises(JobCancelledError):
                    await queued
                assert running.state == "cancelled"
                assert running.events.kinds()[-1] == "cancelled"
                assert queued.events.kinds() == ("queued", "cancelled")
                assert service.cancel(queued.id) is False  # already terminal
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_suspend_resume_is_bit_identical_and_never_cached(self):
        async def scenario():
            service = SimulationService(
                ServiceConfig(progress_interval=2, clock=FakeClock())
            )
            await service.start()
            try:
                circuit = workload_circuit(3, 0, num_qubits=6)
                job = service.submit(
                    circuit,
                    tenant="alice",
                    shots=32,
                    seed=9,
                    observables=PauliObservable("ZZZZZZ"),
                    return_statevector=True,
                )
                async for event in job.events.stream():
                    if event.kind == "progress":
                        assert service.suspend(job.id) is True
                        break
                while job.state == "running":
                    await asyncio.sleep(0)
                assert job.state == "suspended"
                suspended_at = job.gates_done
                assert 0 < suspended_at < job.gates_total
                service.resume(job.id)
                resumed = await job
                # The suspended/resumed result must not be cached: an
                # identical request misses and produces the pristine entry.
                rerun = await service.submit(
                    workload_circuit(3, 0, num_qubits=6),
                    tenant="alice",
                    shots=32,
                    seed=9,
                    observables=PauliObservable("ZZZZZZ"),
                    return_statevector=True,
                )
                return job, resumed, rerun, service.stats()["cache"]
            finally:
                await service.close()

        job, resumed, rerun, cache_stats = asyncio.run(scenario())
        cold = repro.run(
            workload_circuit(3, 0, num_qubits=6),
            shots=32,
            seed=9,
            observables=PauliObservable("ZZZZZZ"),
            return_statevector=True,
        )
        kinds = job.events.kinds()
        assert "suspended" in kinds and "resumed" in kinds
        assert kinds.index("suspended") < kinds.index("resumed")
        assert resumed.metadata["serve"]["resumed"] is True
        assert resumed.counts == cold.counts
        assert resumed.expectations == cold.expectations
        assert np.array_equal(
            np.asarray(resumed.statevector).view(np.uint64),
            np.asarray(cold.statevector).view(np.uint64),
        )
        assert rerun.metadata["serve"]["cache_hit"] is False
        assert cache_stats["hits"] == 0
        assert rerun.canonical_json() == cold.canonical_json()

    def test_submit_validation_mirrors_backend_run(self):
        async def scenario():
            service = SimulationService(ServiceConfig(clock=FakeClock()))
            await service.start()
            try:
                with pytest.raises(TypeError):
                    service.submit("not a circuit", tenant="a")
                with pytest.raises(ValueError, match="non-negative"):
                    service.submit(
                        workload_circuit(0, 0), tenant="a", shots=-1
                    )
                with pytest.raises(ValueError, match="acts on"):
                    service.submit(
                        workload_circuit(0, 0),
                        tenant="a",
                        observables=PauliObservable("ZZ"),
                    )
            finally:
                await service.close()
            with pytest.raises(ServiceClosedError) as excinfo:
                service.submit(workload_circuit(0, 0), tenant="a")
            assert excinfo.value.state == "closed"

        asyncio.run(scenario())

    def test_drain_then_close_leaks_nothing(self):
        async def scenario():
            service = SimulationService(
                ServiceConfig(workers=2, clock=FakeClock())
            )
            await service.start()
            jobs = [
                service.submit(
                    workload_circuit(index % 2, index),
                    tenant=f"t{index % 2}",
                    shots=8,
                    seed=index,
                )
                for index in range(6)
            ]
            await service.drain()
            assert all(job.state == "completed" for job in jobs)
            assert service.state == "draining"
            with pytest.raises(ServiceClosedError):
                service.submit(workload_circuit(0, 0), tenant="t0")
            await service.close()
            await service.close()  # idempotent
            assert service.state == "closed"
            assert_no_leaks()

        asyncio.run(scenario())


class TestForkConfigHoisting:
    def test_config_rebuild_count_is_batch_size_independent(self, monkeypatch):
        """Regression: X/Y-observable forks re-validated SimulatorConfig per
        circuit; the localised fork config is now built once per simulator."""

        observable = PauliObservable("XZZZ", label="fork-driver")

        def count_for(batch_size: int) -> int:
            calls = []
            original = SimulatorConfig.__post_init__

            def counting(self):
                calls.append(1)
                return original(self)

            monkeypatch.setattr(SimulatorConfig, "__post_init__", counting)
            try:
                circuits = [
                    workload_circuit(0, index) for index in range(batch_size)
                ]
                repro.run(circuits, shots=0, observables=observable, seed=1)
            finally:
                monkeypatch.setattr(
                    SimulatorConfig, "__post_init__", original
                )
            return len(calls)

        small = count_for(2)
        large = count_for(6)
        assert small == large, (
            f"SimulatorConfig was rebuilt per circuit: {small} constructions "
            f"for batch of 2 vs {large} for batch of 6"
        )


class TestServeSoak:
    def test_soak_fairness_cache_and_recovery(self, tmp_path):
        """The deterministic soak (scaled down from the CI serve-soak job).

        The CI job runs the same harness at 500 jobs via
        ``tests/run_serve_soak.py``; 120 jobs cover the identical properties
        (exact DRR prefix, starvation bound, >=1 recovered worker kill,
        every answer bit-identical to its cold counterpart, zero leaks) in
        tier-1 time.
        """

        summary = run_soak(num_jobs=120, kill_after=10)
        assert summary["fairness_ok"], summary
        assert summary["starvation_ok"], summary
        assert summary["recoveries"] >= 1, summary
        assert summary["bit_identity_mismatches"] == 0, summary
        assert summary["bit_identity_checked"] == 120
        assert summary["cache"]["hits"] > 0
        assert summary["dispatched"] == 120
        payload = json.dumps(summary, sort_keys=True)
        (tmp_path / "soak.json").write_text(payload)
        assert json.loads(payload)["kind"] == "serve"
