"""Regenerate the golden codec blobs under ``tests/golden/``.

The blobs checked in next to this script were produced by the *seed* codecs
(the implementations as of PR 1, commit fc291b9) and pin the wire format:
every later decoder must decode them bit-identically, and every later encoder
must keep producing streams the seed decoder would accept.  Run this script
only when the wire format is *intentionally* revised (which also requires a
blob-tag bump); never regenerate to paper over a decode mismatch.

Usage::

    PYTHONPATH=src python tests/golden/generate_golden.py

For each case ``NAME`` it writes ``NAME.blob`` (the encoded bytes) and
``NAME.expected.npy`` (the array the encoding-time decoder produced for that
blob, i.e. the bit-exact decode target).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.compression import (
    ErrorBoundMode,
    LosslessCompressor,
    SZCompressor,
    XorBitplaneCompressor,
    ZFPLikeCompressor,
    huffman,
)

GOLDEN_DIR = Path(__file__).parent


def _skewed_symbols(rng: np.random.Generator, size: int) -> np.ndarray:
    """Geometric-ish SZ-delta-like symbol stream (small alphabet, skewed)."""

    return (rng.geometric(0.35, size=size) - rng.geometric(0.35, size=size)).astype(
        np.int64
    )


def _long_code_symbols() -> np.ndarray:
    """Stream whose Huffman tree is a degenerate chain: code lengths 1..15.

    Doubling frequencies force a maximally unbalanced tree, so the rarest
    symbols get codes longer than a 12-bit lookup window — this blob
    exercises a table-driven decoder's long-code slow path.
    """

    counts = 2 ** np.arange(16, dtype=np.int64)
    symbols = np.repeat(np.arange(16, dtype=np.int64) - 8, counts)
    return np.random.default_rng(11).permutation(symbols)


def _escape_heavy_stream(rng: np.random.Generator, size: int) -> np.ndarray:
    """Floats whose SZ grid deltas overflow the bin range at many positions."""

    smooth = np.cumsum(rng.normal(0.0, 1e-3, size=size))
    jumps = np.zeros(size)
    jump_positions = rng.choice(size, size=size // 16, replace=False)
    jumps[jump_positions] = rng.normal(0.0, 1e6, size=jump_positions.size)
    return smooth + np.cumsum(jumps)


def build_cases() -> dict[str, tuple[bytes, np.ndarray]]:
    """Encode every golden case with the *current* codecs.

    Returns ``name -> (blob, expected array)``.  The compatibility tests call
    this to assert the current encoders still produce the checked-in bytes.
    """

    rng = np.random.default_rng(20260728)
    cases: dict[str, tuple[bytes, np.ndarray]] = {}

    # -- raw Huffman streams ------------------------------------------------
    skewed = _skewed_symbols(rng, 4096)
    cases["huffman_skewed"] = (huffman.encode(skewed), skewed)

    long_codes = _long_code_symbols()
    # Stored as int16 to keep the checked-in file small; the symbol values
    # fit and np.array_equal compares across integer dtypes.
    cases["huffman_long_codes"] = (huffman.encode(long_codes), long_codes.astype(np.int16))

    single = np.full(257, -3, dtype=np.int64)
    cases["huffman_single_symbol"] = (huffman.encode(single), single)

    def lossy_case(compressor, data) -> tuple[bytes, np.ndarray]:
        blob = compressor.compress(data)
        return blob, compressor.decompress(blob)

    # -- SZ (Solution A), both modes, plus escape-heavy and empty streams ---
    spiky = np.exp(rng.normal(-9.0, 2.0, size=4096)) * rng.choice([-1.0, 1.0], 4096)
    sz_rel = SZCompressor(bound=1e-3)
    cases["sz_rel_spiky"] = lossy_case(sz_rel, spiky)

    smooth = np.sin(np.linspace(0.0, 20.0, 4096))
    cases["sz_abs_smooth"] = lossy_case(
        SZCompressor(bound=1e-4, mode=ErrorBoundMode.ABSOLUTE), smooth
    )

    escapey = _escape_heavy_stream(rng, 4096)
    cases["sz_abs_escape_heavy"] = lossy_case(
        SZCompressor(bound=1e-5, mode=ErrorBoundMode.ABSOLUTE, max_bins=16), escapey
    )

    empty = np.zeros(0, dtype=np.float64)
    cases["sz_rel_empty_seed_layout"] = (sz_rel.compress(empty), empty)

    # -- ZFP-like, both modes ----------------------------------------------
    cases["zfp_abs_smooth"] = lossy_case(
        ZFPLikeCompressor(bound=1e-3, mode=ErrorBoundMode.ABSOLUTE), smooth
    )
    cases["zfp_rel_spiky"] = lossy_case(
        ZFPLikeCompressor(bound=1e-2, mode=ErrorBoundMode.RELATIVE), spiky
    )

    # -- Solution C (bitplane/XOR machinery) and the lossless stage ---------
    cases["xor_bitplane_spiky"] = lossy_case(XorBitplaneCompressor(bound=1e-3), spiky)

    lossless = LosslessCompressor()
    cases["lossless_spiky"] = (lossless.compress(spiky), spiky)
    return cases


def main() -> None:
    for name, (blob, expected) in build_cases().items():
        (GOLDEN_DIR / f"{name}.blob").write_bytes(blob)
        np.save(GOLDEN_DIR / f"{name}.expected.npy", np.asarray(expected))
        print(f"{name}: {len(blob)} blob bytes, {np.asarray(expected).size} values")


if __name__ == "__main__":
    main()
